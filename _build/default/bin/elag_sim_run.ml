(* Run one workload (or all) under the emulator and, optionally, a
   timing configuration.  Usage:
     elag_sim_run                      — emulate every workload, print stats
     elag_sim_run <name>              — emulate one workload
     elag_sim_run <name> <mechanism>  — time it (mechanisms: baseline,
                                         table-N, calc-N, dual-hw, dual-cc) *)

module Compile = Elag_harness.Compile
module Pipeline = Elag_sim.Pipeline
module Config = Elag_sim.Config
module Emulator = Elag_sim.Emulator
module Workload = Elag_workloads.Workload
module Suite = Elag_workloads.Suite

let mechanism_of_string s =
  let int_suffix prefix =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      int_of_string_opt (String.sub s n (String.length s - n))
    else None
  in
  match s with
  | "baseline" -> Config.No_early
  | "dual-hw" -> Config.Dual { table_entries = 256; selection = Config.Hardware_selected }
  | "dual-cc" -> Config.Dual { table_entries = 256; selection = Config.Compiler_directed }
  | _ -> (
    match int_suffix "table-" with
    | Some n -> Config.Table_only { entries = n; compiler_filtered = false }
    | None -> (
      match int_suffix "calc-" with
      | Some n -> Config.Calc_only { bric_entries = n }
      | None -> failwith ("unknown mechanism " ^ s)))

let emulate_one (w : Workload.t) =
  let t0 = Unix.gettimeofday () in
  let program = Compile.compile w.Workload.source in
  let t1 = Unix.gettimeofday () in
  let emu = Emulator.run_program program in
  let t2 = Unix.gettimeofday () in
  Printf.printf "%-16s  insns=%9d  compile=%.2fs run=%.2fs  output=%s\n%!"
    w.Workload.name (Emulator.retired emu) (t1 -. t0) (t2 -. t1)
    (String.concat "," (String.split_on_char '\n' (String.trim (Emulator.output emu))))

let time_one (w : Workload.t) mech =
  let program = Compile.compile w.Workload.source in
  let cfg = Config.with_mechanism mech Config.default in
  let stats, output = Pipeline.simulate cfg program in
  Printf.printf "%s under %s:\n" w.Workload.name (Config.mechanism_name mech);
  Printf.printf "  cycles=%d insns=%d IPC=%.2f\n" stats.Pipeline.cycles
    stats.Pipeline.instructions
    (float_of_int stats.Pipeline.instructions /. float_of_int stats.Pipeline.cycles);
  Printf.printf "  loads=%d (n=%d p=%d e=%d) stores=%d\n" stats.Pipeline.loads
    stats.Pipeline.loads_n stats.Pipeline.loads_p stats.Pipeline.loads_e
    stats.Pipeline.stores;
  Printf.printf "  spec: table %d/%d calc %d/%d wasted=%d\n"
    stats.Pipeline.table_successes stats.Pipeline.table_attempts
    stats.Pipeline.calc_successes stats.Pipeline.calc_attempts
    stats.Pipeline.wasted_spec;
  Printf.printf "  avg load latency=%.2f dmiss=%d imiss=%d btb_miss=%d\n"
    (float_of_int stats.Pipeline.load_latency_sum /. float_of_int (max 1 stats.Pipeline.loads))
    stats.Pipeline.dcache_misses stats.Pipeline.icache_misses
    stats.Pipeline.btb_mispredicts;
  Printf.printf "  output=%s\n"
    (String.concat "," (String.split_on_char '\n' (String.trim output)))

let () =
  match Sys.argv with
  | [| _ |] -> List.iter emulate_one Suite.all
  | [| _; name |] -> emulate_one (Suite.find name)
  | [| _; name; mech |] -> time_one (Suite.find name) (mechanism_of_string mech)
  | _ -> prerr_endline "usage: elag_sim_run [workload [mechanism]]"
