bin/elag_sim_run.mli:
