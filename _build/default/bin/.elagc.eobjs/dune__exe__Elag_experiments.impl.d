bin/elag_experiments.ml: Array Elag_harness Sys
