bin/elag_sim_run.ml: Elag_harness Elag_sim Elag_workloads List Printf String Sys Unix
