bin/elag_experiments.mli:
