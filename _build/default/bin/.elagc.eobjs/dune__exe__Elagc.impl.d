bin/elagc.ml: Array Elag_harness Elag_ir Elag_isa Elag_opt Elag_sim Elag_workloads Fmt List String Sys
