bin/elagc.mli:
