(* Regenerate every table and figure from the paper's evaluation
   section.  With an argument, run only that artifact:
     table2 | fig5a | fig5b | fig5c | table3 | table4 | all *)

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "table2" -> Elag_harness.Experiments.print_table2 ()
  | "fig5a" -> Elag_harness.Experiments.print_fig5a ()
  | "fig5b" -> Elag_harness.Experiments.print_fig5b ()
  | "fig5c" -> Elag_harness.Experiments.print_fig5c ()
  | "table3" -> Elag_harness.Experiments.print_table3 ()
  | "table4" -> Elag_harness.Experiments.print_table4 ()
  | "all" -> Elag_harness.Experiments.run_all ()
  | other ->
    prerr_endline ("unknown artifact: " ^ other);
    exit 1
