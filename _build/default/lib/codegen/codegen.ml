(* Program-level code generation: lays out static data, emits every
   function, adds the [_start] shim and assembles the final program. *)

module Ir = Elag_ir.Ir
module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Layout = Elag_isa.Layout
module Program = Elag_isa.Program

let default_stack_top = 16 * 1024 * 1024

(* [_start]: set up the stack, call main, halt. *)
let start_items ~stack_top =
  [ Program.Label "_start"
  ; Program.Insn (Insn.Li { dst = Reg.sp; imm = stack_top })
  ; Program.Insn (Insn.Jal "main")
  ; Program.Insn Insn.Halt ]

let generate ?(stack_top = default_stack_top) (p : Ir.program) : Program.t =
  let layout = Layout.create () in
  List.iter
    (fun (d : Ir.data) ->
      ignore (Layout.add layout ~label:d.Ir.data_label ~align:d.Ir.data_align ~init:d.Ir.data_init))
    p.Ir.data;
  let items =
    start_items ~stack_top
    @ List.concat_map (Emit.emit_func ~layout) p.Ir.funcs
  in
  Program.assemble ~layout items
