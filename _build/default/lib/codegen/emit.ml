(* Instruction selection and emission: one IR function to a list of
   assembly items.

   Frame layout (offsets from sp, stack grows down):

     sp + 0            .. local slots (arrays, structs, spilled-to-
                          memory locals), individually aligned
     sp + spill_base   .. register-allocator spill slots, 4 bytes each
     sp + saved_base   .. callee-saved registers used by the function
     sp + size - 4     .. return address
*)

module Ir = Elag_ir.Ir
module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Layout = Elag_isa.Layout
module Program = Elag_isa.Program

type frame =
  { slot_offset : int array
  ; spill_base : int
  ; saved_base : int
  ; size : int }

let align_up n a = (n + a - 1) / a * a

let layout_frame (f : Ir.func) (ra : Regalloc.result) =
  let offset = ref 0 in
  let slot_offset =
    Array.of_list
      (List.map
         (fun (s : Ir.slot) ->
           let off = align_up !offset s.Ir.slot_align in
           offset := off + s.Ir.slot_size;
           off)
         f.Ir.slots)
  in
  let spill_base = align_up !offset 4 in
  let saved_base = spill_base + (4 * ra.Regalloc.spill_count) in
  let size =
    align_up (saved_base + (4 * List.length ra.Regalloc.used_callee_saved) + 4) 8
  in
  { slot_offset; spill_base; saved_base; size }

type st =
  { mutable items : Program.item list (* reversed *)
  ; frame : frame
  ; ra : Regalloc.result
  ; layout : Layout.t
  ; epilogue : string }

let emit st insn = st.items <- Program.Insn insn :: st.items
let emit_label st l = st.items <- Program.Label l :: st.items

let spill_addr st s = Insn.Base_offset (Reg.sp, st.frame.spill_base + (4 * s))

let word_load dst addr =
  Insn.Load { spec = Insn.Ld_n; size = Insn.Word; sign = Insn.Signed; dst; addr }

let word_store src addr = Insn.Store { size = Insn.Word; src; addr }

(* Bring the value of a vreg into a register, using [scratch] for
   spilled values. *)
let use_vreg st scratch v =
  match st.ra.Regalloc.location v with
  | Regalloc.In_reg r -> r
  | Regalloc.Spilled s ->
    emit st (word_load scratch (spill_addr st s));
    scratch

(* Bring an operand into a register. *)
let use_operand st scratch = function
  | Ir.Reg v -> use_vreg st scratch v
  | Ir.Imm 0 -> Reg.zero
  | Ir.Imm n ->
    emit st (Insn.Li { dst = scratch; imm = n });
    scratch

(* ALU second operands can stay immediate. *)
let alu_operand st scratch = function
  | Ir.Reg v -> Insn.R (use_vreg st scratch v)
  | Ir.Imm n -> Insn.I n

(* Target register for defining a vreg, plus the writeback action. *)
let def_vreg st scratch v =
  match st.ra.Regalloc.location v with
  | Regalloc.In_reg r -> (r, fun () -> ())
  | Regalloc.Spilled s -> (scratch, fun () -> emit st (word_store scratch (spill_addr st s)))

let alu_op_of_binop = Ir.alu_of_binop

let resolve_addr st scratch1 scratch2 = function
  | Ir.Base (v, d) -> Insn.Base_offset (use_vreg st scratch1 v, d)
  | Ir.Base_index (b, i) ->
    let rb = use_vreg st scratch1 b in
    let ri = use_vreg st scratch2 i in
    Insn.Base_index (rb, ri)
  | Ir.Abs a -> Insn.Absolute a
  | Ir.Abs_sym (l, d) -> Insn.Absolute (Layout.address st.layout l + d)

let move_into st dst = function
  | Ir.Imm n -> emit st (Insn.Li { dst; imm = n })
  | Ir.Reg v -> begin
    match st.ra.Regalloc.location v with
    | Regalloc.In_reg r ->
      if r <> dst then
        emit st (Insn.Alu { op = Insn.Add; dst; src1 = r; src2 = Insn.I 0 })
    | Regalloc.Spilled s -> emit st (word_load dst (spill_addr st s))
  end

let builtin_syscall = function
  | "print_int" -> Some Insn.Print_int
  | "print_char" -> Some Insn.Print_char
  | "exit" -> Some Insn.Exit
  | _ -> None

let emit_inst st inst =
  match inst with
  | Ir.Bin (op, d, a, b) ->
    let ra_ = use_operand st Reg.scratch0 a in
    let rb = alu_operand st Reg.scratch1 b in
    let rd, writeback = def_vreg st Reg.scratch0 d in
    emit st (Insn.Alu { op = alu_op_of_binop op; dst = rd; src1 = ra_; src2 = rb });
    writeback ()
  | Ir.Mov (d, src) -> begin
    match st.ra.Regalloc.location d with
    | Regalloc.In_reg rd -> move_into st rd src
    | Regalloc.Spilled s ->
      let r = use_operand st Reg.scratch0 src in
      emit st (word_store r (spill_addr st s))
  end
  | Ir.Load { spec; size; sign; dst; addr } ->
    let a = resolve_addr st Reg.scratch0 Reg.scratch1 addr in
    let rd, writeback = def_vreg st Reg.scratch0 dst in
    emit st (Insn.Load { spec; size; sign; dst = rd; addr = a });
    writeback ()
  | Ir.Store { size; src; addr } ->
    let rs = use_operand st Reg.scratch0 src in
    let a = resolve_addr st Reg.scratch1 Reg.scratch2 addr in
    emit st (Insn.Store { size; src = rs; addr = a })
  | Ir.Global_addr (d, label) ->
    let rd, writeback = def_vreg st Reg.scratch0 d in
    emit st (Insn.Li { dst = rd; imm = Layout.address st.layout label });
    writeback ()
  | Ir.Slot_addr (d, slot) ->
    let rd, writeback = def_vreg st Reg.scratch0 d in
    emit st
      (Insn.Alu
         { op = Insn.Add; dst = rd; src1 = Reg.sp
         ; src2 = Insn.I st.frame.slot_offset.(slot) });
    writeback ()
  | Ir.Call { dst; callee; args } -> begin
    (* Arguments go to r{arg_first..}; allocated values never live in
       argument registers, so sequential moves are safe. *)
    List.iteri
      (fun i arg ->
        if Reg.arg_first + i > Reg.arg_last then
          invalid_arg (callee ^ ": too many arguments");
        move_into st (Reg.arg_first + i) arg)
      args;
    match builtin_syscall callee with
    | Some sc ->
      emit st (Insn.Syscall sc);
      (match dst with
      | Some d ->
        let rd, writeback = def_vreg st Reg.scratch0 d in
        emit st (Insn.Li { dst = rd; imm = 0 });
        writeback ()
      | None -> ())
    | None ->
      emit st (Insn.Jal callee);
      (match dst with
      | Some d -> begin
        match st.ra.Regalloc.location d with
        | Regalloc.In_reg rd ->
          if rd <> Reg.rv then
            emit st (Insn.Alu { op = Insn.Add; dst = rd; src1 = Reg.rv; src2 = Insn.I 0 })
        | Regalloc.Spilled s -> emit st (word_store Reg.rv (spill_addr st s))
      end
      | None -> ())
  end

let emit_term st ~next_label term =
  match term with
  | Ir.Jmp l -> if Some l <> next_label then emit st (Insn.Jump l)
  | Ir.Br { cond; src1; src2; ifso; ifnot } ->
    let r1 = use_operand st Reg.scratch0 src1 in
    let o2 = alu_operand st Reg.scratch1 src2 in
    emit st (Insn.Branch { cond; src1 = r1; src2 = o2; target = ifso });
    if Some ifnot <> next_label then emit st (Insn.Jump ifnot)
  | Ir.Ret op ->
    (match op with Some op -> move_into st Reg.rv op | None -> ());
    if Some st.epilogue <> next_label then emit st (Insn.Jump st.epilogue)

let emit_func ~layout (f : Ir.func) : Program.item list =
  let ra = Regalloc.allocate f in
  let frame = layout_frame f ra in
  let st = { items = []; frame; ra; layout; epilogue = f.Ir.name ^ ".ret" } in
  (* prologue *)
  emit_label st f.Ir.name;
  if frame.size > 0 then
    emit st (Insn.Alu { op = Insn.Sub; dst = Reg.sp; src1 = Reg.sp; src2 = Insn.I frame.size });
  emit st (word_store Reg.ra (Insn.Base_offset (Reg.sp, frame.size - 4)));
  List.iteri
    (fun i r -> emit st (word_store r (Insn.Base_offset (Reg.sp, frame.saved_base + (4 * i)))))
    ra.Regalloc.used_callee_saved;
  (* parameters from argument registers into their locations *)
  List.iteri
    (fun i p ->
      let src = Reg.arg_first + i in
      match ra.Regalloc.location p with
      | Regalloc.In_reg rd ->
        if rd <> src then
          emit st (Insn.Alu { op = Insn.Add; dst = rd; src1 = src; src2 = Insn.I 0 })
      | Regalloc.Spilled s -> emit st (word_store src (spill_addr st s)))
    f.Ir.params;
  (* body *)
  let rec blocks = function
    | [] -> ()
    | (b : Ir.block) :: rest ->
      let next_label =
        match rest with
        | (nb : Ir.block) :: _ -> Some nb.Ir.label
        | [] -> Some st.epilogue
      in
      emit_label st b.Ir.label;
      List.iter (emit_inst st) b.Ir.insts;
      emit_term st ~next_label b.Ir.term;
      blocks rest
  in
  blocks f.Ir.blocks;
  (* epilogue *)
  emit_label st st.epilogue;
  List.iteri
    (fun i r -> emit st (word_load r (Insn.Base_offset (Reg.sp, frame.saved_base + (4 * i)))))
    ra.Regalloc.used_callee_saved;
  emit st (word_load Reg.ra (Insn.Base_offset (Reg.sp, frame.size - 4)));
  if frame.size > 0 then
    emit st (Insn.Alu { op = Insn.Add; dst = Reg.sp; src1 = Reg.sp; src2 = Insn.I frame.size });
  emit st (Insn.Jr Reg.ra);
  List.rev st.items
