(** Linear-scan register allocation over single-range live intervals.

    Intervals crossing a call site are allocated from the callee-saved
    pool so calls need no caller-side save/restore; when no register
    is free, the interval with the furthest end point is spilled. *)

type location =
  | In_reg of Elag_isa.Reg.t
  | Spilled of int  (** spill-slot index, 4 bytes each *)

type result =
  { location : Elag_ir.Ir.vreg -> location
  ; spill_count : int
  ; used_callee_saved : Elag_isa.Reg.t list }

val allocate : Elag_ir.Ir.func -> result
