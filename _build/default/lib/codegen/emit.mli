(** Instruction selection and emission: one IR function to a list of
    assembly items.

    Frame layout (offsets from sp, stack grows down): local slots
    first, then register-allocator spill slots, then saved
    callee-saved registers, with the return address in the top word. *)

val emit_func :
  layout:Elag_isa.Layout.t -> Elag_ir.Ir.func -> Elag_isa.Program.item list
