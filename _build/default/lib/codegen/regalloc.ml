(* Linear-scan register allocation.

   Virtual-register live intervals are approximated by a single
   [start, stop] range over a linearization of the function (block
   layout order, instructions numbered sequentially).  Intervals that
   cross a call site are allocated from the callee-saved pool so that
   calls need no caller-side save/restore; other intervals prefer
   caller-saved registers.  When no register is free the interval with
   the furthest end point is spilled to a frame slot. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Liveness = Elag_ir.Liveness
module Reg = Elag_isa.Reg

module VS = Elag_ir.Liveness.VS

type location =
  | In_reg of Reg.t
  | Spilled of int  (* spill-slot index, 4 bytes each *)

type result =
  { location : Ir.vreg -> location
  ; spill_count : int
  ; used_callee_saved : Reg.t list }

type interval =
  { vreg : Ir.vreg
  ; start : int
  ; stop : int
  ; crosses_call : bool }

(* The allocatable pools.  Argument registers and the return-value
   register are deliberately excluded so that call sequences never
   collide with allocated values. *)
let caller_saved_pool =
  List.init (Reg.tmp_last - Reg.tmp_first + 1) (fun i -> Reg.tmp_first + i)

let callee_saved_pool =
  List.init (Reg.saved_last - Reg.saved_first + 1) (fun i -> Reg.saved_first + i)

let build_intervals (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let live = Liveness.compute cfg in
  let ranges : (Ir.vreg, int * int) Hashtbl.t = Hashtbl.create 64 in
  let calls = ref [] in
  let touch v pos =
    match Hashtbl.find_opt ranges v with
    | None -> Hashtbl.replace ranges v (pos, pos)
    | Some (s, e) -> Hashtbl.replace ranges v (min s pos, max e pos)
  in
  (* Parameters are defined at position -1 (before the first
     instruction). *)
  List.iter (fun p -> touch p (-1)) f.Ir.params;
  let pos = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let block_start = !pos in
      VS.iter (fun v -> touch v block_start) (Liveness.live_in live b.Ir.label);
      List.iter
        (fun inst ->
          List.iter (fun v -> touch v !pos) (Ir.inst_uses inst);
          List.iter (fun v -> touch v !pos) (Ir.inst_defs inst);
          (match inst with Ir.Call _ -> calls := !pos :: !calls | _ -> ());
          incr pos)
        b.Ir.insts;
      List.iter (fun v -> touch v !pos) (Ir.term_uses b.Ir.term);
      let block_end = !pos in
      VS.iter (fun v -> touch v block_end) (Liveness.live_out live b.Ir.label);
      incr pos)
    f.Ir.blocks;
  let call_positions = List.sort compare !calls in
  let crosses s e = List.exists (fun c -> s < c && c < e) call_positions in
  Hashtbl.fold
    (fun vreg (s, e) acc ->
      { vreg; start = s; stop = e; crosses_call = crosses s e } :: acc)
    ranges []
  |> List.sort (fun a b -> compare (a.start, a.vreg) (b.start, b.vreg))

let allocate (f : Ir.func) : result =
  let intervals = build_intervals f in
  let assignment : (Ir.vreg, location) Hashtbl.t = Hashtbl.create 64 in
  let free_caller = ref caller_saved_pool in
  let free_callee = ref callee_saved_pool in
  let used_callee = ref [] in
  let spill_count = ref 0 in
  (* active intervals sorted by stop *)
  let active = ref [] in
  let release reg =
    if List.mem reg caller_saved_pool then free_caller := reg :: !free_caller
    else free_callee := reg :: !free_callee
  in
  let expire current_start =
    let expired, still =
      List.partition (fun (iv, _) -> iv.stop < current_start) !active
    in
    List.iter (fun (_, reg) -> release reg) expired;
    active := still
  in
  let take_callee () =
    match !free_callee with
    | r :: rest ->
      free_callee := rest;
      if not (List.mem r !used_callee) then used_callee := r :: !used_callee;
      Some r
    | [] -> None
  in
  let take_caller () =
    match !free_caller with
    | r :: rest ->
      free_caller := rest;
      Some r
    | [] -> None
  in
  let fresh_spill () =
    let s = !spill_count in
    incr spill_count;
    Spilled s
  in
  List.iter
    (fun iv ->
      expire iv.start;
      let preferred, fallback =
        if iv.crosses_call then (take_callee, take_caller)
        else (take_caller, take_callee)
      in
      let reg =
        match preferred () with
        | Some r -> Some r
        | None -> fallback ()
      in
      match reg with
      | Some r ->
        (* record callee-saved usage even on fallback *)
        if List.mem r callee_saved_pool && not (List.mem r !used_callee) then
          used_callee := r :: !used_callee;
        (* a call-crossing interval that fell back to a caller-saved
           register would be clobbered: spill it instead *)
        if iv.crosses_call && List.mem r caller_saved_pool then begin
          release r;
          Hashtbl.replace assignment iv.vreg (fresh_spill ())
        end
        else begin
          Hashtbl.replace assignment iv.vreg (In_reg r);
          active :=
            List.sort (fun (a, _) (b, _) -> compare a.stop b.stop)
              ((iv, r) :: !active)
        end
      | None ->
        (* no register: spill the active interval with the furthest
           stop if it is further than ours *)
        let sorted = List.sort (fun (a, _) (b, _) -> compare b.stop a.stop) !active in
        (match sorted with
        | (victim, vreg_reg) :: _
          when victim.stop > iv.stop && victim.crosses_call = iv.crosses_call ->
          Hashtbl.replace assignment victim.vreg (fresh_spill ());
          active := List.filter (fun (a, _) -> a != victim) !active;
          Hashtbl.replace assignment iv.vreg (In_reg vreg_reg);
          active :=
            List.sort (fun (a, _) (b, _) -> compare a.stop b.stop)
              ((iv, vreg_reg) :: !active)
        | _ -> Hashtbl.replace assignment iv.vreg (fresh_spill ())))
    intervals;
  let location v =
    match Hashtbl.find_opt assignment v with
    | Some loc -> loc
    | None -> In_reg Reg.scratch0 (* dead vreg: any register is fine *)
  in
  { location; spill_count = !spill_count; used_callee_saved = List.sort compare !used_callee }
