lib/codegen/regalloc.ml: Elag_ir Elag_isa Hashtbl List
