lib/codegen/codegen.mli: Elag_ir Elag_isa
