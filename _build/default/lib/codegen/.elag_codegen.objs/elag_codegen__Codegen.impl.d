lib/codegen/codegen.ml: Elag_ir Elag_isa Emit List
