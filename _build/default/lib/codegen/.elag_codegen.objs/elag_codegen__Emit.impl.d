lib/codegen/emit.ml: Array Elag_ir Elag_isa List Regalloc
