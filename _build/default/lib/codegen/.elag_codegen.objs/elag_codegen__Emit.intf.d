lib/codegen/emit.mli: Elag_ir Elag_isa
