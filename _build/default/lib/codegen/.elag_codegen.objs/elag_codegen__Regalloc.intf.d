lib/codegen/regalloc.mli: Elag_ir Elag_isa
