(** Program-level code generation: lays out static data, emits every
    function through {!Emit}, adds the [_start] shim and assembles the
    final program. *)

val default_stack_top : int
(** 16 MiB: the top of the emulated stack. *)

val generate : ?stack_top:int -> Elag_ir.Ir.program -> Elag_isa.Program.t
