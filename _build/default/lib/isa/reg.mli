(** Architectural registers of the EPA-32 machine.

    64 integer registers, [r0] hard-wired to zero.  The named registers
    below encode the calling convention shared by the code generator and
    the emulator. *)

type t = int

val count : int
(** Number of architectural integer registers (64). *)

val zero : t
(** Hard-wired zero register. *)

val ra : t
(** Return-address register, written by [jal]. *)

val sp : t
(** Stack pointer. *)

val fp : t
(** Frame pointer. *)

val rv : t
(** Return-value register. *)

val arg_first : t
val arg_last : t
(** Argument registers [arg_first .. arg_last] (8 register arguments). *)

val tmp_first : t
val tmp_last : t
(** Caller-saved allocatable range. *)

val saved_first : t
val saved_last : t
(** Callee-saved allocatable range. *)

val scratch0 : t
val scratch1 : t
val scratch2 : t
(** Reserved code-generator scratch registers; never allocated. *)

val is_valid : t -> bool

val name : t -> string
(** Human-readable name; raises [Invalid_argument] on an invalid index. *)

val pp : t Fmt.t
