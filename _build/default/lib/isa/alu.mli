(** 32-bit ALU semantics shared by the emulator and the constant
    folder.  Values are OCaml ints normalized to the signed 32-bit
    range; division by zero yields 0. *)

val mask32 : int

val norm : int -> int
(** Normalize to the signed 32-bit range. *)

val to_unsigned : int -> int

val eval : Insn.alu_op -> int -> int -> int

val eval_cond : Insn.cond -> int -> int -> bool
