lib/isa/insn.ml: Fmt List Reg
