lib/isa/reg.mli: Fmt
