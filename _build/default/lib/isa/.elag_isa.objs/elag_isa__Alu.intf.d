lib/isa/alu.mli: Insn
