lib/isa/program.ml: Array Fmt Hashtbl Insn Layout List Printf
