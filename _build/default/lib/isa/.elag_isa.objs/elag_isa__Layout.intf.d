lib/isa/layout.mli:
