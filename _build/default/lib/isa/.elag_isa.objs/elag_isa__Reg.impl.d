lib/isa/reg.ml: Fmt Printf
