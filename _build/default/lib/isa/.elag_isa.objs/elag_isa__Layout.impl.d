lib/isa/layout.ml: Buffer Char Hashtbl List Printf String
