lib/isa/program.mli: Fmt Insn Layout
