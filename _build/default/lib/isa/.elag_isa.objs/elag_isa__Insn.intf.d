lib/isa/insn.mli: Fmt Reg
