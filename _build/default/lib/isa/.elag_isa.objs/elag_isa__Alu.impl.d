lib/isa/alu.ml: Insn
