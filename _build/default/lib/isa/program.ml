(* An assembled EPA-32 program: label-resolved code plus the initial
   data image.  Control-transfer targets are pre-resolved into the
   [targets] array so the emulator never performs string lookups. *)

type item =
  | Label of string
  | Insn of Insn.t
  | Comment of string

type t =
  { code : Insn.t array
  ; targets : int array  (* resolved target index per instruction, -1 if none *)
  ; symbols : (string, int) Hashtbl.t  (* code label -> instruction index *)
  ; entry : int
  ; data_image : (int * string) list
  ; heap_base : int
  ; source : item list }

exception Unknown_label of string

let target_label = function
  | Insn.Branch { target; _ } -> Some target
  | Insn.Jump l | Insn.Jal l -> Some l
  | _ -> None

let assemble ?(entry = "_start") ~layout items =
  let symbols = Hashtbl.create 256 in
  let count =
    List.fold_left
      (fun idx item ->
        match item with
        | Label l ->
          if Hashtbl.mem symbols l then
            invalid_arg (Printf.sprintf "Program.assemble: duplicate label %s" l);
          Hashtbl.replace symbols l idx;
          idx
        | Insn _ -> idx + 1
        | Comment _ -> idx)
      0 items
  in
  let code = Array.make (max count 1) Insn.Halt in
  let _ =
    List.fold_left
      (fun idx item ->
        match item with
        | Insn insn ->
          code.(idx) <- insn;
          idx + 1
        | Label _ | Comment _ -> idx)
      0 items
  in
  let resolve l =
    match Hashtbl.find_opt symbols l with
    | Some idx -> idx
    | None -> raise (Unknown_label l)
  in
  let targets =
    Array.map
      (fun insn ->
        match target_label insn with Some l -> resolve l | None -> -1)
      code
  in
  { code
  ; targets
  ; symbols
  ; entry = resolve entry
  ; data_image = Layout.image layout
  ; heap_base = Layout.heap_base layout
  ; source = items }

let length t = Array.length t.code

let insn t pc = t.code.(pc)

let target t pc = t.targets.(pc)

let entry t = t.entry

let data_image t = t.data_image

let heap_base t = t.heap_base

let symbol t label =
  match Hashtbl.find_opt t.symbols label with
  | Some idx -> idx
  | None -> raise (Unknown_label label)

(* Reverse map from instruction index to the labels placed on it, for
   disassembly listings. *)
let labels_at t =
  let map = Hashtbl.create 64 in
  Hashtbl.iter (fun l idx -> Hashtbl.add map idx l) t.symbols;
  fun idx -> Hashtbl.find_all map idx

let pp ppf t =
  let at = labels_at t in
  Array.iteri
    (fun idx insn ->
      List.iter (fun l -> Fmt.pf ppf "%s:@." l) (at idx);
      Fmt.pf ppf "  %04d  %a@." idx Insn.pp insn)
    t.code

(* Rewrite instructions (e.g. profile-driven load reclassification);
   control-flow targets must be preserved by [f]. *)
let map_insns f t =
  let code = Array.mapi f t.code in
  { t with code }

(* Static load table: one row per static load instruction, used by the
   classification and profiling machinery which is keyed by load PC. *)
let static_loads t =
  let rows = ref [] in
  Array.iteri
    (fun pc insn -> if Insn.is_load insn then rows := (pc, insn) :: !rows)
    t.code;
  List.rev !rows
