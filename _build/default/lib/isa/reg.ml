(* Architectural registers of the EPA-32 machine.

   The machine has 64 integer registers.  [r0] is hard-wired to zero, as
   on most RISC machines; writes to it are discarded.  A handful of
   registers have a fixed role in the calling convention used by the
   code generator (see {!Elag_codegen.Frame}). *)

type t = int

let count = 64

let zero = 0
let ra = 1 (* return address, written by [jal] *)
let sp = 2 (* stack pointer *)
let fp = 3 (* frame pointer *)
let rv = 4 (* return value *)

(* First and last argument registers: up to 8 arguments in registers. *)
let arg_first = 5
let arg_last = 12

(* Caller-saved temporaries available to the register allocator. *)
let tmp_first = 13
let tmp_last = 39

(* Callee-saved registers available to the register allocator. *)
let saved_first = 40
let saved_last = 60

(* Reserved scratch registers for the code generator itself (spill
   reloads, address materialization).  Never given to the allocator.
   Three are needed: a store through a reg+reg address with a spilled
   source reads three values. *)
let scratch0 = 62
let scratch1 = 63
let scratch2 = 61

let is_valid r = r >= 0 && r < count

let name r =
  if not (is_valid r) then invalid_arg "Reg.name"
  else if r = zero then "zero"
  else if r = ra then "ra"
  else if r = sp then "sp"
  else if r = fp then "fp"
  else Printf.sprintf "r%d" r

let pp ppf r = Fmt.string ppf (name r)
