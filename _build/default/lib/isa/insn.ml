(* EPA-32 instruction set.

   A small RISC ISA with HP PA-7100-like latencies (1-cycle integer
   ALU operations, 2-cycle loads) and the three load opcode specifiers
   introduced by the paper: [Ld_n] (normal), [Ld_p] (table-based address
   prediction) and [Ld_e] (early address calculation through R_addr). *)

type label = string

type load_spec = Ld_n | Ld_p | Ld_e

type mem_size = Byte | Half | Word

type signedness = Signed | Unsigned

type addr_mode =
  | Base_offset of Reg.t * int
  | Base_index of Reg.t * Reg.t
  | Absolute of int

type alu_op =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Sll | Srl | Sra
  | Slt | Sle | Seq | Sne

type operand = R of Reg.t | I of int

type cond = Eq | Ne | Lt | Le | Gt | Ge

type syscall = Print_int | Print_char | Exit

type t =
  | Alu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Li of { dst : Reg.t; imm : int }
  | Load of
      { spec : load_spec
      ; size : mem_size
      ; sign : signedness
      ; dst : Reg.t
      ; addr : addr_mode }
  | Store of { size : mem_size; src : Reg.t; addr : addr_mode }
  | Branch of { cond : cond; src1 : Reg.t; src2 : operand; target : label }
  | Jump of label
  | Jal of label
  | Jalr of Reg.t
  | Jr of Reg.t
  | Syscall of syscall
  | Nop
  | Halt

let size_bytes = function Byte -> 1 | Half -> 2 | Word -> 4

let addr_mode_registers = function
  | Base_offset (b, _) -> [ b ]
  | Base_index (b, i) -> [ b; i ]
  | Absolute _ -> []

let operand_registers = function R r -> [ r ] | I _ -> []

(* Source registers read by the instruction, excluding the hard-wired
   zero register (which never creates a hazard). *)
let uses insn =
  let raw =
    match insn with
    | Alu { src1; src2; _ } -> src1 :: operand_registers src2
    | Li _ -> []
    | Load { addr; _ } -> addr_mode_registers addr
    | Store { src; addr; _ } -> src :: addr_mode_registers addr
    | Branch { src1; src2; _ } -> src1 :: operand_registers src2
    | Jump _ | Jal _ -> []
    | Jalr r | Jr r -> [ r ]
    | Syscall (Print_int | Print_char) -> [ Reg.arg_first ]
    | Syscall Exit -> []
    | Nop | Halt -> []
  in
  List.filter (fun r -> r <> Reg.zero) raw

(* Destination registers written by the instruction. *)
let defs = function
  | Alu { dst; _ } | Li { dst; _ } | Load { dst; _ } ->
    if dst = Reg.zero then [] else [ dst ]
  | Jal _ | Jalr _ -> [ Reg.ra ]
  | Store _ | Branch _ | Jump _ | Jr _ | Syscall _ | Nop | Halt -> []

let is_load = function Load _ -> true | _ -> false
let is_store = function Store _ -> true | _ -> false

let is_memory insn = is_load insn || is_store insn

let is_branch = function
  | Branch _ | Jump _ | Jal _ | Jalr _ | Jr _ -> true
  | _ -> false

(* A control transfer whose target or outcome is not known until the
   instruction executes (used by the BTB model). *)
let is_control = is_branch

let load_spec = function Load { spec; _ } -> Some spec | _ -> None

let with_load_spec spec = function
  | Load l -> Load { l with spec }
  | insn -> insn

let pp_load_spec ppf spec =
  Fmt.string ppf (match spec with Ld_n -> "ld_n" | Ld_p -> "ld_p" | Ld_e -> "ld_e")

let pp_alu_op ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
    | And -> "and" | Or -> "or" | Xor -> "xor"
    | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
    | Slt -> "slt" | Sle -> "sle" | Seq -> "seq" | Sne -> "sne")

let pp_operand ppf = function R r -> Reg.pp ppf r | I n -> Fmt.int ppf n

let pp_cond ppf c =
  Fmt.string ppf
    (match c with
    | Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Le -> "ble" | Gt -> "bgt" | Ge -> "bge")

let pp_addr_mode ppf = function
  | Base_offset (b, off) -> Fmt.pf ppf "%d(%a)" off Reg.pp b
  | Base_index (b, i) -> Fmt.pf ppf "(%a+%a)" Reg.pp b Reg.pp i
  | Absolute a -> Fmt.pf ppf "[%d]" a

let mem_suffix size sign =
  match (size, sign) with
  | Byte, Signed -> "b"
  | Byte, Unsigned -> "bu"
  | Half, Signed -> "h"
  | Half, Unsigned -> "hu"
  | Word, _ -> "w"

let pp ppf = function
  | Alu { op; dst; src1; src2 } ->
    Fmt.pf ppf "%a %a, %a, %a" pp_alu_op op Reg.pp dst Reg.pp src1 pp_operand src2
  | Li { dst; imm } -> Fmt.pf ppf "li %a, %d" Reg.pp dst imm
  | Load { spec; size; sign; dst; addr } ->
    Fmt.pf ppf "%a.%s %a, %a" pp_load_spec spec (mem_suffix size sign) Reg.pp dst
      pp_addr_mode addr
  | Store { size; src; addr } ->
    Fmt.pf ppf "st.%s %a, %a" (mem_suffix size Signed) Reg.pp src pp_addr_mode addr
  | Branch { cond; src1; src2; target } ->
    Fmt.pf ppf "%a %a, %a, %s" pp_cond cond Reg.pp src1 pp_operand src2 target
  | Jump l -> Fmt.pf ppf "j %s" l
  | Jal l -> Fmt.pf ppf "jal %s" l
  | Jalr r -> Fmt.pf ppf "jalr %a" Reg.pp r
  | Jr r -> Fmt.pf ppf "jr %a" Reg.pp r
  | Syscall Print_int -> Fmt.string ppf "sys print_int"
  | Syscall Print_char -> Fmt.string ppf "sys print_char"
  | Syscall Exit -> Fmt.string ppf "sys exit"
  | Nop -> Fmt.string ppf "nop"
  | Halt -> Fmt.string ppf "halt"
