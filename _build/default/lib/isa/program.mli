(** An assembled EPA-32 program: label-resolved code plus the initial
    data image and heap base. *)

type item =
  | Label of string
  | Insn of Insn.t
  | Comment of string

type t

exception Unknown_label of string

val assemble : ?entry:string -> layout:Layout.t -> item list -> t
(** Resolve labels and build the program.  [entry] defaults to
    ["_start"].  Raises {!Unknown_label} for unresolved control-transfer
    targets and [Invalid_argument] for duplicate labels. *)

val length : t -> int
(** Number of instructions. *)

val insn : t -> int -> Insn.t
(** Instruction at index [pc]. *)

val target : t -> int -> int
(** Resolved control-transfer target of the instruction at [pc], or -1
    if the instruction has no static target. *)

val entry : t -> int
(** Entry-point instruction index. *)

val symbol : t -> string -> int
(** Instruction index of a code label. *)

val data_image : t -> (int * string) list

val heap_base : t -> int

val map_insns : (int -> Insn.t -> Insn.t) -> t -> t
(** Rewrite instructions in place positions (a fresh program is
    returned); [f] must preserve control-flow targets. *)

val static_loads : t -> (int * Insn.t) list
(** All static load instructions as [(pc, insn)] rows, in code order. *)

val pp : t Fmt.t
(** Disassembly listing. *)
