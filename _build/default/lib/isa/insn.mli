(** EPA-32 instruction set.

    A RISC instruction set with the paper's three load opcode specifiers:
    normal ([Ld_n]), table-based address prediction ([Ld_p]) and early
    address calculation through the special addressing register R_addr
    ([Ld_e]).  Loads support the three addressing modes discussed in the
    paper: register+offset, register+register and absolute. *)

type label = string

type load_spec = Ld_n | Ld_p | Ld_e

type mem_size = Byte | Half | Word

type signedness = Signed | Unsigned

type addr_mode =
  | Base_offset of Reg.t * int
  | Base_index of Reg.t * Reg.t
  | Absolute of int

type alu_op =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Sll | Srl | Sra
  | Slt | Sle | Seq | Sne

type operand = R of Reg.t | I of int

type cond = Eq | Ne | Lt | Le | Gt | Ge

type syscall = Print_int | Print_char | Exit

type t =
  | Alu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Li of { dst : Reg.t; imm : int }
  | Load of
      { spec : load_spec
      ; size : mem_size
      ; sign : signedness
      ; dst : Reg.t
      ; addr : addr_mode }
  | Store of { size : mem_size; src : Reg.t; addr : addr_mode }
  | Branch of { cond : cond; src1 : Reg.t; src2 : operand; target : label }
  | Jump of label
  | Jal of label
  | Jalr of Reg.t
  | Jr of Reg.t
  | Syscall of syscall
  | Nop
  | Halt

val size_bytes : mem_size -> int

val addr_mode_registers : addr_mode -> Reg.t list
(** Registers read to form the effective address. *)

val uses : t -> Reg.t list
(** Source registers read by the instruction (zero register excluded). *)

val defs : t -> Reg.t list
(** Destination registers written (zero register excluded). *)

val is_load : t -> bool
val is_store : t -> bool
val is_memory : t -> bool
val is_branch : t -> bool
val is_control : t -> bool

val load_spec : t -> load_spec option
(** [Some spec] for loads, [None] otherwise. *)

val with_load_spec : load_spec -> t -> t
(** Replace a load's specifier; identity on non-loads. *)

val pp_load_spec : load_spec Fmt.t
val pp_alu_op : alu_op Fmt.t
val pp_operand : operand Fmt.t
val pp_cond : cond Fmt.t
val pp_addr_mode : addr_mode Fmt.t
val pp : t Fmt.t
