(* Static data layout.

   Assigns byte addresses to global data labels before code generation,
   so the code generator can materialize absolute addresses.  Produces
   the initial memory image consumed by the emulator. *)

type init =
  | Zeros of int
  | Words of int list
  | Bytes of string

type entry = { address : int; init : init }

type t =
  { base : int
  ; mutable next : int
  ; symbols : (string, entry) Hashtbl.t
  ; mutable order : string list }

let default_base = 0x1000

(* Reserved word just below the data segment where the emulator
   publishes the heap base; the MiniC runtime's allocator reads it. *)
let heap_pointer_slot = default_base - 4

let create ?(base = default_base) () =
  { base; next = base; symbols = Hashtbl.create 64; order = [] }

let init_size = function
  | Zeros n -> n
  | Words ws -> 4 * List.length ws
  | Bytes s -> String.length s

let align_up n align = (n + align - 1) / align * align

let add t ~label ~align ~init =
  if Hashtbl.mem t.symbols label then
    invalid_arg (Printf.sprintf "Layout.add: duplicate label %s" label);
  let address = align_up t.next (max 1 align) in
  t.next <- address + init_size init;
  Hashtbl.replace t.symbols label { address; init };
  t.order <- label :: t.order;
  address

let address t label =
  match Hashtbl.find_opt t.symbols label with
  | Some { address; _ } -> address
  | None -> invalid_arg (Printf.sprintf "Layout.address: unknown label %s" label)

let mem t label = Hashtbl.mem t.symbols label

let heap_base t = align_up t.next 16

let bytes_of_init = function
  | Zeros n -> String.make n '\000'
  | Bytes s -> s
  | Words ws ->
    let b = Buffer.create (4 * List.length ws) in
    let emit w =
      for i = 0 to 3 do
        Buffer.add_char b (Char.chr ((w lsr (8 * i)) land 0xff))
      done
    in
    List.iter emit ws;
    Buffer.contents b

let image t =
  List.rev_map
    (fun label ->
      let { address; init } = Hashtbl.find t.symbols label in
      (address, bytes_of_init init))
    t.order
