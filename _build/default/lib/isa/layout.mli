(** Static data layout: assigns byte addresses to global data labels and
    produces the initial memory image loaded by the emulator. *)

type init =
  | Zeros of int         (** zero-filled region of [n] bytes *)
  | Words of int list    (** little-endian 32-bit words *)
  | Bytes of string      (** raw bytes *)

type t

val default_base : int
(** Default start of the data segment (0x1000). *)

val heap_pointer_slot : int
(** Reserved word just below the data segment where the emulator
    publishes the heap base address (see {!Elag_sim.Emulator}). *)

val create : ?base:int -> unit -> t

val add : t -> label:string -> align:int -> init:init -> int
(** Allocate a region for [label]; returns its byte address.
    Raises [Invalid_argument] on duplicate labels. *)

val address : t -> string -> int
(** Address previously assigned to [label]; raises on unknown labels. *)

val mem : t -> string -> bool

val heap_base : t -> int
(** First 16-byte-aligned byte after all static data. *)

val image : t -> (int * string) list
(** Initial memory image as [(address, bytes)] pairs, in layout order. *)
