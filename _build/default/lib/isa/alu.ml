(* 32-bit ALU semantics shared by the emulator and the compiler's
   constant folder, so folded results always match execution.

   Values are OCaml ints normalized to the signed 32-bit range.  Shift
   counts are masked to 5 bits.  Division by zero yields 0 rather than
   trapping (MiniC workloads never rely on it; this keeps speculative
   re-execution in the simulator total). *)

let mask32 = 0xFFFFFFFF

(* Normalize to signed 32-bit. *)
let norm x =
  let x = x land mask32 in
  if x land 0x80000000 <> 0 then x - (mask32 + 1) else x

let to_unsigned x = x land mask32

let bool_int b = if b then 1 else 0

let eval (op : Insn.alu_op) a b =
  let a = norm a and b = norm b in
  match op with
  | Insn.Add -> norm (a + b)
  | Insn.Sub -> norm (a - b)
  | Insn.Mul -> norm (a * b)
  | Insn.Div -> if b = 0 then 0 else norm (a / b)
  | Insn.Rem -> if b = 0 then 0 else norm (a mod b)
  | Insn.And -> norm (a land b)
  | Insn.Or -> norm (a lor b)
  | Insn.Xor -> norm (a lxor b)
  | Insn.Sll -> norm (to_unsigned a lsl (b land 31))
  | Insn.Srl -> norm (to_unsigned a lsr (b land 31))
  | Insn.Sra -> norm (a asr (b land 31))
  | Insn.Slt -> bool_int (a < b)
  | Insn.Sle -> bool_int (a <= b)
  | Insn.Seq -> bool_int (a = b)
  | Insn.Sne -> bool_int (a <> b)

let eval_cond (cond : Insn.cond) a b =
  let a = norm a and b = norm b in
  match cond with
  | Insn.Eq -> a = b
  | Insn.Ne -> a <> b
  | Insn.Lt -> a < b
  | Insn.Le -> a <= b
  | Insn.Gt -> a > b
  | Insn.Ge -> a >= b
