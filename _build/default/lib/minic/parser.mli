(** Recursive-descent parser for MiniC.

    Syntactic sugar handled here: [e1 op= e2] parses as
    [e1 = e1 op e2]; [++e], [e++], [--e], [e--] parse as
    [e = e +- 1] (both forms yield the new value).  Array dimensions
    accept simple constant expressions (literals combined with
    [*], [+], [-]). *)

exception Error of string * int
(** Message and source line (lexical errors are wrapped too). *)

val parse : string -> Ast.program
