(* Semantic analysis: resolves names, checks types, computes struct
   layouts, interns string literals, and produces the typed tree. *)

exception Error of string * int

let error line fmt = Printf.ksprintf (fun msg -> raise (Error (msg, line))) fmt

type func_sig = { sig_ret : Ast.ty; sig_params : Ast.ty list }

type env =
  { structs : Structs.t
  ; globals : (string, Ast.ty) Hashtbl.t
  ; funcs : (string, func_sig) Hashtbl.t
  ; strings : (string, string) Hashtbl.t  (* contents -> label *)
  ; mutable string_order : (string * string) list  (* label, contents *)
  ; mutable next_string : int }

let builtins =
  [ ("print_int", { sig_ret = Ast.Tvoid; sig_params = [ Ast.Tint ] })
  ; ("print_char", { sig_ret = Ast.Tvoid; sig_params = [ Ast.Tint ] })
  ; ("exit", { sig_ret = Ast.Tvoid; sig_params = [ Ast.Tint ] }) ]

let is_builtin name = List.mem_assoc name builtins

let intern_string env contents =
  match Hashtbl.find_opt env.strings contents with
  | Some label -> label
  | None ->
    let label = Printf.sprintf "__str%d" env.next_string in
    env.next_string <- env.next_string + 1;
    Hashtbl.replace env.strings contents label;
    env.string_order <- (label, contents) :: env.string_order;
    label

(* Per-function checking state. *)
type fstate =
  { env : env
  ; ret_ty : Ast.ty
  ; mutable scopes : (string, Typed.local) Hashtbl.t list
  ; mutable locals : Typed.local list
  ; mutable next_local : int
  ; mutable loop_depth : int }

let push_scope fs = fs.scopes <- Hashtbl.create 8 :: fs.scopes
let pop_scope fs =
  match fs.scopes with
  | _ :: rest -> fs.scopes <- rest
  | [] -> assert false

let lookup_local fs name =
  let rec go = function
    | [] -> None
    | scope :: rest ->
      (match Hashtbl.find_opt scope name with Some l -> Some l | None -> go rest)
  in
  go fs.scopes

let declare_local fs line ~is_param name ty =
  (match fs.scopes with
  | scope :: _ when Hashtbl.mem scope name ->
    error line "redeclaration of %s" name
  | _ -> ());
  let local =
    { Typed.local_name = name
    ; local_ty = ty
    ; local_id = fs.next_local
    ; addr_taken = false
    ; is_param }
  in
  fs.next_local <- fs.next_local + 1;
  fs.locals <- local :: fs.locals;
  (match fs.scopes with
  | scope :: _ -> Hashtbl.replace scope name local
  | [] -> assert false);
  local

let rec check_ty_wf env line = function
  | Ast.Tstruct s when not (Structs.mem env.structs s) ->
    error line "unknown struct %s" s
  | Ast.Tptr t -> check_ty_wf env line t
  | Ast.Tarray (t, n) ->
    if n <= 0 then error line "array dimension must be positive";
    check_ty_wf env line t
  | Ast.Tvoid | Ast.Tint | Ast.Tchar | Ast.Tstruct _ -> ()

let mk desc ty line : Typed.expr = { desc; ty; line }

(* Apply array-to-pointer decay for value contexts. *)
let rvalue (e : Typed.expr) =
  match e.ty with
  | Ast.Tarray (elt, _) -> mk (Typed.Decay e) (Ast.Tptr elt) e.line
  | _ -> e

let rec is_lvalue (e : Typed.expr) =
  match e.desc with
  | Typed.Var _ | Typed.Index _ | Typed.Deref _ -> true
  | Typed.Field (base, _) -> is_lvalue base
  | _ -> false

(* Mark scalar locals whose own storage escapes via [&] so lowering
   puts them on the stack instead of in a virtual register.  [&a[i]]
   and [&p->f] do not expose the base local itself: arrays and structs
   always live in stack slots, and a pointer base is only read. *)
let rec mark_addr_taken (e : Typed.expr) =
  match e.desc with
  | Typed.Var (Typed.Local l) -> l.addr_taken <- true
  | Typed.Field (base, _) -> mark_addr_taken base
  | _ -> ()

let scalar_check line what ty =
  if not (Typed.is_scalar ty) then
    error line "%s must have scalar type (found %s)" what
      (Fmt.str "%a" Ast.pp_ty ty)

let compatible t1 t2 =
  match (t1, t2) with
  | (Ast.Tint | Ast.Tchar), (Ast.Tint | Ast.Tchar) -> true
  | Ast.Tptr _, Ast.Tptr _ -> true
  (* permissive int<->pointer mixing, as the workload kernels use
     integer "addresses" returned by their own allocators *)
  | Ast.Tptr _, (Ast.Tint | Ast.Tchar) | (Ast.Tint | Ast.Tchar), Ast.Tptr _ -> true
  | _ -> t1 = t2

let rec check_expr fs (e : Ast.expr) : Typed.expr =
  let line = e.line in
  match e.desc with
  | Ast.Int_lit n -> mk (Typed.Const n) Ast.Tint line
  | Ast.Char_lit c -> mk (Typed.Const (Char.code c)) Ast.Tint line
  | Ast.Str_lit s ->
    let label = intern_string fs.env s in
    mk (Typed.Str label) (Ast.Tptr Ast.Tchar) line
  | Ast.Var name -> begin
    match lookup_local fs name with
    | Some l -> mk (Typed.Var (Typed.Local l)) l.Typed.local_ty line
    | None ->
      (match Hashtbl.find_opt fs.env.globals name with
      | Some ty -> mk (Typed.Var (Typed.Global (name, ty))) ty line
      | None -> error line "unknown variable %s" name)
  end
  | Ast.Sizeof ty ->
    check_ty_wf fs.env line ty;
    mk (Typed.Const (Structs.size_of fs.env.structs ty)) Ast.Tint line
  | Ast.Unop (op, a) ->
    let a = rvalue (check_expr fs a) in
    (match op with
    | Ast.Neg | Ast.Bnot ->
      scalar_check line "operand" a.ty;
      mk (Typed.Unop (op, a)) Ast.Tint line
    | Ast.Lnot ->
      scalar_check line "operand" a.ty;
      mk (Typed.Unop (op, a)) Ast.Tint line)
  | Ast.Binop (op, a, b) -> check_binop fs line op a b
  | Ast.Assign (lhs, rhs) ->
    let lhs = check_expr fs lhs in
    if not (is_lvalue lhs) then error line "assignment target is not an lvalue";
    scalar_check line "assignment target" lhs.ty;
    let rhs = rvalue (check_expr fs rhs) in
    if not (compatible lhs.ty rhs.ty) then
      error line "incompatible assignment: %s = %s"
        (Fmt.str "%a" Ast.pp_ty lhs.ty) (Fmt.str "%a" Ast.pp_ty rhs.ty);
    mk (Typed.Assign (lhs, rhs)) lhs.ty line
  | Ast.Call (name, args) ->
    let signature =
      match List.assoc_opt name builtins with
      | Some s -> s
      | None ->
        (match Hashtbl.find_opt fs.env.funcs name with
        | Some s -> s
        | None -> error line "call to unknown function %s" name)
    in
    let expected = List.length signature.sig_params in
    if List.length args <> expected then
      error line "%s expects %d arguments, got %d" name expected (List.length args);
    let args =
      List.map2
        (fun pty arg ->
          let arg = rvalue (check_expr fs arg) in
          if not (compatible pty arg.Typed.ty) then
            error line "argument type mismatch in call to %s" name;
          arg)
        signature.sig_params args
    in
    mk (Typed.Call (name, args)) signature.sig_ret line
  | Ast.Index (base, idx) ->
    let base = rvalue (check_expr fs base) in
    let idx = rvalue (check_expr fs idx) in
    scalar_check line "array index" idx.ty;
    (match base.ty with
    | Ast.Tptr elt -> mk (Typed.Index (base, idx)) elt line
    | _ -> error line "indexed expression is not a pointer or array")
  | Ast.Field (base, fname) ->
    let base = check_expr fs base in
    (match base.ty with
    | Ast.Tstruct sname ->
      let f = find_field fs line sname fname in
      mk (Typed.Field (base, fname)) f.Structs.field_ty line
    | _ -> error line "field access on non-struct value")
  | Ast.Arrow (base, fname) ->
    let base = rvalue (check_expr fs base) in
    (match base.ty with
    | Ast.Tptr (Ast.Tstruct sname) ->
      let f = find_field fs line sname fname in
      let deref = mk (Typed.Deref base) (Ast.Tstruct sname) line in
      mk (Typed.Field (deref, fname)) f.Structs.field_ty line
    | _ -> error line "-> on non-struct-pointer value")
  | Ast.Deref p ->
    let p = rvalue (check_expr fs p) in
    (match p.ty with
    | Ast.Tptr t -> mk (Typed.Deref p) t line
    | _ -> error line "dereference of non-pointer")
  | Ast.Addr_of a ->
    let a = check_expr fs a in
    if not (is_lvalue a) then error line "& requires an lvalue";
    mark_addr_taken a;
    mk (Typed.Addr_of a) (Ast.Tptr a.ty) line
  | Ast.Cond (c, t, f) ->
    let c = rvalue (check_expr fs c) in
    scalar_check line "condition" c.ty;
    let t = rvalue (check_expr fs t) in
    let f = rvalue (check_expr fs f) in
    if not (compatible t.ty f.ty) then error line "mismatched ?: branches";
    let ty = match t.ty with Ast.Tptr _ -> t.ty | _ -> t.ty in
    mk (Typed.Cond (c, t, f)) ty line
  | Ast.Cast (ty, a) ->
    check_ty_wf fs.env line ty;
    scalar_check line "cast target" ty;
    let a = rvalue (check_expr fs a) in
    scalar_check line "cast operand" a.ty;
    { a with ty }

and find_field fs line sname fname =
  try Structs.field fs.env.structs ~struct_name:sname ~field_name:fname
  with
  | Structs.Unknown_field _ -> error line "struct %s has no field %s" sname fname
  | Structs.Unknown_struct _ -> error line "unknown struct %s" sname

and check_binop fs line op a b =
  let a = rvalue (check_expr fs a) in
  let b = rvalue (check_expr fs b) in
  scalar_check line "operand" a.ty;
  scalar_check line "operand" b.ty;
  let ty =
    match (op, a.Typed.ty, b.Typed.ty) with
    | Ast.Add, Ast.Tptr _, (Ast.Tint | Ast.Tchar) -> a.Typed.ty
    | Ast.Add, (Ast.Tint | Ast.Tchar), Ast.Tptr _ -> b.Typed.ty
    | Ast.Sub, Ast.Tptr _, (Ast.Tint | Ast.Tchar) -> a.Typed.ty
    | Ast.Sub, Ast.Tptr _, Ast.Tptr _ -> Ast.Tint
    | (Ast.Add | Ast.Sub), Ast.Tptr _, _ | (Ast.Add | Ast.Sub), _, Ast.Tptr _ ->
      error line "invalid pointer arithmetic"
    | (Ast.Mul | Ast.Div | Ast.Rem | Ast.Shl | Ast.Shr
      | Ast.Band | Ast.Bor | Ast.Bxor), Ast.Tptr _, _
    | (Ast.Mul | Ast.Div | Ast.Rem | Ast.Shl | Ast.Shr
      | Ast.Band | Ast.Bor | Ast.Bxor), _, Ast.Tptr _ ->
      error line "invalid pointer operand"
    | _ -> Ast.Tint
  in
  mk (Typed.Binop (op, a, b)) ty line

let rec check_stmt fs (s : Ast.stmt) : Typed.stmt =
  let line = s.sline in
  match s.sdesc with
  | Ast.Sexpr e -> Typed.Sexpr (check_expr fs e)
  | Ast.Sdecl (ty, name, init) ->
    check_ty_wf fs.env line ty;
    if ty = Ast.Tvoid then error line "void variable %s" name;
    let init =
      match init with
      | None -> None
      | Some e ->
        scalar_check line "initialized variable" ty;
        let e = rvalue (check_expr fs e) in
        if not (compatible ty e.Typed.ty) then
          error line "incompatible initializer for %s" name;
        Some e
    in
    let local = declare_local fs line ~is_param:false name ty in
    Typed.Sdecl (local, init)
  | Ast.Sif (c, t, f) ->
    let c = rvalue (check_expr fs c) in
    scalar_check line "condition" c.Typed.ty;
    let t = check_branch fs t in
    let f = match f with None -> [] | Some f -> check_branch fs f in
    Typed.Sif (c, t, f)
  | Ast.Swhile (c, body) ->
    let c = rvalue (check_expr fs c) in
    scalar_check line "condition" c.Typed.ty;
    Typed.Sloop
      { cond = c; body = check_loop_body fs body; step = []; post_test = false }
  | Ast.Sdo_while (body, c) ->
    let body = check_loop_body fs body in
    let c = rvalue (check_expr fs c) in
    scalar_check line "condition" c.Typed.ty;
    Typed.Sloop { cond = c; body; step = []; post_test = true }
  | Ast.Sfor (init, cond, step, body) ->
    push_scope fs;
    let init = Option.map (check_stmt fs) init in
    let cond =
      match cond with
      | None -> mk (Typed.Const 1) Ast.Tint line
      | Some c ->
        let c = rvalue (check_expr fs c) in
        scalar_check line "condition" c.Typed.ty;
        c
    in
    let step = Option.map (fun e -> Typed.Sexpr (check_expr fs e)) step in
    fs.loop_depth <- fs.loop_depth + 1;
    let body = [ check_stmt fs body ] in
    fs.loop_depth <- fs.loop_depth - 1;
    pop_scope fs;
    let loop =
      Typed.Sloop { cond; body; step = Option.to_list step; post_test = false }
    in
    Typed.Sblock (Option.to_list init @ [ loop ])
  | Ast.Sblock body ->
    push_scope fs;
    let body = List.map (check_stmt fs) body in
    pop_scope fs;
    Typed.Sblock body
  | Ast.Sreturn e ->
    let e =
      match (e, fs.ret_ty) with
      | None, Ast.Tvoid -> None
      | None, _ -> error line "missing return value"
      | Some _, Ast.Tvoid -> error line "returning a value from a void function"
      | Some e, ret ->
        let e = rvalue (check_expr fs e) in
        if not (compatible ret e.Typed.ty) then error line "bad return type";
        Some e
    in
    Typed.Sreturn e
  | Ast.Sbreak ->
    if fs.loop_depth = 0 then error line "break outside a loop";
    Typed.Sbreak
  | Ast.Scontinue ->
    if fs.loop_depth = 0 then error line "continue outside a loop";
    Typed.Scontinue

and check_branch fs s =
  push_scope fs;
  let r = [ check_stmt fs s ] in
  pop_scope fs;
  r

and check_loop_body fs s =
  fs.loop_depth <- fs.loop_depth + 1;
  push_scope fs;
  let r = [ check_stmt fs s ] in
  pop_scope fs;
  fs.loop_depth <- fs.loop_depth - 1;
  r

(* Parameters of array type decay to pointers. *)
let decay_param_ty = function
  | Ast.Tarray (elt, _) -> Ast.Tptr elt
  | ty -> ty

let check_func env (f : Ast.func_def) : Typed.func =
  let fs =
    { env; ret_ty = f.return_ty; scopes = []; locals = []; next_local = 0
    ; loop_depth = 0 }
  in
  push_scope fs;
  let params =
    List.map
      (fun (ty, name) ->
        let ty = decay_param_ty ty in
        check_ty_wf env f.func_line ty;
        scalar_check f.func_line "parameter" ty;
        declare_local fs f.func_line ~is_param:true name ty)
      f.params
  in
  let body = List.map (check_stmt fs) f.body in
  pop_scope fs;
  { Typed.name = f.func_name
  ; return_ty = f.return_ty
  ; params
  ; locals = List.rev fs.locals
  ; body }

let check_global env (g : Ast.global_def) =
  check_ty_wf env g.global_line g.global_ty;
  if g.global_ty = Ast.Tvoid then error g.global_line "void global";
  (match (g.global_init, g.global_ty) with
  | None, _ -> ()
  | Some (Ast.Init_int _), ty when Typed.is_scalar ty -> ()
  | Some (Ast.Init_list _), Ast.Tarray ((Ast.Tint | Ast.Tchar | Ast.Tptr _), _) -> ()
  | Some (Ast.Init_string _), Ast.Tarray (Ast.Tchar, _) -> ()
  | Some _, _ -> error g.global_line "bad initializer for %s" g.global_name);
  (g.global_name, g.global_ty, g.global_init)

let check (prog : Ast.program) : Typed.program =
  let env =
    { structs = Structs.create ()
    ; globals = Hashtbl.create 32
    ; funcs = Hashtbl.create 32
    ; strings = Hashtbl.create 16
    ; string_order = []
    ; next_string = 0 }
  in
  (* Pass 1: struct layouts, global types and function signatures, in
     declaration order, so bodies can call forward. *)
  List.iter
    (function
      | Ast.Dstruct def ->
        (try Structs.define env.structs def
         with Invalid_argument msg -> error def.struct_line "%s" msg)
      | Ast.Dglobal g ->
        if Hashtbl.mem env.globals g.global_name then
          error g.global_line "duplicate global %s" g.global_name;
        check_ty_wf env g.global_line g.global_ty;
        Hashtbl.replace env.globals g.global_name g.global_ty
      | Ast.Dfunc f ->
        if Hashtbl.mem env.funcs f.func_name || is_builtin f.func_name then
          error f.func_line "duplicate function %s" f.func_name;
        Hashtbl.replace env.funcs f.func_name
          { sig_ret = f.return_ty
          ; sig_params = List.map (fun (ty, _) -> decay_param_ty ty) f.params })
    prog;
  (* Pass 2: bodies. *)
  let globals = ref [] in
  let funcs = ref [] in
  List.iter
    (function
      | Ast.Dstruct _ -> ()
      | Ast.Dglobal g -> globals := check_global env g :: !globals
      | Ast.Dfunc f -> funcs := check_func env f :: !funcs)
    prog;
  if not (Hashtbl.mem env.funcs "main") then
    raise (Error ("program has no main function", 0));
  { Typed.structs = env.structs
  ; globals = List.rev !globals
  ; strings = List.rev env.string_order
  ; funcs = List.rev !funcs }
