(* Abstract syntax of MiniC, the C subset the workload kernels are
   written in.  The parser produces this untyped tree; {!Sema} checks it
   and produces the typed tree in {!Typed}. *)

type ty =
  | Tvoid
  | Tint
  | Tchar
  | Tptr of ty
  | Tarray of ty * int
  | Tstruct of string

type unop =
  | Neg   (* -e *)
  | Lnot  (* !e *)
  | Bnot  (* ~e *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type expr =
  { desc : expr_desc
  ; line : int }

and expr_desc =
  | Int_lit of int
  | Char_lit of char
  | Str_lit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Field of expr * string
  | Arrow of expr * string
  | Deref of expr
  | Addr_of of expr
  | Cond of expr * expr * expr
  | Cast of ty * expr
  | Sizeof of ty

type stmt =
  { sdesc : stmt_desc
  ; sline : int }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo_while of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sblock of stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue

type global_init =
  | Init_int of int
  | Init_list of int list
  | Init_string of string

type struct_def =
  { struct_name : string
  ; fields : (ty * string) list
  ; struct_line : int }

type global_def =
  { global_ty : ty
  ; global_name : string
  ; global_init : global_init option
  ; global_line : int }

type func_def =
  { func_name : string
  ; return_ty : ty
  ; params : (ty * string) list
  ; body : stmt list
  ; func_line : int }

type decl =
  | Dstruct of struct_def
  | Dglobal of global_def
  | Dfunc of func_def

type program = decl list

let rec pp_ty ppf = function
  | Tvoid -> Fmt.string ppf "void"
  | Tint -> Fmt.string ppf "int"
  | Tchar -> Fmt.string ppf "char"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp_ty t n
  | Tstruct s -> Fmt.pf ppf "struct %s" s

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"

let unop_name = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"
