lib/minic/typed.ml: Ast Structs
