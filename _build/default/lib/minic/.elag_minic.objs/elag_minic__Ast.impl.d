lib/minic/ast.ml: Fmt
