lib/minic/sema.mli: Ast Typed
