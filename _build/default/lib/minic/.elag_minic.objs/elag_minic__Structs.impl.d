lib/minic/structs.ml: Ast Hashtbl List
