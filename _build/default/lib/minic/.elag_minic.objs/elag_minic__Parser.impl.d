lib/minic/parser.ml: Array Ast Char Lexer List Printf
