lib/minic/structs.mli: Ast
