lib/minic/lexer.ml: Buffer Char List Printf String
