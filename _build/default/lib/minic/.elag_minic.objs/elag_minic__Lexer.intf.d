lib/minic/lexer.mli:
