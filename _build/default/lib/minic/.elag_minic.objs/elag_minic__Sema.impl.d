lib/minic/sema.ml: Ast Char Fmt Hashtbl List Option Printf Structs Typed
