(* Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_INT | KW_CHAR | KW_VOID | KW_STRUCT
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_SIZEOF
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | QUESTION | COLON
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR | AMP | PIPE | CARET | TILDE | BANG
  | ANDAND | OROR
  | EQ | EQEQ | NEQ | LT | LE | GT | GE
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

type t =
  { token : token
  ; line : int }

exception Error of string * int

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "char" -> Some KW_CHAR
  | "void" -> Some KW_VOID
  | "struct" -> Some KW_STRUCT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "sizeof" -> Some KW_SIZEOF
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let hex_value c =
  if is_digit c then Char.code c - Char.code '0'
  else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
  else Char.code c - Char.code 'A' + 10

(* Tokenize the whole source eagerly; MiniC sources are small. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  let cur () = peek 0 in
  let advance () =
    if cur () = '\n' then incr line;
    incr pos
  in
  let emit tok = tokens := { token = tok; line = !line } :: !tokens in
  let error msg = raise (Error (msg, !line)) in
  let lex_escape () =
    (* cursor is on the char after the backslash *)
    let c = cur () in
    advance ();
    match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '\'' -> '\''
    | '"' -> '"'
    | c -> error (Printf.sprintf "unknown escape \\%c" c)
  in
  while !pos < n do
    let c = cur () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = '/' then
      while !pos < n && cur () <> '\n' do advance () done
    else if c = '/' && peek 1 = '*' then begin
      advance (); advance ();
      let rec skip () =
        if !pos >= n then error "unterminated comment"
        else if cur () = '*' && peek 1 = '/' then begin advance (); advance () end
        else begin advance (); skip () end
      in
      skip ()
    end
    else if is_digit c then begin
      if c = '0' && (peek 1 = 'x' || peek 1 = 'X') then begin
        advance (); advance ();
        let v = ref 0 in
        if not (is_hex (cur ())) then error "bad hex literal";
        while is_hex (cur ()) do
          v := (!v * 16) + hex_value (cur ());
          advance ()
        done;
        emit (INT_LIT !v)
      end
      else begin
        let v = ref 0 in
        while is_digit (cur ()) do
          v := (!v * 10) + (Char.code (cur ()) - Char.code '0');
          advance ()
        done;
        emit (INT_LIT !v)
      end
    end
    else if is_alpha c then begin
      let start = !pos in
      while is_alnum (cur ()) do advance () done;
      let s = String.sub src start (!pos - start) in
      match keyword_of_string s with
      | Some kw -> emit kw
      | None -> emit (IDENT s)
    end
    else if c = '\'' then begin
      advance ();
      let ch = if cur () = '\\' then begin advance (); lex_escape () end
        else begin let ch = cur () in advance (); ch end
      in
      if cur () <> '\'' then error "unterminated char literal";
      advance ();
      emit (CHAR_LIT ch)
    end
    else if c = '"' then begin
      advance ();
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then error "unterminated string literal"
        else if cur () = '"' then advance ()
        else if cur () = '\\' then begin
          advance ();
          Buffer.add_char b (lex_escape ());
          go ()
        end
        else begin
          Buffer.add_char b (cur ());
          advance ();
          go ()
        end
      in
      go ();
      emit (STR_LIT (Buffer.contents b))
    end
    else begin
      let two tok = advance (); advance (); emit tok in
      let one tok = advance (); emit tok in
      match (c, peek 1) with
      | '<', '<' -> two SHL
      | '>', '>' -> two SHR
      | '&', '&' -> two ANDAND
      | '|', '|' -> two OROR
      | '=', '=' -> two EQEQ
      | '!', '=' -> two NEQ
      | '<', '=' -> two LE
      | '>', '=' -> two GE
      | '+', '=' -> two PLUSEQ
      | '-', '=' -> two MINUSEQ
      | '*', '=' -> two STAREQ
      | '/', '=' -> two SLASHEQ
      | '+', '+' -> two PLUSPLUS
      | '-', '-' -> two MINUSMINUS
      | '-', '>' -> two ARROW
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '.', _ -> one DOT
      | '?', _ -> one QUESTION
      | ':', _ -> one COLON
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '!', _ -> one BANG
      | '=', _ -> one EQ
      | '<', _ -> one LT
      | '>', _ -> one GT
      | c, _ -> error (Printf.sprintf "unexpected character %C" c)
    end
  done;
  emit EOF;
  List.rev !tokens

let token_name = function
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | CHAR_LIT c -> Printf.sprintf "char %C" c
  | STR_LIT _ -> "string literal"
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KW_INT -> "int" | KW_CHAR -> "char" | KW_VOID -> "void"
  | KW_STRUCT -> "struct" | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_WHILE -> "while" | KW_DO -> "do" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_SIZEOF -> "sizeof"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | ARROW -> "->"
  | QUESTION -> "?" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | SHL -> "<<" | SHR -> ">>" | AMP -> "&" | PIPE -> "|" | CARET -> "^"
  | TILDE -> "~" | BANG -> "!"
  | ANDAND -> "&&" | OROR -> "||"
  | EQ -> "=" | EQEQ -> "==" | NEQ -> "!=" | LT -> "<" | LE -> "<="
  | GT -> ">" | GE -> ">="
  | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*=" | SLASHEQ -> "/="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "end of file"
