(** Struct layout: field offsets, sizes and alignments, computed with
    natural alignment (char 1, int/pointer 4). *)

type field = { field_ty : Ast.ty; offset : int }

type info =
  { size : int
  ; align : int
  ; by_name : (string * field) list }

type t

exception Unknown_struct of string
exception Unknown_field of string * string

val create : unit -> t

val define : t -> Ast.struct_def -> unit
(** Structs must be defined before use inside other structs.  Raises
    [Invalid_argument] on duplicates. *)

val info : t -> string -> info

val size_of : t -> Ast.ty -> int
val align_of : t -> Ast.ty -> int

val field : t -> struct_name:string -> field_name:string -> field

val mem : t -> string -> bool
