(** Semantic analysis: resolves names, checks types, computes struct
    layouts, interns string literals, and produces the typed tree.

    Two-pass: all struct layouts, global types and function signatures
    are collected first, so functions may call forward (including
    mutual recursion) without prototypes. *)

exception Error of string * int
(** Message and source line. *)

val check : Ast.program -> Typed.program
