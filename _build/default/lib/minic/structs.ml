(* Struct layout: field offsets, sizes and alignments, computed with
   natural alignment (char 1, int/pointer 4). *)

type field = { field_ty : Ast.ty; offset : int }

type info =
  { size : int
  ; align : int
  ; by_name : (string * field) list }

type t = (string, info) Hashtbl.t

exception Unknown_struct of string
exception Unknown_field of string * string

let create () : t = Hashtbl.create 16

let info t name =
  match Hashtbl.find_opt t name with
  | Some i -> i
  | None -> raise (Unknown_struct name)

let rec size_of t = function
  | Ast.Tvoid -> 0
  | Ast.Tint -> 4
  | Ast.Tchar -> 1
  | Ast.Tptr _ -> 4
  | Ast.Tarray (elt, n) -> n * size_of t elt
  | Ast.Tstruct s -> (info t s).size

let rec align_of t = function
  | Ast.Tvoid -> 1
  | Ast.Tint -> 4
  | Ast.Tchar -> 1
  | Ast.Tptr _ -> 4
  | Ast.Tarray (elt, _) -> align_of t elt
  | Ast.Tstruct s -> (info t s).align

let align_up n a = (n + a - 1) / a * a

(* Structs must be defined before use inside other structs, so a single
   pass in declaration order suffices. *)
let define t (def : Ast.struct_def) =
  if Hashtbl.mem t def.struct_name then
    invalid_arg ("duplicate struct " ^ def.struct_name);
  let offset = ref 0 in
  let align = ref 1 in
  let by_name =
    List.map
      (fun (fty, fname) ->
        let a = align_of t fty in
        align := max !align a;
        let off = align_up !offset a in
        offset := off + size_of t fty;
        (fname, { field_ty = fty; offset = off }))
      def.fields
  in
  let size = align_up !offset !align in
  Hashtbl.replace t def.struct_name { size = max size 1; align = !align; by_name }

let field t ~struct_name ~field_name =
  let i = info t struct_name in
  match List.assoc_opt field_name i.by_name with
  | Some f -> f
  | None -> raise (Unknown_field (struct_name, field_name))

let mem t name = Hashtbl.mem t name
