(** Hand-written lexer for MiniC.  Tokenizes eagerly (sources are
    small) with line tracking for error messages. *)

type token =
  | INT_LIT of int
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  | KW_INT | KW_CHAR | KW_VOID | KW_STRUCT
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_SIZEOF
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR | AMP | PIPE | CARET | TILDE | BANG
  | ANDAND | OROR
  | EQ | EQEQ | NEQ | LT | LE | GT | GE
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | EOF

type t =
  { token : token
  ; line : int }

exception Error of string * int
(** Message and line number. *)

val tokenize : string -> t list
(** The whole token stream, ending with [EOF]. *)

val token_name : token -> string
(** Human-readable name for error messages. *)
