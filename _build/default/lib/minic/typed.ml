(* Typed abstract syntax, produced by {!Sema}.

   Differences from {!Ast}:
   - every expression carries its type;
   - variable references are resolved (global vs. local, with a shared
     mutable [local] record that tracks address-taken-ness);
   - [p->f] is normalized to a deref followed by a field access;
     character literals and [sizeof]
     are folded to constants; string literals are interned with a label;
   - arrays decay to pointers where used as values. *)

type local =
  { local_name : string
  ; local_ty : Ast.ty
  ; local_id : int
  ; mutable addr_taken : bool
  ; is_param : bool }

type var_ref =
  | Global of string * Ast.ty
  | Local of local

type expr =
  { desc : expr_desc
  ; ty : Ast.ty
  ; line : int }

and expr_desc =
  | Const of int
  | Str of string  (* data label of the interned string *)
  | Var of var_ref
  | Unop of Ast.unop * expr
  | Binop of Ast.binop * expr * expr
  | Assign of expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Field of expr * string    (* operand has struct type *)
  | Deref of expr
  | Addr_of of expr
  | Cond of expr * expr * expr
  | Decay of expr             (* array lvalue used as a pointer value *)

type stmt =
  | Sexpr of expr
  | Sdecl of local * expr option
  | Sif of expr * stmt list * stmt list
  | Sloop of loop
  | Sblock of stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue

(* Unified loop form.  [continue] jumps to [step] (then the condition);
   [post_test] loops run the body once before the first test. *)
and loop =
  { cond : expr
  ; body : stmt list
  ; step : stmt list
  ; post_test : bool }

type func =
  { name : string
  ; return_ty : Ast.ty
  ; params : local list
  ; locals : local list  (* includes params *)
  ; body : stmt list }

type program =
  { structs : Structs.t
  ; globals : (string * Ast.ty * Ast.global_init option) list
  ; strings : (string * string) list  (* label, contents *)
  ; funcs : func list }

let is_scalar = function
  | Ast.Tint | Ast.Tchar | Ast.Tptr _ -> true
  | Ast.Tvoid | Ast.Tarray _ | Ast.Tstruct _ -> false
