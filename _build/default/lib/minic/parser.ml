(* Recursive-descent parser for MiniC.

   Syntactic sugar handled here:
   - [e1 op= e2] parses as [e1 = e1 op e2];
   - [++e], [e++], [--e], [e--] parse as [e = e +/- 1] (both forms yield
     the new value; workload sources never rely on the post-increment
     old value in expression position). *)

open Ast

exception Error of string * int

type state =
  { tokens : Lexer.t array
  ; mutable index : int }

let make tokens = { tokens = Array.of_list tokens; index = 0 }

let peek st = st.tokens.(st.index).Lexer.token
let peek2 st =
  if st.index + 1 < Array.length st.tokens then st.tokens.(st.index + 1).Lexer.token
  else Lexer.EOF
let line st = st.tokens.(st.index).Lexer.line

let error st msg = raise (Error (msg, line st))

let advance st = st.index <- st.index + 1

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
         (Lexer.token_name (peek st)))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | tok -> error st (Printf.sprintf "expected identifier, found %s" (Lexer.token_name tok))

(* --- types --------------------------------------------------------- *)

let starts_type st =
  match peek st with
  | Lexer.KW_INT | Lexer.KW_CHAR | Lexer.KW_VOID | Lexer.KW_STRUCT -> true
  | _ -> false

let parse_base_type st =
  match peek st with
  | Lexer.KW_INT -> advance st; Tint
  | Lexer.KW_CHAR -> advance st; Tchar
  | Lexer.KW_VOID -> advance st; Tvoid
  | Lexer.KW_STRUCT ->
    advance st;
    let name = expect_ident st in
    Tstruct name
  | tok -> error st (Printf.sprintf "expected a type, found %s" (Lexer.token_name tok))

let parse_stars st ty =
  let rec go ty =
    if peek st = Lexer.STAR then begin advance st; go (Tptr ty) end else ty
  in
  go ty

let parse_type st = parse_stars st (parse_base_type st)

(* Array dimensions allow simple constant expressions:
   literals combined with [*], [+] and [-]. *)
let parse_const_dim st =
  let atom () =
    match peek st with
    | Lexer.INT_LIT n -> advance st; n
    | Lexer.CHAR_LIT c -> advance st; Char.code c
    | _ -> error st "array dimension must be a constant expression"
  in
  let rec go acc =
    match peek st with
    | Lexer.STAR -> advance st; go (acc * atom ())
    | Lexer.PLUS -> advance st; go (acc + atom ())
    | Lexer.MINUS -> advance st; go (acc - atom ())
    | _ -> acc
  in
  go (atom ())

(* Array suffixes bind outside-in: [int a[2][3]] is an array of 2 arrays
   of 3 ints. *)
let rec parse_array_suffix st ty =
  if peek st = Lexer.LBRACKET then begin
    advance st;
    let n = parse_const_dim st in
    expect st Lexer.RBRACKET;
    Tarray (parse_array_suffix st ty, n)
  end
  else ty

(* --- expressions --------------------------------------------------- *)

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  let binop_assign op =
    advance st;
    let rhs = parse_assign st in
    { desc = Assign (lhs, { desc = Binop (op, lhs, rhs); line = lhs.line })
    ; line = lhs.line }
  in
  match peek st with
  | Lexer.EQ ->
    advance st;
    let rhs = parse_assign st in
    { desc = Assign (lhs, rhs); line = lhs.line }
  | Lexer.PLUSEQ -> binop_assign Add
  | Lexer.MINUSEQ -> binop_assign Sub
  | Lexer.STAREQ -> binop_assign Mul
  | Lexer.SLASHEQ -> binop_assign Div
  | _ -> lhs

and parse_cond st =
  let c = parse_lor st in
  if peek st = Lexer.QUESTION then begin
    advance st;
    let t = parse_assign st in
    expect st Lexer.COLON;
    let f = parse_cond st in
    { desc = Cond (c, t, f); line = c.line }
  end
  else c

and parse_left st next table =
  let rec go lhs =
    match List.assoc_opt (peek st) table with
    | Some op ->
      advance st;
      let rhs = next st in
      go { desc = Binop (op, lhs, rhs); line = lhs.line }
    | None -> lhs
  in
  go (next st)

and parse_lor st = parse_left st parse_land [ (Lexer.OROR, Lor) ]
and parse_land st = parse_left st parse_bor [ (Lexer.ANDAND, Land) ]
and parse_bor st = parse_left st parse_bxor [ (Lexer.PIPE, Bor) ]
and parse_bxor st = parse_left st parse_band [ (Lexer.CARET, Bxor) ]
and parse_band st = parse_left st parse_equality [ (Lexer.AMP, Band) ]

and parse_equality st =
  parse_left st parse_relational [ (Lexer.EQEQ, Eq); (Lexer.NEQ, Ne) ]

and parse_relational st =
  parse_left st parse_shift
    [ (Lexer.LT, Lt); (Lexer.LE, Le); (Lexer.GT, Gt); (Lexer.GE, Ge) ]

and parse_shift st =
  parse_left st parse_additive [ (Lexer.SHL, Shl); (Lexer.SHR, Shr) ]

and parse_additive st =
  parse_left st parse_multiplicative [ (Lexer.PLUS, Add); (Lexer.MINUS, Sub) ]

and parse_multiplicative st =
  parse_left st parse_unary
    [ (Lexer.STAR, Mul); (Lexer.SLASH, Div); (Lexer.PERCENT, Rem) ]

and parse_unary st =
  let ln = line st in
  match peek st with
  | Lexer.MINUS ->
    advance st;
    { desc = Unop (Neg, parse_unary st); line = ln }
  | Lexer.BANG ->
    advance st;
    { desc = Unop (Lnot, parse_unary st); line = ln }
  | Lexer.TILDE ->
    advance st;
    { desc = Unop (Bnot, parse_unary st); line = ln }
  | Lexer.STAR ->
    advance st;
    { desc = Deref (parse_unary st); line = ln }
  | Lexer.AMP ->
    advance st;
    { desc = Addr_of (parse_unary st); line = ln }
  | Lexer.PLUSPLUS | Lexer.MINUSMINUS ->
    let op = if peek st = Lexer.PLUSPLUS then Add else Sub in
    advance st;
    let e = parse_unary st in
    { desc =
        Assign (e, { desc = Binop (op, e, { desc = Int_lit 1; line = ln }); line = ln })
    ; line = ln }
  | Lexer.KW_SIZEOF ->
    advance st;
    expect st Lexer.LPAREN;
    let ty = parse_array_suffix st (parse_type st) in
    expect st Lexer.RPAREN;
    { desc = Sizeof ty; line = ln }
  | Lexer.LPAREN when starts_type_after_lparen st ->
    advance st;
    let ty = parse_type st in
    expect st Lexer.RPAREN;
    { desc = Cast (ty, parse_unary st); line = ln }
  | _ -> parse_postfix st

and starts_type_after_lparen st =
  peek st = Lexer.LPAREN
  &&
  match peek2 st with
  | Lexer.KW_INT | Lexer.KW_CHAR | Lexer.KW_VOID | Lexer.KW_STRUCT -> true
  | _ -> false

and parse_postfix st =
  let rec go e =
    match peek st with
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET;
      go { desc = Index (e, idx); line = e.line }
    | Lexer.DOT ->
      advance st;
      let f = expect_ident st in
      go { desc = Field (e, f); line = e.line }
    | Lexer.ARROW ->
      advance st;
      let f = expect_ident st in
      go { desc = Arrow (e, f); line = e.line }
    | Lexer.PLUSPLUS | Lexer.MINUSMINUS ->
      let op = if peek st = Lexer.PLUSPLUS then Add else Sub in
      let ln = line st in
      advance st;
      go
        { desc =
            Assign (e, { desc = Binop (op, e, { desc = Int_lit 1; line = ln }); line = ln })
        ; line = e.line }
    | _ -> e
  in
  go (parse_primary st)

and parse_primary st =
  let ln = line st in
  match peek st with
  | Lexer.INT_LIT n -> advance st; { desc = Int_lit n; line = ln }
  | Lexer.CHAR_LIT c -> advance st; { desc = Char_lit c; line = ln }
  | Lexer.STR_LIT s -> advance st; { desc = Str_lit s; line = ln }
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      let args = parse_args st in
      expect st Lexer.RPAREN;
      { desc = Call (name, args); line = ln }
    end
    else { desc = Var name; line = ln }
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | tok -> error st (Printf.sprintf "unexpected %s in expression" (Lexer.token_name tok))

and parse_args st =
  if peek st = Lexer.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if peek st = Lexer.COMMA then begin advance st; go (e :: acc) end
      else List.rev (e :: acc)
    in
    go []

(* --- statements ---------------------------------------------------- *)

let rec parse_stmt st =
  let ln = line st in
  let mk sdesc = { sdesc; sline = ln } in
  match peek st with
  | Lexer.LBRACE ->
    advance st;
    let body = parse_block_items st in
    expect st Lexer.RBRACE;
    mk (Sblock body)
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let c = parse_expr st in
    expect st Lexer.RPAREN;
    let then_ = parse_stmt st in
    if peek st = Lexer.KW_ELSE then begin
      advance st;
      let else_ = parse_stmt st in
      mk (Sif (c, then_, Some else_))
    end
    else mk (Sif (c, then_, None))
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let c = parse_expr st in
    expect st Lexer.RPAREN;
    mk (Swhile (c, parse_stmt st))
  | Lexer.KW_DO ->
    advance st;
    let body = parse_stmt st in
    expect st Lexer.KW_WHILE;
    expect st Lexer.LPAREN;
    let c = parse_expr st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    mk (Sdo_while (body, c))
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let init =
      if peek st = Lexer.SEMI then begin advance st; None end
      else if starts_type st then begin
        let s = parse_decl_stmt st in
        Some s
      end
      else begin
        let e = parse_expr st in
        expect st Lexer.SEMI;
        Some { sdesc = Sexpr e; sline = ln }
      end
    in
    let cond = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
    expect st Lexer.SEMI;
    let step = if peek st = Lexer.RPAREN then None else Some (parse_expr st) in
    expect st Lexer.RPAREN;
    mk (Sfor (init, cond, step, parse_stmt st))
  | Lexer.KW_RETURN ->
    advance st;
    if peek st = Lexer.SEMI then begin
      advance st;
      mk (Sreturn None)
    end
    else begin
      let e = parse_expr st in
      expect st Lexer.SEMI;
      mk (Sreturn (Some e))
    end
  | Lexer.KW_BREAK ->
    advance st;
    expect st Lexer.SEMI;
    mk Sbreak
  | Lexer.KW_CONTINUE ->
    advance st;
    expect st Lexer.SEMI;
    mk Scontinue
  | _ when starts_type st -> parse_decl_stmt st
  | _ ->
    let e = parse_expr st in
    expect st Lexer.SEMI;
    mk (Sexpr e)

and parse_decl_stmt st =
  let ln = line st in
  let base = parse_type st in
  let name = expect_ident st in
  let ty = parse_array_suffix st base in
  let init =
    if peek st = Lexer.EQ then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  expect st Lexer.SEMI;
  { sdesc = Sdecl (ty, name, init); sline = ln }

and parse_block_items st =
  let rec go acc =
    if peek st = Lexer.RBRACE || peek st = Lexer.EOF then List.rev acc
    else go (parse_stmt st :: acc)
  in
  go []

(* --- top-level declarations ---------------------------------------- *)

let parse_global_init st =
  match peek st with
  | Lexer.INT_LIT n -> advance st; Init_int n
  | Lexer.CHAR_LIT c -> advance st; Init_int (Char.code c)
  | Lexer.MINUS ->
    advance st;
    (match peek st with
    | Lexer.INT_LIT n -> advance st; Init_int (-n)
    | _ -> error st "expected integer after unary minus in initializer")
  | Lexer.STR_LIT s -> advance st; Init_string s
  | Lexer.LBRACE ->
    advance st;
    let rec go acc =
      match peek st with
      | Lexer.RBRACE -> advance st; List.rev acc
      | Lexer.INT_LIT n ->
        advance st;
        if peek st = Lexer.COMMA then advance st;
        go (n :: acc)
      | Lexer.CHAR_LIT c ->
        advance st;
        if peek st = Lexer.COMMA then advance st;
        go (Char.code c :: acc)
      | Lexer.MINUS ->
        advance st;
        (match peek st with
        | Lexer.INT_LIT n ->
          advance st;
          if peek st = Lexer.COMMA then advance st;
          go (-n :: acc)
        | _ -> error st "expected integer after unary minus in initializer")
      | tok -> error st (Printf.sprintf "bad initializer element %s" (Lexer.token_name tok))
    in
    Init_list (go [])
  | tok -> error st (Printf.sprintf "bad global initializer %s" (Lexer.token_name tok))

let parse_struct_def st =
  let ln = line st in
  expect st Lexer.KW_STRUCT;
  let name = expect_ident st in
  expect st Lexer.LBRACE;
  let rec fields acc =
    if peek st = Lexer.RBRACE then List.rev acc
    else begin
      let base = parse_type st in
      let fname = expect_ident st in
      let fty = parse_array_suffix st base in
      expect st Lexer.SEMI;
      fields ((fty, fname) :: acc)
    end
  in
  let fs = fields [] in
  expect st Lexer.RBRACE;
  expect st Lexer.SEMI;
  { struct_name = name; fields = fs; struct_line = ln }

let parse_params st =
  if peek st = Lexer.RPAREN then []
  else if peek st = Lexer.KW_VOID && peek2 st = Lexer.RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let base = parse_type st in
      let name = expect_ident st in
      let ty = parse_array_suffix st base in
      let acc = (ty, name) :: acc in
      if peek st = Lexer.COMMA then begin advance st; go acc end
      else List.rev acc
    in
    go []

let rec parse_decl st =
  let ln = line st in
  if peek st = Lexer.KW_STRUCT then
    (* "struct S { ... };" is a definition; "struct S name" is a use. *)
    match peek2 st with
    | Lexer.IDENT _ ->
      let save = st.index in
      advance st;
      advance st;
      if peek st = Lexer.LBRACE then begin
        st.index <- save;
        Dstruct (parse_struct_def st)
      end
      else begin
        st.index <- save;
        parse_global_or_func st ln
      end
    | _ -> error st "expected struct name"
  else parse_global_or_func st ln

and parse_global_or_func st ln =
  let base = parse_type st in
  let name = expect_ident st in
  if peek st = Lexer.LPAREN then begin
    advance st;
    let params = parse_params st in
    expect st Lexer.RPAREN;
    expect st Lexer.LBRACE;
    let body = parse_block_items st in
    expect st Lexer.RBRACE;
    Dfunc { func_name = name; return_ty = base; params; body; func_line = ln }
  end
  else begin
    let ty = parse_array_suffix st base in
    let init =
      if peek st = Lexer.EQ then begin
        advance st;
        Some (parse_global_init st)
      end
      else None
    in
    expect st Lexer.SEMI;
    Dglobal { global_ty = ty; global_name = name; global_init = init; global_line = ln }
  end

let parse_program st =
  let rec go acc =
    if peek st = Lexer.EOF then List.rev acc else go (parse_decl st :: acc)
  in
  go []

let parse src =
  let tokens =
    try Lexer.tokenize src
    with Lexer.Error (msg, ln) -> raise (Error ("lexical error: " ^ msg, ln))
  in
  parse_program (make tokens)
