(** One entry of the address-prediction state machine (paper
    Figure 3).  Two states, Functioning and Learning: PA is the
    predicted address for the next access, ST the observed stride, STC
    the stride-confidence bit.  Except for freshly allocated entries,
    stride confidence is only rebuilt after the same stride is seen in
    two consecutive instances of the load. *)

type state = Functioning | Learning

type t =
  { mutable pa : int
  ; mutable st : int
  ; mutable stc : bool
  ; mutable state : state }

val allocate : int -> t
(** New entry for a load whose first computed address was [ca]:
    functioning, PA=CA, ST=0, STC set. *)

val replace : t -> int -> unit
(** Reinitialize in place (table-entry replacement on a tag miss). *)

val predicted_address : t -> int

val update : t -> int -> bool
(** Feed the computed address observed at the MEM stage; performs the
    Figure 3 transition and returns whether the prior prediction was
    correct (PA = CA). *)
