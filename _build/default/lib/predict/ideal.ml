(* Unbounded per-PC stride predictor used for the prediction-rate
   methodology of Table 2: "a simulation methodology that performs
   individual operation prediction ... not affected by the limitations
   of a prediction cache".

   Every static load gets its own Figure 3 state machine; the
   prediction rate of a load is the fraction of its dynamic executions
   whose address was predicted correctly (the first execution cannot
   be). *)

type counters =
  { mutable executions : int
  ; mutable correct : int
  ; entry : Stride_entry.t
  ; mutable seen : bool }

type t = (int, counters) Hashtbl.t

let create () : t = Hashtbl.create 256

(* Observe one dynamic execution of the load at [pc] with computed
   address [ca]. *)
let observe (t : t) ~pc ~ca =
  let c =
    match Hashtbl.find_opt t pc with
    | Some c -> c
    | None ->
      let c = { executions = 0; correct = 0; entry = Stride_entry.allocate ca; seen = false } in
      Hashtbl.replace t pc c;
      c
  in
  c.executions <- c.executions + 1;
  if c.seen then begin
    if Stride_entry.update c.entry ca then c.correct <- c.correct + 1
  end
  else begin
    (* first execution: the allocation already recorded ca *)
    c.seen <- true;
    ignore (Stride_entry.update c.entry ca)
  end

let rate (t : t) pc =
  match Hashtbl.find_opt t pc with
  | Some c when c.executions > 0 -> Some (float_of_int c.correct /. float_of_int c.executions)
  | _ -> None

let executions (t : t) pc =
  match Hashtbl.find_opt t pc with Some c -> c.executions | None -> 0

(* Aggregate prediction rate over a set of loads, dynamically weighted:
   total correct / total executions. *)
let aggregate_rate (t : t) pcs =
  let correct, total =
    List.fold_left
      (fun (c, n) pc ->
        match Hashtbl.find_opt t pc with
        | Some k -> (c + k.correct, n + k.executions)
        | None -> (c, n))
      (0, 0) pcs
  in
  if total = 0 then None else Some (float_of_int correct /. float_of_int total)

