(* One entry of the address-prediction state machine (paper Figure 3).

   Two states: Functioning and Learning.  PA is the predicted address
   for the next access, ST the observed stride, STC the
   stride-confidence bit.  Except for a freshly allocated entry, stride
   confidence is only rebuilt after the same stride is seen in two
   consecutive instances of the load. *)

type state = Functioning | Learning

type t =
  { mutable pa : int
  ; mutable st : int
  ; mutable stc : bool
  ; mutable state : state }

let allocate ca = { pa = ca; st = 0; stc = true; state = Functioning }

(* Reinitialize in place (table entry replacement). *)
let replace t ca =
  t.pa <- ca;
  t.st <- 0;
  t.stc <- true;
  t.state <- Functioning

let predicted_address t = t.pa

(* Feed the actual address [ca] observed at the MEM stage; returns
   whether the prediction (PA made before this access) was correct. *)
let update t ca =
  let correct = t.pa = ca in
  (match t.state with
  | Functioning ->
    if correct then t.pa <- ca + t.st (* Correct: PA <- CA+ST *)
    else begin
      (* New_Stride: learn a tentative stride *)
      t.st <- ca - t.pa;
      t.pa <- ca;
      t.stc <- false;
      t.state <- Learning
    end
  | Learning ->
    if ca - t.pa = t.st then begin
      (* Verified_Stride *)
      t.pa <- ca + t.st;
      t.stc <- true;
      t.state <- Functioning
    end
    else begin
      t.st <- ca - t.pa;
      t.pa <- ca;
      t.stc <- false
    end);
  correct
