(** Unbounded per-PC stride predictor: the prediction-rate methodology
    of the paper's Table 2 ("individual operation prediction ... not
    affected by the limitations of a prediction cache").

    Every static load gets its own Figure 3 state machine; a load's
    prediction rate is the fraction of its dynamic executions whose
    address was predicted correctly. *)

type t

val create : unit -> t

val observe : t -> pc:int -> ca:int -> unit
(** Record one dynamic execution of the load at [pc] with computed
    address [ca]. *)

val rate : t -> int -> float option
(** Prediction rate of the load at [pc]; [None] if never executed. *)

val executions : t -> int -> int

val aggregate_rate : t -> int list -> float option
(** Dynamically-weighted prediction rate over a set of loads:
    total correct / total executions. *)

