(** Branch target buffer: direct-mapped, tagged, 2-bit saturating
    counters (the paper's 1K-entry configuration).  Allocation happens
    on taken branches only. *)

type t

type prediction = { pred_taken : bool; pred_target : int }

val create : int -> t

val predict : t -> int -> prediction
(** Prediction for the control instruction at [pc]; a miss predicts
    not-taken, falling through to [pc + 1]. *)

val update : t -> int -> taken:bool -> target:int -> bool
(** Resolve with the actual outcome, updating counters/target.
    Returns whether the earlier prediction was correct (direction, and
    target when taken). *)

val misprediction_count : t -> int
