lib/predict/bric.ml: List
