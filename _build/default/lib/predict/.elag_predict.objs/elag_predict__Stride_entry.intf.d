lib/predict/stride_entry.mli:
