lib/predict/addr_table.ml: Array Stride_entry
