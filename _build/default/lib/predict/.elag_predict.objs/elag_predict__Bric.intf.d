lib/predict/bric.mli:
