lib/predict/ideal.ml: Hashtbl List Stride_entry
