lib/predict/addr_table.mli:
