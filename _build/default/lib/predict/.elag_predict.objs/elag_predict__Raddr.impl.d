lib/predict/raddr.ml:
