lib/predict/btb.mli:
