lib/predict/ideal.mli:
