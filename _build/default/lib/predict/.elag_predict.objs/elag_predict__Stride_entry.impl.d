lib/predict/stride_entry.ml:
