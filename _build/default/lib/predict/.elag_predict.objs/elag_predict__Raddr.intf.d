lib/predict/raddr.mli:
