lib/predict/btb.ml: Array
