(* Reference numbers transcribed from the paper, used to print
   paper-vs-measured comparisons in every experiment.

   Sources: Table 2 (load characteristics + prediction rates),
   Table 3 (profile-guided classification), Table 4 (MediaBench),
   Section 5.2 text (Figure 5c average speedups: hardware-only
   dual-path 26%, compiler heuristics 34%, heuristics+profiling 38%). *)

type table2_row =
  { t2_name : string
  ; t2_static_nt : float
  ; t2_static_pd : float
  ; t2_static_ec : float
  ; t2_dynamic_nt : float
  ; t2_dynamic_pd : float
  ; t2_dynamic_ec : float
  ; t2_rate_nt : float
  ; t2_rate_pd : float }

let table2 : table2_row list =
  [ { t2_name = "008.espresso"; t2_static_nt = 17.25; t2_static_pd = 50.08; t2_static_ec = 32.67; t2_dynamic_nt = 18.10; t2_dynamic_pd = 74.52; t2_dynamic_ec = 7.38; t2_rate_nt = 92.65; t2_rate_pd = 77.92 }
  ; { t2_name = "022.li"; t2_static_nt = 19.76; t2_static_pd = 30.10; t2_static_ec = 50.14; t2_dynamic_nt = 21.59; t2_dynamic_pd = 35.37; t2_dynamic_ec = 43.04; t2_rate_nt = 54.56; t2_rate_pd = 95.19 }
  ; { t2_name = "023.eqntott"; t2_static_nt = 17.66; t2_static_pd = 57.64; t2_static_ec = 24.70; t2_dynamic_nt = 3.74; t2_dynamic_pd = 92.79; t2_dynamic_ec = 3.47; t2_rate_nt = 92.03; t2_rate_pd = 94.67 }
  ; { t2_name = "026.compress"; t2_static_nt = 9.12; t2_static_pd = 85.04; t2_static_ec = 5.84; t2_dynamic_nt = 26.01; t2_dynamic_pd = 73.74; t2_dynamic_ec = 0.25; t2_rate_nt = 83.07; t2_rate_pd = 95.11 }
  ; { t2_name = "072.sc"; t2_static_nt = 16.77; t2_static_pd = 45.32; t2_static_ec = 37.91; t2_dynamic_nt = 20.15; t2_dynamic_pd = 64.21; t2_dynamic_ec = 15.64; t2_rate_nt = 44.29; t2_rate_pd = 98.30 }
  ; { t2_name = "085.cc1"; t2_static_nt = 22.19; t2_static_pd = 32.93; t2_static_ec = 44.88; t2_dynamic_nt = 24.15; t2_dynamic_pd = 48.40; t2_dynamic_ec = 27.45; t2_rate_nt = 64.61; t2_rate_pd = 88.88 }
  ; { t2_name = "124.m88ksim"; t2_static_nt = 5.67; t2_static_pd = 54.52; t2_static_ec = 39.81; t2_dynamic_nt = 8.46; t2_dynamic_pd = 67.18; t2_dynamic_ec = 24.36; t2_rate_nt = 72.79; t2_rate_pd = 96.33 }
  ; { t2_name = "129.compress"; t2_static_nt = 9.29; t2_static_pd = 82.51; t2_static_ec = 8.20; t2_dynamic_nt = 26.83; t2_dynamic_pd = 70.49; t2_dynamic_ec = 2.68; t2_rate_nt = 75.40; t2_rate_pd = 97.72 }
  ; { t2_name = "130.li"; t2_static_nt = 19.16; t2_static_pd = 29.79; t2_static_ec = 51.05; t2_dynamic_nt = 13.96; t2_dynamic_pd = 35.98; t2_dynamic_ec = 50.06; t2_rate_nt = 78.94; t2_rate_pd = 88.96 }
  ; { t2_name = "132.ijpeg"; t2_static_nt = 22.05; t2_static_pd = 28.88; t2_static_ec = 49.07; t2_dynamic_nt = 32.50; t2_dynamic_pd = 63.37; t2_dynamic_ec = 4.13; t2_rate_nt = 33.16; t2_rate_pd = 91.98 }
  ; { t2_name = "134.perl"; t2_static_nt = 21.50; t2_static_pd = 32.52; t2_static_ec = 45.98; t2_dynamic_nt = 21.81; t2_dynamic_pd = 46.15; t2_dynamic_ec = 32.04; t2_rate_nt = 73.24; t2_rate_pd = 97.54 }
  ; { t2_name = "147.vortex"; t2_static_nt = 16.21; t2_static_pd = 30.26; t2_static_ec = 53.53; t2_dynamic_nt = 26.91; t2_dynamic_pd = 24.45; t2_dynamic_ec = 48.64; t2_rate_nt = 85.03; t2_rate_pd = 93.54 } ]

type table3_row =
  { t3_name : string
  ; t3_speedup : float
  ; t3_static_pd : float
  ; t3_dynamic_pd : float
  ; t3_rate_nt : float
  ; t3_rate_pd : float }

let table3 : table3_row list =
  [ { t3_name = "008.espresso"; t3_speedup = 1.34; t3_static_pd = 53.24; t3_dynamic_pd = 90.22; t3_rate_nt = 49.20; t3_rate_pd = 82.06 }
  ; { t3_name = "022.li"; t3_speedup = 1.30; t3_static_pd = 31.12; t3_dynamic_pd = 39.19; t3_rate_nt = 16.37; t3_rate_pd = 95.66 }
  ; { t3_name = "023.eqntott"; t3_speedup = 1.44; t3_static_pd = 59.79; t3_dynamic_pd = 96.21; t3_rate_nt = 38.54; t3_rate_pd = 94.70 }
  ; { t3_name = "026.compress"; t3_speedup = 1.31; t3_static_pd = 85.77; t3_dynamic_pd = 83.12; t3_rate_nt = 41.43; t3_rate_pd = 95.08 }
  ; { t3_name = "072.sc"; t3_speedup = 1.43; t3_static_pd = 46.75; t3_dynamic_pd = 67.99; t3_rate_nt = 35.91; t3_rate_pd = 97.44 }
  ; { t3_name = "085.cc1"; t3_speedup = 1.27; t3_static_pd = 34.62; t3_dynamic_pd = 53.42; t3_rate_nt = 25.94; t3_rate_pd = 89.24 }
  ; { t3_name = "124.m88ksim"; t3_speedup = 1.47; t3_static_pd = 54.87; t3_dynamic_pd = 72.45; t3_rate_nt = 21.14; t3_rate_pd = 95.33 }
  ; { t3_name = "129.compress"; t3_speedup = 1.35; t3_static_pd = 83.06; t3_dynamic_pd = 74.74; t3_rate_nt = 27.89; t3_rate_pd = 97.86 }
  ; { t3_name = "130.li"; t3_speedup = 1.31; t3_static_pd = 31.15; t3_dynamic_pd = 38.95; t3_rate_nt = 23.05; t3_rate_pd = 89.87 }
  ; { t3_name = "132.ijpeg"; t3_speedup = 1.39; t3_static_pd = 31.80; t3_dynamic_pd = 64.52; t3_rate_nt = 29.18; t3_rate_pd = 91.72 }
  ; { t3_name = "134.perl"; t3_speedup = 1.46; t3_static_pd = 33.46; t3_dynamic_pd = 55.93; t3_rate_nt = 0.84; t3_rate_pd = 97.42 }
  ; { t3_name = "147.vortex"; t3_speedup = 1.52; t3_static_pd = 35.64; t3_dynamic_pd = 42.70; t3_rate_nt = 45.66; t3_rate_pd = 79.23 } ]

type table4_row =
  { t4_name : string
  ; t4_static_nt : float
  ; t4_static_pd : float
  ; t4_static_ec : float
  ; t4_dynamic_nt : float
  ; t4_dynamic_pd : float
  ; t4_dynamic_ec : float
  ; t4_rate_nt : float
  ; t4_rate_pd : float
  ; t4_speedup : float }

let table4 : table4_row list =
  [ { t4_name = "G.721 Decode"; t4_static_nt = 16.67; t4_static_pd = 36.90; t4_static_ec = 46.43; t4_dynamic_nt = 18.16; t4_dynamic_pd = 66.73; t4_dynamic_ec = 15.11; t4_rate_nt = 39.67; t4_rate_pd = 81.47; t4_speedup = 1.15 }
  ; { t4_name = "G.721 Encode"; t4_static_nt = 16.87; t4_static_pd = 37.35; t4_static_ec = 45.78; t4_dynamic_nt = 18.46; t4_dynamic_pd = 66.41; t4_dynamic_ec = 15.13; t4_rate_nt = 39.07; t4_rate_pd = 78.21; t4_speedup = 1.15 }
  ; { t4_name = "EPIC Decode"; t4_static_nt = 11.88; t4_static_pd = 62.62; t4_static_ec = 25.50; t4_dynamic_nt = 9.73; t4_dynamic_pd = 78.34; t4_dynamic_ec = 11.93; t4_rate_nt = 55.14; t4_rate_pd = 99.02; t4_speedup = 1.22 }
  ; { t4_name = "EPIC Encode"; t4_static_nt = 7.20; t4_static_pd = 40.06; t4_static_ec = 52.74; t4_dynamic_nt = 3.43; t4_dynamic_pd = 96.46; t4_dynamic_ec = 0.11; t4_rate_nt = 39.86; t4_rate_pd = 86.20; t4_speedup = 1.23 }
  ; { t4_name = "Ghostscript"; t4_static_nt = 11.41; t4_static_pd = 29.43; t4_static_ec = 59.16; t4_dynamic_nt = 17.79; t4_dynamic_pd = 48.06; t4_dynamic_ec = 34.15; t4_rate_nt = 52.34; t4_rate_pd = 84.18; t4_speedup = 1.11 }
  ; { t4_name = "GSM Decode"; t4_static_nt = 3.07; t4_static_pd = 35.58; t4_static_ec = 61.35; t4_dynamic_nt = 0.44; t4_dynamic_pd = 98.34; t4_dynamic_ec = 1.22; t4_rate_nt = 31.64; t4_rate_pd = 76.48; t4_speedup = 1.21 }
  ; { t4_name = "GSM Encode"; t4_static_nt = 4.19; t4_static_pd = 34.16; t4_static_ec = 61.65; t4_dynamic_nt = 1.05; t4_dynamic_pd = 96.55; t4_dynamic_ec = 2.40; t4_rate_nt = 38.20; t4_rate_pd = 94.04; t4_speedup = 1.25 }
  ; { t4_name = "MPEG Decode"; t4_static_nt = 8.21; t4_static_pd = 73.31; t4_static_ec = 18.48; t4_dynamic_nt = 3.48; t4_dynamic_pd = 94.48; t4_dynamic_ec = 2.04; t4_rate_nt = 27.19; t4_rate_pd = 73.31; t4_speedup = 1.19 }
  ; { t4_name = "PGP Decode"; t4_static_nt = 9.95; t4_static_pd = 69.94; t4_static_ec = 20.11; t4_dynamic_nt = 0.29; t4_dynamic_pd = 98.91; t4_dynamic_ec = 0.80; t4_rate_nt = 29.73; t4_rate_pd = 98.58; t4_speedup = 1.27 }
  ; { t4_name = "PGP Encode"; t4_static_nt = 9.95; t4_static_pd = 69.94; t4_static_ec = 20.11; t4_dynamic_nt = 6.73; t4_dynamic_pd = 77.28; t4_dynamic_ec = 15.99; t4_rate_nt = 26.56; t4_rate_pd = 71.08; t4_speedup = 1.15 }
  ; { t4_name = "RASTA"; t4_static_nt = 19.30; t4_static_pd = 44.38; t4_static_ec = 36.32; t4_dynamic_nt = 12.39; t4_dynamic_pd = 82.89; t4_dynamic_ec = 4.72; t4_rate_nt = 36.69; t4_rate_pd = 91.32; t4_speedup = 1.21 }
  ; { t4_name = "ADPCM Decode"; t4_static_nt = 21.43; t4_static_pd = 50.00; t4_static_ec = 28.57; t4_dynamic_nt = 39.99; t4_dynamic_pd = 59.93; t4_dynamic_ec = 0.08; t4_rate_nt = 16.21; t4_rate_pd = 81.03; t4_speedup = 1.16 }
  ; { t4_name = "ADPCM Encode"; t4_static_nt = 28.57; t4_static_pd = 42.86; t4_static_ec = 28.57; t4_dynamic_nt = 33.33; t4_dynamic_pd = 66.60; t4_dynamic_ec = 0.07; t4_rate_nt = 16.21; t4_rate_pd = 86.59; t4_speedup = 1.14 }
  ]

(* Figure 5c average speedups from the Section 5.2 text. *)
let fig5c_avg_dual_hw = 1.26
let fig5c_avg_dual_cc = 1.34
let fig5c_avg_dual_cc_profiled = 1.38

let find_table2 name = List.find_opt (fun r -> r.t2_name = name) table2
let find_table3 name = List.find_opt (fun r -> r.t3_name = name) table3
let find_table4 name = List.find_opt (fun r -> r.t4_name = name) table4
