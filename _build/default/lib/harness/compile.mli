(** End-to-end compilation driver: MiniC source to an assembled EPA-32
    program, with selectable optimization level and load-classification
    mode. *)

type classification =
  | No_classification  (** all loads ld_n: hardware-only configurations *)
  | Heuristics         (** the paper's Section 4 compiler heuristics *)

type options =
  { opt_level : Elag_opt.Driver.level
  ; classification : classification
  ; inline_threshold : int }

val default_options : options
(** O2, heuristics, default inline threshold. *)

exception Error of string
(** Parse or type errors, with position formatted into the message. *)

val to_ir : ?options:options -> string -> Elag_ir.Ir.program
(** Front end + optimizer + classifier, stopping at the IR. *)

val compile : ?options:options -> string -> Elag_isa.Program.t
