(* Address profiling (paper §4.3).

   An emulation pass drives the unbounded per-PC stride predictor over
   every dynamic load, yielding per-load prediction rates and execution
   counts.  Reclassification then upgrades [ld_n] loads whose rate
   exceeds the threshold (60% in the paper) to [ld_p] — and changes
   nothing else, exactly as the paper prescribes. *)

module Insn = Elag_isa.Insn
module Program = Elag_isa.Program
module Ideal = Elag_predict.Ideal
module Emulator = Elag_sim.Emulator

type t =
  { rates : Ideal.t
  ; exec_counts : (int, int) Hashtbl.t  (* per-pc dynamic execution counts *)
  ; mutable total_loads : int
  ; mutable total_instructions : int }

let collect ?max_insns program =
  let t =
    { rates = Ideal.create ()
    ; exec_counts = Hashtbl.create 256
    ; total_loads = 0
    ; total_instructions = 0 }
  in
  let observer pc insn eff _taken _next =
    t.total_instructions <- t.total_instructions + 1;
    if Insn.is_load insn then begin
      t.total_loads <- t.total_loads + 1;
      Ideal.observe t.rates ~pc ~ca:eff;
      Hashtbl.replace t.exec_counts pc
        (1 + Option.value (Hashtbl.find_opt t.exec_counts pc) ~default:0)
    end
  in
  ignore (Emulator.run_program ~observer ?max_insns program);
  t

let rate t pc = Ideal.rate t.rates pc

let executions t pc = Option.value (Hashtbl.find_opt t.exec_counts pc) ~default:0

let default_threshold = 0.60

(* Profile-guided reclassification: ld_n loads with a prediction rate
   above [threshold] become ld_p.  Nothing else is overruled. *)
let reclassify ?(threshold = default_threshold) t program =
  Program.map_insns
    (fun pc insn ->
      match insn with
      | Insn.Load ({ spec = Insn.Ld_n; _ } as l) -> begin
        match rate t pc with
        | Some r when r > threshold -> Insn.Load { l with spec = Insn.Ld_p }
        | _ -> insn
      end
      | _ -> insn)
    program
