(** Address profiling (paper §4.3).

    An emulation pass drives the unbounded per-PC stride predictor over
    every dynamic load, yielding per-load prediction rates and
    execution counts.  Reclassification upgrades [ld_n] loads whose
    rate exceeds the threshold (60% in the paper) to [ld_p] — and
    changes nothing else. *)

type t =
  { rates : Elag_predict.Ideal.t
  ; exec_counts : (int, int) Hashtbl.t
  ; mutable total_loads : int
  ; mutable total_instructions : int }

val collect : ?max_insns:int -> Elag_isa.Program.t -> t

val rate : t -> int -> float option
(** Stride-prediction rate of the load at this pc. *)

val executions : t -> int -> int

val default_threshold : float
(** 0.60, the paper's value. *)

val reclassify : ?threshold:float -> t -> Elag_isa.Program.t -> Elag_isa.Program.t
(** Returns a fresh program with qualifying [ld_n] loads turned into
    [ld_p]; the input program is unchanged. *)
