lib/harness/context.ml: Compile Elag_isa Elag_predict Elag_sim Elag_workloads Hashtbl List Option Printf Profile String
