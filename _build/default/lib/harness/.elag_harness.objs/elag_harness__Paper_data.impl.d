lib/harness/paper_data.ml: List
