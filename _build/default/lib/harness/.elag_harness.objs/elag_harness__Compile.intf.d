lib/harness/compile.mli: Elag_ir Elag_isa Elag_opt
