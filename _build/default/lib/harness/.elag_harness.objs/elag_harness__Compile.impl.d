lib/harness/compile.ml: Elag_codegen Elag_core Elag_ir Elag_isa Elag_minic Elag_opt Printf
