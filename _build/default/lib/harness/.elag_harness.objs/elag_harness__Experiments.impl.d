lib/harness/experiments.ml: Context Elag_sim Elag_workloads List Paper_data Printf Profile String
