lib/harness/profile.mli: Elag_isa Elag_predict Hashtbl
