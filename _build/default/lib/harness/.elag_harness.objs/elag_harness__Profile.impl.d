lib/harness/profile.ml: Elag_isa Elag_predict Elag_sim Hashtbl Option
