(* Memoized per-workload artifacts shared by all experiments: the
   compiled (heuristics-classified) program, the address profile, the
   profile-reclassified program, and timing-simulation results per
   mechanism. *)

module Program = Elag_isa.Program
module Insn = Elag_isa.Insn
module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Workload = Elag_workloads.Workload

type entry =
  { workload : Workload.t
  ; program : Program.t  (* compiled with the Section 4 heuristics *)
  ; mutable profile : Profile.t option
  ; mutable reclassified : Program.t option
  ; sims : (string, Pipeline.stats) Hashtbl.t }

let entries : (string, entry) Hashtbl.t = Hashtbl.create 32

let get (w : Workload.t) =
  match Hashtbl.find_opt entries w.Workload.name with
  | Some e -> e
  | None ->
    let program = Compile.compile w.Workload.source in
    let e = { workload = w; program; profile = None; reclassified = None
            ; sims = Hashtbl.create 8 } in
    Hashtbl.replace entries w.Workload.name e;
    e

let profile e =
  match e.profile with
  | Some p -> p
  | None ->
    let p = Profile.collect e.program in
    e.profile <- Some p;
    p

let reclassified e =
  match e.reclassified with
  | Some p -> p
  | None ->
    let p = Profile.reclassify (profile e) e.program in
    e.reclassified <- Some p;
    p

type variant = Classified | Reclassified

let program_of e = function
  | Classified -> e.program
  | Reclassified -> reclassified e

let simulate ?(variant = Classified) e mechanism =
  let key =
    Config.mechanism_name mechanism
    ^ (match variant with Classified -> "" | Reclassified -> "+prof")
  in
  match Hashtbl.find_opt e.sims key with
  | Some stats -> stats
  | None ->
    let cfg = Config.with_mechanism mechanism Config.default in
    let stats, output = Pipeline.simulate cfg (program_of e variant) in
    (match e.workload.Workload.expected_output with
    | Some expected when String.trim output <> String.trim expected ->
      failwith
        (Printf.sprintf "%s: output mismatch under %s" e.workload.Workload.name key)
    | _ -> ());
    Hashtbl.replace e.sims key stats;
    stats

let base_cycles e = (simulate e Config.No_early).Pipeline.cycles

let speedup e ?variant mechanism =
  let s = simulate ?variant e mechanism in
  float_of_int (base_cycles e) /. float_of_int s.Pipeline.cycles

(* Static and dynamic load-class distribution of a program variant,
   using the profile's per-pc execution counts. *)
type distribution =
  { static_nt : float; static_pd : float; static_ec : float
  ; dynamic_nt : float; dynamic_pd : float; dynamic_ec : float
  ; rate_nt : float option  (* ideal-predictor rate over NT loads *)
  ; rate_pd : float option
  ; total_dynamic_loads : int }

let spec_of_insn = function
  | Insn.Load { spec; _ } -> Some spec
  | _ -> None

let distribution ?(variant = Classified) e =
  let prof = profile e in
  let program = program_of e variant in
  let loads = Program.static_loads program in
  let pcs_of spec =
    List.filter_map
      (fun (pc, insn) -> if spec_of_insn insn = Some spec then Some pc else None)
      loads
  in
  let nt = pcs_of Insn.Ld_n and pd = pcs_of Insn.Ld_p and ec = pcs_of Insn.Ld_e in
  let st_total = List.length loads in
  let dyn count_pcs =
    List.fold_left (fun acc pc -> acc + Profile.executions prof pc) 0 count_pcs
  in
  let dyn_nt = dyn nt and dyn_pd = dyn pd and dyn_ec = dyn ec in
  let dyn_total = max 1 (dyn_nt + dyn_pd + dyn_ec) in
  let pct a b = 100. *. float_of_int a /. float_of_int (max 1 b) in
  let rate pcs = Elag_predict.Ideal.aggregate_rate prof.Profile.rates pcs in
  { static_nt = pct (List.length nt) st_total
  ; static_pd = pct (List.length pd) st_total
  ; static_ec = pct (List.length ec) st_total
  ; dynamic_nt = pct dyn_nt dyn_total
  ; dynamic_pd = pct dyn_pd dyn_total
  ; dynamic_ec = pct dyn_ec dyn_total
  ; rate_nt = Option.map (fun r -> 100. *. r) (rate nt)
  ; rate_pd = Option.map (fun r -> 100. *. r) (rate pd)
  ; total_dynamic_loads = dyn_total }
