(* Generators for every table and figure in the paper's evaluation
   section, each printing measured values side by side with the
   paper's. *)

module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Workload = Elag_workloads.Workload
module Suite = Elag_workloads.Suite

let pf = Printf.printf

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (max 1 (List.length xs))

let opt_f = function Some v -> Printf.sprintf "%6.2f" v | None -> "     -"

(* --- Table 2 ---------------------------------------------------------- *)

type table2_row =
  { name : string
  ; loads_m : float
  ; dist : Context.distribution }

let table2_rows () =
  List.map
    (fun w ->
      let e = Context.get w in
      let prof = Context.profile e in
      { name = w.Workload.name
      ; loads_m = float_of_int prof.Profile.total_loads /. 1_000_000.
      ; dist = Context.distribution e })
    Suite.spec

let print_table2 () =
  pf "Table 2: load characteristics and prediction rates (measured | paper)\n";
  pf "%-14s %6s | %-23s | %-23s | %-15s | %-15s\n" "benchmark" "loadsM"
    "static %  NT/PD/EC" "dynamic %  NT/PD/EC" "NT rate" "PD rate";
  let rows = table2_rows () in
  List.iter
    (fun r ->
      let d = r.dist in
      let p = Paper_data.find_table2 r.name in
      let paper3 f1 f2 f3 =
        match p with
        | Some p -> Printf.sprintf "%4.0f/%4.0f/%4.0f" (f1 p) (f2 p) (f3 p)
        | None -> "      -"
      in
      let paper1 f = match p with Some p -> Printf.sprintf "%5.1f" (f p) | None -> "  -" in
      pf "%-14s %6.1f | %4.0f/%4.0f/%4.0f %s | %4.0f/%4.0f/%4.0f %s | %s %s | %s %s\n"
        r.name r.loads_m d.Context.static_nt d.Context.static_pd d.Context.static_ec
        (paper3 (fun p -> p.Paper_data.t2_static_nt) (fun p -> p.Paper_data.t2_static_pd)
           (fun p -> p.Paper_data.t2_static_ec))
        d.Context.dynamic_nt d.Context.dynamic_pd d.Context.dynamic_ec
        (paper3 (fun p -> p.Paper_data.t2_dynamic_nt) (fun p -> p.Paper_data.t2_dynamic_pd)
           (fun p -> p.Paper_data.t2_dynamic_ec))
        (opt_f d.Context.rate_nt) (paper1 (fun p -> p.Paper_data.t2_rate_nt))
        (opt_f d.Context.rate_pd) (paper1 (fun p -> p.Paper_data.t2_rate_pd)))
    rows;
  let avg f = mean (List.map f rows) in
  pf "%-14s %6.1f | %4.0f/%4.0f/%4.0f                | %4.0f/%4.0f/%4.0f\n" "average"
    (avg (fun r -> r.loads_m))
    (avg (fun r -> r.dist.Context.static_nt))
    (avg (fun r -> r.dist.Context.static_pd))
    (avg (fun r -> r.dist.Context.static_ec))
    (avg (fun r -> r.dist.Context.dynamic_nt))
    (avg (fun r -> r.dist.Context.dynamic_pd))
    (avg (fun r -> r.dist.Context.dynamic_ec))

(* --- Figure 5a: table-only speedups ----------------------------------- *)

let fig5a_sizes = [ 64; 128; 256 ]

let fig5a_speedups () =
  List.map
    (fun w ->
      let e = Context.get w in
      let per_size filtered =
        List.map
          (fun entries ->
            Context.speedup e (Config.Table_only { entries; compiler_filtered = filtered }))
          fig5a_sizes
      in
      (w.Workload.name, per_size false, per_size true))
    Suite.spec

let print_fig5a () =
  pf "Figure 5a: speedup, table-based prediction only\n";
  pf "%-14s | %-26s | %-26s\n" "benchmark" "hardware-only 64/128/256"
    "compiler-directed 64/128/256";
  let rows = fig5a_speedups () in
  List.iter
    (fun (name, hw, cc) ->
      let s l = String.concat "/" (List.map (Printf.sprintf "%.2f") l) in
      pf "%-14s | %-26s | %-26s\n" name (s hw) (s cc))
    rows;
  let avg sel i = mean (List.map (fun (_, hw, cc) -> List.nth (sel (hw, cc)) i) rows) in
  pf "%-14s | %.2f/%.2f/%.2f             | %.2f/%.2f/%.2f\n" "average"
    (avg fst 0) (avg fst 1) (avg fst 2) (avg snd 0) (avg snd 1) (avg snd 2)

(* --- Figure 5b: calc-only speedups ------------------------------------ *)

let fig5b_sizes = [ 4; 8; 16 ]

let fig5b_speedups () =
  List.map
    (fun w ->
      let e = Context.get w in
      ( w.Workload.name
      , List.map
          (fun n -> Context.speedup e (Config.Calc_only { bric_entries = n }))
          fig5b_sizes ))
    Suite.spec

let print_fig5b () =
  pf "Figure 5b: speedup, early address calculation only (BRIC 4/8/16)\n";
  let rows = fig5b_speedups () in
  List.iter
    (fun (name, l) ->
      pf "%-14s | %s\n" name
        (String.concat "/" (List.map (Printf.sprintf "%.2f") l)))
    rows;
  let avg i = mean (List.map (fun (_, l) -> List.nth l i) rows) in
  pf "%-14s | %.2f/%.2f/%.2f\n" "average" (avg 0) (avg 1) (avg 2)

(* --- Figure 5c: best hardware-only vs dual-path ------------------------ *)

type fig5c_row =
  { f5c_name : string
  ; table256 : float
  ; calc16 : float
  ; dual_hw : float
  ; dual_cc : float
  ; dual_cc_prof : float }

let fig5c_rows () =
  List.map
    (fun w ->
      let e = Context.get w in
      { f5c_name = w.Workload.name
      ; table256 = Context.speedup e (Config.Table_only { entries = 256; compiler_filtered = false })
      ; calc16 = Context.speedup e (Config.Calc_only { bric_entries = 16 })
      ; dual_hw = Context.speedup e (Config.Dual { table_entries = 256; selection = Config.Hardware_selected })
      ; dual_cc = Context.speedup e (Config.Dual { table_entries = 256; selection = Config.Compiler_directed })
      ; dual_cc_prof =
          Context.speedup e ~variant:Context.Reclassified
            (Config.Dual { table_entries = 256; selection = Config.Compiler_directed }) })
    Suite.spec

let print_fig5c () =
  pf "Figure 5c: speedup, hardware-only vs dual-path early address generation\n";
  pf "%-14s | %-9s %-8s %-8s %-8s %-9s\n" "benchmark" "table-256" "calc-16"
    "dual-hw" "dual-cc" "dual-cc+p";
  let rows = fig5c_rows () in
  List.iter
    (fun r ->
      pf "%-14s | %-9.2f %-8.2f %-8.2f %-8.2f %-9.2f\n" r.f5c_name r.table256
        r.calc16 r.dual_hw r.dual_cc r.dual_cc_prof)
    rows;
  pf "%-14s | %-9.2f %-8.2f %-8.2f %-8.2f %-9.2f\n" "average"
    (mean (List.map (fun r -> r.table256) rows))
    (mean (List.map (fun r -> r.calc16) rows))
    (mean (List.map (fun r -> r.dual_hw) rows))
    (mean (List.map (fun r -> r.dual_cc) rows))
    (mean (List.map (fun r -> r.dual_cc_prof) rows));
  pf "paper averages: dual-hw %.2f, dual-cc %.2f, dual-cc+profile %.2f\n"
    Paper_data.fig5c_avg_dual_hw Paper_data.fig5c_avg_dual_cc
    Paper_data.fig5c_avg_dual_cc_profiled

(* --- Table 3: profile-guided classification ---------------------------- *)

type table3_row =
  { t3_name : string
  ; t3_speedup : float
  ; t3_dist : Context.distribution }

let table3_rows () =
  List.map
    (fun w ->
      let e = Context.get w in
      { t3_name = w.Workload.name
      ; t3_speedup =
          Context.speedup e ~variant:Context.Reclassified
            (Config.Dual { table_entries = 256; selection = Config.Compiler_directed })
      ; t3_dist = Context.distribution ~variant:Context.Reclassified e })
    Suite.spec

let print_table3 () =
  pf "Table 3: profile-guided classification (threshold 60%%) (measured | paper)\n";
  pf "%-14s | %-15s | %-15s | %-15s | %-15s | %-15s\n" "benchmark" "speedup"
    "static PD %" "dynamic PD %" "NT rate" "PD rate";
  let rows = table3_rows () in
  List.iter
    (fun r ->
      let p = Paper_data.find_table3 r.t3_name in
      let pp1 f = match p with Some p -> Printf.sprintf "%5.2f" (f p) | None -> "    -" in
      let d = r.t3_dist in
      pf "%-14s | %5.2f %s | %6.2f %s | %6.2f %s | %s %s | %s %s\n" r.t3_name
        r.t3_speedup (pp1 (fun p -> p.Paper_data.t3_speedup))
        d.Context.static_pd (pp1 (fun p -> p.Paper_data.t3_static_pd))
        d.Context.dynamic_pd (pp1 (fun p -> p.Paper_data.t3_dynamic_pd))
        (opt_f d.Context.rate_nt) (pp1 (fun p -> p.Paper_data.t3_rate_nt))
        (opt_f d.Context.rate_pd) (pp1 (fun p -> p.Paper_data.t3_rate_pd)))
    rows;
  pf "%-14s | %5.2f (paper 1.38)\n" "average"
    (mean (List.map (fun r -> r.t3_speedup) rows))

(* --- Table 4: MediaBench ------------------------------------------------ *)

type table4_row =
  { t4_name : string
  ; t4_loads_m : float
  ; t4_dist : Context.distribution
  ; t4_speedup : float }

let table4_rows () =
  List.map
    (fun w ->
      let e = Context.get w in
      let prof = Context.profile e in
      { t4_name = w.Workload.name
      ; t4_loads_m = float_of_int prof.Profile.total_loads /. 1_000_000.
      ; t4_dist = Context.distribution e
      ; t4_speedup =
          Context.speedup e
            (Config.Dual { table_entries = 256; selection = Config.Compiler_directed }) })
    Suite.media

let print_table4 () =
  pf "Table 4: MediaBench characteristics and speedup (measured | paper)\n";
  pf "%-14s %6s | %-20s | %-20s | %-13s | %-13s | %-13s\n" "benchmark" "loadsM"
    "static % NT/PD/EC" "dynamic % NT/PD/EC" "NT rate" "PD rate" "speedup";
  let rows = table4_rows () in
  List.iter
    (fun r ->
      let d = r.t4_dist in
      let p = Paper_data.find_table4 r.t4_name in
      let pp1 f = match p with Some p -> Printf.sprintf "%5.2f" (f p) | None -> "    -" in
      pf "%-14s %6.1f | %4.0f/%4.0f/%4.0f | %4.0f/%4.0f/%4.0f | %s %s | %s %s | %5.2f %s\n"
        r.t4_name r.t4_loads_m d.Context.static_nt d.Context.static_pd
        d.Context.static_ec d.Context.dynamic_nt d.Context.dynamic_pd
        d.Context.dynamic_ec (opt_f d.Context.rate_nt)
        (pp1 (fun p -> p.Paper_data.t4_rate_nt)) (opt_f d.Context.rate_pd)
        (pp1 (fun p -> p.Paper_data.t4_rate_pd)) r.t4_speedup
        (pp1 (fun p -> p.Paper_data.t4_speedup)))
    rows;
  pf "%-14s        |                      |                      |        |        | %5.2f (paper 1.19)\n"
    "average"
    (mean (List.map (fun r -> r.t4_speedup) rows))

let run_all () =
  print_table2 ();
  pf "\n";
  print_fig5a ();
  pf "\n";
  print_fig5b ();
  pf "\n";
  print_fig5c ();
  pf "\n";
  print_table3 ();
  pf "\n";
  print_table4 ()
