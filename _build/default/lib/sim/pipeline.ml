(* Cycle-based timing model of the six-stage in-order superscalar
   pipeline (IF ID1 ID2 EXE MEM WB) with dual early-address-generation
   support.

   The model is emulation-driven: it consumes the retirement stream
   from {!Emulator} in program order and computes the issue cycle of
   every instruction subject to issue width, functional-unit limits,
   operand readiness (full bypass), data-cache ports, branch
   prediction, and cache misses.

   Timing conventions — an instruction issued at cycle [c] occupies
   ID1 at [c-2], ID2 at [c-1], EXE at [c], MEM at [c+1]:
   - ALU results feed dependents issued at [c+1];
   - a normal load's value feeds dependents at [c+2] (the one-cycle
     load-use stall of Figure 1a), plus 12 cycles on a D-cache miss;
   - an [ld_p] speculative access probes the table in ID1 and accesses
     the cache in ID2 ([c-1]); verified against the computed address at
     the end of EXE, a correct prediction feeds dependents at [c+1]
     (latency 1);
   - an [ld_e] access computes R_addr+offset in ID1 and accesses the
     cache in ID2; since no late verification is needed, a successful
     access feeds dependents at [c] (latency 0);
   - speculative accesses consume a data-cache port at [c-1]; wrong
     speculation wastes only that bandwidth (the paper's "extra load"). *)

module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Addr_table = Elag_predict.Addr_table
module Bric = Elag_predict.Bric
module Raddr = Elag_predict.Raddr
module Btb = Elag_predict.Btb

type stats =
  { mutable cycles : int
  ; mutable instructions : int
  ; mutable loads : int
  ; mutable stores : int
  ; mutable loads_n : int
  ; mutable loads_p : int
  ; mutable loads_e : int
  ; mutable table_attempts : int  (* speculative accesses via the table *)
  ; mutable table_successes : int
  ; mutable calc_attempts : int   (* speculative accesses via early calc *)
  ; mutable calc_successes : int
  ; mutable wasted_spec : int     (* dispatched but not forwarded *)
  ; mutable load_latency_sum : int
  ; mutable icache_misses : int
  ; mutable dcache_accesses : int
  ; mutable dcache_misses : int
  ; mutable btb_mispredicts : int }

let fresh_stats () =
  { cycles = 0; instructions = 0; loads = 0; stores = 0
  ; loads_n = 0; loads_p = 0; loads_e = 0
  ; table_attempts = 0; table_successes = 0
  ; calc_attempts = 0; calc_successes = 0
  ; wasted_spec = 0; load_latency_sum = 0
  ; icache_misses = 0; dcache_accesses = 0; dcache_misses = 0
  ; btb_mispredicts = 0 }

let ring_size = 1024
let ring_mask = ring_size - 1

type t =
  { cfg : Config.t
  ; icache : Cache.t
  ; dcache : Cache.t
  ; btb : Btb.t
  ; table : Addr_table.t option
  ; bric : Bric.t option
  ; raddr : Raddr.t option
  ; reg_ready : int array
  ; port_cycle : int array  (* ring: which cycle this slot describes *)
  ; port_count : int array
  ; mutable cur_cycle : int
  ; mutable slots_used : int
  ; mutable alus_used : int
  ; mutable branches_used : int
  ; mutable fetch_ready : int
  ; mutable stores_in_flight : (int * int * int) list  (* issue cycle, addr, bytes *)
  ; mutable tracer : (int -> Insn.t -> int -> int -> unit) option
    (* pc, insn, issue cycle, result latency — for visualization *)
  ; stats : stats }

let create (cfg : Config.t) =
  let table =
    match cfg.mechanism with
    | Config.Table_only { entries; _ } -> Some (Addr_table.create entries)
    | Config.Dual { table_entries; _ } -> Some (Addr_table.create table_entries)
    | _ -> None
  in
  let bric =
    match cfg.mechanism with
    | Config.Calc_only { bric_entries } -> Some (Bric.create bric_entries)
    | _ -> None
  in
  let raddr =
    match cfg.mechanism with Config.Dual _ -> Some (Raddr.create ()) | _ -> None
  in
  { cfg
  ; icache =
      Cache.create ~ways:cfg.cache_ways ~size_bytes:cfg.icache_bytes
        ~line_bytes:cfg.line_bytes ()
  ; dcache =
      Cache.create ~ways:cfg.cache_ways ~size_bytes:cfg.dcache_bytes
        ~line_bytes:cfg.line_bytes ()
  ; btb = Btb.create cfg.btb_entries
  ; table
  ; bric
  ; raddr
  ; reg_ready = Array.make Reg.count 0
  ; port_cycle = Array.make ring_size (-1)
  ; port_count = Array.make ring_size 0
  ; cur_cycle = 4  (* leave room for stage offsets at startup *)
  ; slots_used = 0
  ; alus_used = 0
  ; branches_used = 0
  ; fetch_ready = 4
  ; stores_in_flight = []
  ; tracer = None
  ; stats = fresh_stats () }

(* --- data-cache port ring ------------------------------------------- *)

let ports_used t cycle =
  let i = cycle land ring_mask in
  if t.port_cycle.(i) = cycle then t.port_count.(i) else 0

let port_free t cycle = ports_used t cycle < t.cfg.mem_ports

let book_port t cycle =
  let i = cycle land ring_mask in
  if t.port_cycle.(i) <> cycle then begin
    t.port_cycle.(i) <- cycle;
    t.port_count.(i) <- 0
  end;
  t.port_count.(i) <- t.port_count.(i) + 1

(* --- store interlocks ------------------------------------------------ *)

let overlap a1 n1 a2 n2 = not (a1 + n1 <= a2 || a2 + n2 <= a1)

(* Conservative memory interlock for a speculative access reading the
   cache during cycle [read_cycle]: a store issued at [read_cycle] or
   later has an unresolved address (interlock); one issued the cycle
   before races with the read and interlocks when the ranges overlap;
   older stores have completed their write-through. *)
let mem_interlock t ~read_cycle spec_addr spec_bytes =
  t.stores_in_flight <-
    List.filter (fun (cs, _, _) -> cs >= read_cycle - 1) t.stores_in_flight;
  List.exists
    (fun (cs, addr, bytes) ->
      cs >= read_cycle || overlap addr bytes spec_addr spec_bytes)
    t.stores_in_flight

(* --- issue-cycle bookkeeping ----------------------------------------- *)

let advance_to t c =
  if c > t.cur_cycle then begin
    t.cur_cycle <- c;
    t.slots_used <- 0;
    t.alus_used <- 0;
    t.branches_used <- 0
  end

let structural_ok t c ~alu ~branch =
  if c > t.cur_cycle then true
  else
    t.slots_used < t.cfg.issue_width
    && ((not alu) || t.alus_used < t.cfg.int_alus)
    && ((not branch) || t.branches_used < t.cfg.branch_units)

(* --- speculation evaluation ------------------------------------------ *)

type spec_eval =
  { dispatched : bool
  ; access_cycle : int  (* cycle the speculative cache access occupies *)
  ; success : bool
  ; success_latency : int
  ; path : [ `Table | `Calc | `None ] }

let no_spec =
  { dispatched = false; access_cycle = 0; success = false; success_latency = 0
  ; path = `None }

let base_register = function
  | Insn.Base_offset (b, _) -> Some b
  | Insn.Base_index _ | Insn.Absolute _ -> None

(* Early-calculation timing is elastic in an in-order pipeline: the
   dedicated adder computes base+offset during the first cycle the base
   value is visible to R_addr/BRIC (never earlier than the load's ID1),
   and the speculative access goes out the following cycle.  The early
   path is profitable only when that access completes no later than the
   EXE stage of the load itself; a base register that becomes ready
   exactly at EXE (the paper's Figure 1c worst case) gains nothing and
   is suppressed as an R_addr interlock. *)
let calc_access_cycle t c base = 1 + max (c - 2) t.reg_ready.(base)

(* Pure evaluation of the speculative path at candidate issue cycle
   [c].  [prediction] is the table's predicted address (peeked once per
   load, before the search). *)
let eval_spec t c ~path ~prediction ~eff ~bytes ~addr_mode =
  match path with
  | `None -> no_spec
  | `Table -> begin
    match prediction with
    | None -> no_spec
    | Some pa ->
      (* PC-indexed prediction is available at ID1; the speculative
         access occupies the cache during ID2 and is verified against
         the computed address at the end of EXE: latency 1. *)
      let access_cycle = c - 1 in
      if not (port_free t access_cycle) then no_spec
      else
        let success =
          pa = eff
          && Cache.probe t.dcache pa
          && not (mem_interlock t ~read_cycle:access_cycle pa bytes)
        in
        { dispatched = true; access_cycle; success; success_latency = 1
        ; path = `Table }
  end
  | `Calc -> begin
    match base_register addr_mode with
    | None -> no_spec
    | Some base ->
      let structure_hit =
        match (t.raddr, t.bric) with
        | Some r, _ -> Raddr.peek r ~cycle:(c - 2) base
        | None, Some b -> Bric.peek b ~cycle:(c - 2) base
        | None, None -> false
      in
      let access_cycle = calc_access_cycle t c base in
      if not (structure_hit && access_cycle <= c && port_free t access_cycle)
      then no_spec
      else
        let success =
          Cache.probe t.dcache eff
          && not (mem_interlock t ~read_cycle:access_cycle eff bytes)
        in
        { dispatched = true; access_cycle; success
        ; success_latency = max 0 (access_cycle + 1 - c); path = `Calc }
  end

(* Which early path does this load take under the configured
   mechanism? *)
let select_path t c insn_spec addr_mode =
  match t.cfg.mechanism with
  | Config.No_early -> (`None, false)
  | Config.Table_only { compiler_filtered; _ } ->
    if (not compiler_filtered) || insn_spec = Insn.Ld_p then (`Table, true)
    else (`None, false)
  | Config.Calc_only _ -> (`Calc, false)
  | Config.Dual { selection = Config.Compiler_directed; _ } -> begin
    match insn_spec with
    | Insn.Ld_p -> (`Table, true)
    | Insn.Ld_e -> (`Calc, false)
    | Insn.Ld_n -> (`None, false)
  end
  | Config.Dual { selection = Config.Hardware_selected; _ } -> begin
    (* Run-time selection over the same hardware (Eickemeyer–
       Vassiliadis rule): a base register interlocked at decode sends
       the load to the prediction table (allocating an entry);
       otherwise it takes the early-calculation path through R_addr,
       rebinding it.  With no compiler guidance, every calc-path load
       competes for the single R_addr binding. *)
    match base_register addr_mode with
    | None -> (`Table, true)
    | Some base ->
      if t.reg_ready.(base) <= c - 2 then (`Calc, false) else (`Table, true)
  end

(* --- per-instruction processing --------------------------------------- *)

let count_load_spec stats = function
  | Insn.Ld_n -> stats.loads_n <- stats.loads_n + 1
  | Insn.Ld_p -> stats.loads_p <- stats.loads_p + 1
  | Insn.Ld_e -> stats.loads_e <- stats.loads_e + 1

let process t pc insn eff taken next_pc =
  let s = t.stats in
  s.instructions <- s.instructions + 1;
  (* instruction fetch *)
  if not (Cache.access t.icache (pc lsl 2)) then begin
    s.icache_misses <- s.icache_misses + 1;
    t.fetch_ready <- max t.fetch_ready t.cur_cycle + t.cfg.miss_penalty
  end;
  let alu =
    match insn with
    | Insn.Alu _ | Insn.Li _ | Insn.Syscall _ | Insn.Nop | Insn.Halt -> true
    | _ -> false
  in
  let branch = Insn.is_branch insn in
  let is_load = Insn.is_load insn in
  let is_store = Insn.is_store insn in
  let sources_ready =
    List.fold_left (fun acc r -> max acc t.reg_ready.(r)) 0 (Insn.uses insn)
  in
  let c0 = max (max t.fetch_ready sources_ready) t.cur_cycle in
  (* table probe happens once per load (counts in table stats) *)
  let load_info =
    if is_load then
      match insn with
      | Insn.Load { spec; size; addr; _ } -> Some (spec, Insn.size_bytes size, addr)
      | _ -> None
    else None
  in
  (* search for the issue cycle *)
  let rec find c =
    if not (structural_ok t c ~alu ~branch) then find (c + 1)
    else if is_store then
      if port_free t (c + 1) then (c, no_spec) else find (c + 1)
    else if is_load then begin
      match load_info with
      | None -> (c, no_spec)
      | Some (spec, bytes, addr_mode) ->
        let path, _ = select_path t c spec addr_mode in
        let prediction =
          match (path, t.table) with
          | `Table, Some table -> begin
            (* pure peek at the table entry: direct-mapped tag match *)
            match Addr_table.peek table pc with
            | Some pa -> Some pa
            | None -> None
          end
          | _ -> None
        in
        let ev = eval_spec t c ~path ~prediction ~eff ~bytes ~addr_mode in
        if ev.success then (c, ev)
        else if port_free t (c + 1) then (c, ev)
        else find (c + 1)
    end
    else (c, no_spec)
  in
  let c, ev = find c0 in
  advance_to t c;
  t.slots_used <- t.slots_used + 1;
  if alu then t.alus_used <- t.alus_used + 1;
  if branch then t.branches_used <- t.branches_used + 1;
  (* defaults *)
  let latency = ref 1 in
  (match insn with
  | Insn.Alu { op = Insn.Mul; _ } -> latency := t.cfg.mul_latency
  | Insn.Alu { op = Insn.Div | Insn.Rem; _ } -> latency := t.cfg.div_latency
  | _ -> ());
  (* loads *)
  (match load_info with
  | Some (spec, _bytes, addr_mode) ->
    s.loads <- s.loads + 1;
    count_load_spec s spec;
    let path, updates_table = select_path t c spec addr_mode in
    (* commit structure probes/bindings *)
    (match (path, base_register addr_mode) with
    | `Calc, Some base -> begin
      match (t.raddr, t.bric) with
      | Some r, _ ->
        ignore (Raddr.probe r ~cycle:(c - 2) base);
        Raddr.bind r ~cycle:(c - 2) base
      | None, Some b -> ignore (Bric.probe b ~cycle:(c - 2) base)
      | None, None -> ()
    end
    | (`Calc | `Table | `None), _ -> ());
    (* speculative dispatch effects *)
    let spec_missed_same_line = ref false in
    if ev.dispatched then begin
      book_port t ev.access_cycle;
      s.dcache_accesses <- s.dcache_accesses + 1;
      (* the speculative access touches the cache with its (possibly
         wrong) address; for the table path that is the prediction *)
      let spec_addr =
        match ev.path with
        | `Table -> (match t.table with
                     | Some table -> (match Addr_table.peek table pc with
                                      | Some pa -> pa
                                      | None -> eff)
                     | None -> eff)
        | _ -> eff
      in
      let spec_hit = Cache.access t.dcache spec_addr in
      if not spec_hit then begin
        s.dcache_misses <- s.dcache_misses + 1;
        (* a correct-address speculative miss starts the fill early;
           the normal access below merges with the in-flight fill *)
        if spec_addr lsr 6 = eff lsr 6 then spec_missed_same_line := true
      end;
      (match ev.path with
      | `Table ->
        s.table_attempts <- s.table_attempts + 1;
        if ev.success then s.table_successes <- s.table_successes + 1
      | `Calc ->
        s.calc_attempts <- s.calc_attempts + 1;
        if ev.success then s.calc_successes <- s.calc_successes + 1
      | `None -> ());
      if not ev.success then s.wasted_spec <- s.wasted_spec + 1
    end;
    let lat =
      if ev.success then ev.success_latency
      else begin
        (* normal path: cache access at MEM *)
        book_port t (c + 1);
        s.dcache_accesses <- s.dcache_accesses + 1;
        let hit = Cache.access t.dcache eff in
        if not hit then s.dcache_misses <- s.dcache_misses + 1;
        if hit && !spec_missed_same_line then
          (* merge with the fill the speculative access initiated *)
          t.cfg.load_latency
          + max 0 (t.cfg.miss_penalty - (c + 1 - ev.access_cycle))
        else t.cfg.load_latency + (if hit then 0 else t.cfg.miss_penalty)
      end
    in
    s.load_latency_sum <- s.load_latency_sum + lat;
    latency := lat;
    (* the table entry is updated at MEM with the computed address *)
    (match (t.table, updates_table) with
    | Some table, true -> ignore (Addr_table.update table pc eff)
    | _ -> ())
  | None -> ());
  (* stores *)
  if is_store then begin
    s.stores <- s.stores + 1;
    book_port t (c + 1);
    s.dcache_accesses <- s.dcache_accesses + 1;
    if not (Cache.access_store t.dcache eff) then
      s.dcache_misses <- s.dcache_misses + 1;
    let bytes =
      match insn with Insn.Store { size; _ } -> Insn.size_bytes size | _ -> 4
    in
    t.stores_in_flight <- (c, eff, bytes) :: t.stores_in_flight
  end;
  (* control flow *)
  (match insn with
  | Insn.Branch _ | Insn.Jr _ | Insn.Jalr _ ->
    let correct = Btb.update t.btb pc ~taken ~target:next_pc in
    if correct then begin
      if taken then t.fetch_ready <- max t.fetch_ready (c + 1)
    end
    else begin
      s.btb_mispredicts <- s.btb_mispredicts + 1;
      t.fetch_ready <- max t.fetch_ready (c + 1 + t.cfg.mispredict_penalty)
    end
  | Insn.Jump _ | Insn.Jal _ ->
    (* direct unconditional transfers redirect fetch without penalty
       but end the fetch group *)
    t.fetch_ready <- max t.fetch_ready (c + 1)
  | _ -> ());
  (* destinations *)
  List.iter (fun d -> t.reg_ready.(d) <- c + !latency) (Insn.defs insn);
  (match t.tracer with Some f -> f pc insn c !latency | None -> ());
  s.cycles <- max s.cycles (c + !latency)

let set_tracer t f = t.tracer <- Some f

let observer t : Emulator.observer = fun pc insn eff taken next_pc ->
  process t pc insn eff taken next_pc

let stats t = t.stats

let table_stats t = Option.map Addr_table.stats t.table

(* Run a program under this configuration and return final statistics. *)
let simulate ?max_insns (cfg : Config.t) program =
  let t = create cfg in
  let emu = Emulator.create program in
  Emulator.run ~observer:(observer t) ?max_insns emu;
  (t.stats, Emulator.output emu)
