(** Set-associative cache model with LRU replacement (tags only —
    data correctness is the emulator's job).  The paper's
    configuration is direct-mapped ([ways = 1], the default); higher
    associativity exists for the ablation benches. *)

type t

val create : ?ways:int -> size_bytes:int -> line_bytes:int -> unit -> t

val probe : t -> int -> bool
(** Pure hit test: no statistics, no fill.  Used when evaluating
    speculative accesses during issue-cycle search. *)

val access : t -> int -> bool
(** Load-side access: counts, and fills the line on a miss. *)

val access_store : t -> int -> bool
(** Store-side access: write-through, no write-allocate. *)

val miss_rate : t -> float

val stats : t -> int * int
(** (accesses, misses). *)
