(** Flat little-endian byte-addressable memory. *)

type t

exception Fault of int
(** Raised on out-of-range accesses, carrying the faulting address. *)

val default_size : int
(** 16 MiB. *)

val create : ?size:int -> unit -> t

val size : t -> int

val read_byte_u : t -> int -> int
val read_byte_s : t -> int -> int
val read_half_u : t -> int -> int
val read_half_s : t -> int -> int

val read_word : t -> int -> int
(** Normalized to the signed 32-bit range. *)

val write_byte : t -> int -> int -> unit
val write_half : t -> int -> int -> unit
val write_word : t -> int -> int -> unit

val load_image : t -> (int * string) list -> unit
(** Blit an initial data image (address, bytes) into memory. *)
