lib/sim/memory.ml: Bytes Char Elag_isa List String
