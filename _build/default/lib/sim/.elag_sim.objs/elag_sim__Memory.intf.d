lib/sim/memory.mli:
