lib/sim/emulator.ml: Array Buffer Char Elag_isa Memory
