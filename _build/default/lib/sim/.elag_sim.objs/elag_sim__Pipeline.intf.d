lib/sim/pipeline.mli: Config Elag_isa Elag_predict Emulator
