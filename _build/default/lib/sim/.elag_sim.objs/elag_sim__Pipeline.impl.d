lib/sim/pipeline.ml: Array Cache Config Elag_isa Elag_predict Emulator List Option
