lib/sim/emulator.mli: Elag_isa
