lib/sim/cache.mli:
