lib/sim/config.ml: Printf
