(* Flat little-endian byte-addressable memory. *)

type t =
  { bytes : Bytes.t
  ; size : int }

exception Fault of int

let default_size = 16 * 1024 * 1024

let create ?(size = default_size) () = { bytes = Bytes.make size '\000'; size }

let size t = t.size

let check t addr n = if addr < 0 || addr + n > t.size then raise (Fault addr)

let read_byte_u t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.bytes addr)

let read_byte_s t addr =
  let v = read_byte_u t addr in
  if v >= 0x80 then v - 0x100 else v

let read_half_u t addr =
  check t addr 2;
  Char.code (Bytes.unsafe_get t.bytes addr)
  lor (Char.code (Bytes.unsafe_get t.bytes (addr + 1)) lsl 8)

let read_half_s t addr =
  let v = read_half_u t addr in
  if v >= 0x8000 then v - 0x10000 else v

let read_word t addr =
  check t addr 4;
  let v =
    Char.code (Bytes.unsafe_get t.bytes addr)
    lor (Char.code (Bytes.unsafe_get t.bytes (addr + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get t.bytes (addr + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get t.bytes (addr + 3)) lsl 24)
  in
  Elag_isa.Alu.norm v

let write_byte t addr v =
  check t addr 1;
  Bytes.unsafe_set t.bytes addr (Char.unsafe_chr (v land 0xff))

let write_half t addr v =
  check t addr 2;
  Bytes.unsafe_set t.bytes addr (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set t.bytes (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let write_word t addr v =
  check t addr 4;
  Bytes.unsafe_set t.bytes addr (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set t.bytes (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set t.bytes (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set t.bytes (addr + 3) (Char.unsafe_chr ((v asr 24) land 0xff))

let load_image t image =
  List.iter
    (fun (addr, bytes) ->
      check t addr (String.length bytes);
      Bytes.blit_string bytes 0 t.bytes addr (String.length bytes))
    image
