(* Set-associative cache model with LRU replacement (tags only — data
   correctness is the emulator's job).  The paper's configuration is
   direct-mapped ([ways = 1], the default); higher associativity is
   available for the ablation benches.  [probe] is pure; [access]
   fills on a miss. *)

type t =
  { line_bits : int
  ; sets : int
  ; ways : int
  ; tags : int array       (* sets*ways entries, -1 = invalid *)
  ; stamps : int array     (* LRU timestamps, parallel to tags *)
  ; mutable clock : int
  ; mutable accesses : int
  ; mutable misses : int }

let log2 n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ?(ways = 1) ~size_bytes ~line_bytes () =
  if
    size_bytes <= 0 || line_bytes <= 0 || ways <= 0
    || size_bytes mod (line_bytes * ways) <> 0
  then invalid_arg "Cache.create";
  let sets = size_bytes / line_bytes / ways in
  { line_bits = log2 line_bytes
  ; sets
  ; ways
  ; tags = Array.make (sets * ways) (-1)
  ; stamps = Array.make (sets * ways) 0
  ; clock = 0
  ; accesses = 0
  ; misses = 0 }

let set_tag t addr =
  let line = addr lsr t.line_bits in
  (line mod t.sets, line)

(* Index of the way holding [tag] in [set], or -1. *)
let find_way t set tag =
  let base = set * t.ways in
  let rec go w = if w = t.ways then -1
    else if t.tags.(base + w) = tag then base + w
    else go (w + 1)
  in
  go 0

(* Pure hit test: no statistics, no fill, no LRU update. *)
let probe t addr =
  let set, tag = set_tag t addr in
  find_way t set tag >= 0

let victim_way t set =
  let base = set * t.ways in
  let best = ref base in
  for w = 1 to t.ways - 1 do
    if t.stamps.(base + w) < t.stamps.(!best) then best := base + w
  done;
  !best

(* A load-side access: counts, updates LRU, fills the line on a miss. *)
let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let set, tag = set_tag t addr in
  let i = find_way t set tag in
  if i >= 0 then begin
    t.stamps.(i) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let v = victim_way t set in
    t.tags.(v) <- tag;
    t.stamps.(v) <- t.clock;
    false
  end

(* A store-side access: write-through, no write-allocate. *)
let access_store t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let set, tag = set_tag t addr in
  let i = find_way t set tag in
  if i >= 0 then begin
    t.stamps.(i) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses

let stats t = (t.accesses, t.misses)
