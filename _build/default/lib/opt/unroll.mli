(** Loop unrolling (superblock-style, exits kept live).  Innermost
    single-latch loops get their body replicated; virtual registers
    are shared between copies (sound in this non-SSA IR), only labels
    are renamed.  Beyond performance, unrolling multiplies the static
    loads competing for prediction-table entries, which is what makes
    table size and compiler filtering observable effects. *)

val default_factor : int

val run : ?factor:int -> Elag_ir.Ir.func -> bool
