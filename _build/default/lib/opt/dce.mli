(** Dead-code elimination: removes pure instructions whose destination
    is not live at the point of definition, plus dead induction cycles
    (registers kept alive only by their own update instructions). *)

val run : Elag_ir.Ir.func -> bool
