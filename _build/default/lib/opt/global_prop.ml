(* Whole-function constant and copy propagation restricted to
   single-definition virtual registers, where it is sound without SSA:
   if [v] is defined exactly once as [v = const] or [v = w] with [w]
   itself single-definition, every use of [v] can be substituted. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

let run (f : Ir.func) =
  let counts = Use_counts.compute f in
  let single v = Use_counts.def_count counts v = 1 in
  (* Collect substitutions from single-def movs. *)
  let subst_tbl = Hashtbl.create 32 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun inst ->
          match inst with
          | Ir.Mov (v, Ir.Imm n) when single v -> Hashtbl.replace subst_tbl v (Ir.Imm n)
          | Ir.Mov (v, Ir.Reg w) when single v && single w ->
            Hashtbl.replace subst_tbl v (Ir.Reg w)
          | _ -> ())
        b.insts)
    f.Ir.blocks;
  if Hashtbl.length subst_tbl = 0 then false
  else begin
    (* Resolve chains v -> w -> x. *)
    let rec resolve seen v =
      match Hashtbl.find_opt subst_tbl v with
      | Some (Ir.Reg w) when not (List.mem w seen) -> resolve (v :: seen) w
      | Some (Ir.Imm _ as c) -> c
      | _ -> Ir.Reg v
    in
    let subst_operand = function
      | Ir.Reg v -> resolve [] v
      | Ir.Imm _ as op -> op
    in
    let subst_reg_addr addr =
      match addr with
      | Ir.Base (b, d) -> begin
        match resolve [] b with
        | Ir.Reg w -> Ir.Base (w, d)
        | Ir.Imm n -> Ir.Abs (n + d)
      end
      | Ir.Base_index (b, i) -> begin
        match (resolve [] b, resolve [] i) with
        | Ir.Reg b, Ir.Reg i -> Ir.Base_index (b, i)
        | Ir.Reg b, Ir.Imm n | Ir.Imm n, Ir.Reg b -> Ir.Base (b, n)
        | Ir.Imm a, Ir.Imm b -> Ir.Abs (a + b)
      end
      | Ir.Abs _ | Ir.Abs_sym _ -> addr
    in
    let changed = ref false in
    let rewrite_inst inst =
      let inst' =
        match inst with
        | Ir.Bin (op, d, a, b) -> Ir.Bin (op, d, subst_operand a, subst_operand b)
        | Ir.Mov (d, a) -> Ir.Mov (d, subst_operand a)
        | Ir.Load l -> Ir.Load { l with addr = subst_reg_addr l.addr }
        | Ir.Store s ->
          Ir.Store { s with src = subst_operand s.src; addr = subst_reg_addr s.addr }
        | Ir.Call c -> Ir.Call { c with args = List.map subst_operand c.args }
        | (Ir.Global_addr _ | Ir.Slot_addr _) as i -> i
      in
      if inst' <> inst then changed := true;
      inst'
    in
    List.iter
      (fun (b : Ir.block) ->
        b.insts <- List.map rewrite_inst b.insts;
        let t' = Ir.map_term_uses ~operand:(resolve []) b.term in
        if t' <> b.term then begin
          b.term <- t';
          changed := true
        end)
      f.Ir.blocks;
    !changed
  end
