(** Whole-function constant and copy propagation restricted to
    single-definition virtual registers, where it is sound without
    SSA: if [v] is defined exactly once as a constant (or as a copy of
    another single-definition register), every use of [v] can be
    substituted. *)

val run : Elag_ir.Ir.func -> bool
