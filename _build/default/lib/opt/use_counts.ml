(* Whole-function virtual-register use and definition counts, shared by
   several passes. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

type t =
  { uses : (Ir.vreg, int) Hashtbl.t
  ; defs : (Ir.vreg, int) Hashtbl.t }

let bump tbl v = Hashtbl.replace tbl v (1 + Option.value (Hashtbl.find_opt tbl v) ~default:0)

let compute (f : Ir.func) =
  let t = { uses = Hashtbl.create 64; defs = Hashtbl.create 64 } in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun inst ->
          List.iter (bump t.uses) (Ir.inst_uses inst);
          List.iter (bump t.defs) (Ir.inst_defs inst))
        b.insts;
      List.iter (bump t.uses) (Ir.term_uses b.term))
    f.blocks;
  (* Parameters count as defined once on entry. *)
  List.iter (bump t.defs) f.params;
  t

let use_count t v = Option.value (Hashtbl.find_opt t.uses v) ~default:0
let def_count t v = Option.value (Hashtbl.find_opt t.defs v) ~default:0
