(** Interprocedural function summaries — the "more aggressive compiler
    analysis" the paper's conclusion calls for.  Facts are computed by
    a monotone fixpoint over the call graph; unknown callees are
    conservative, builtins are known-harmless. *)

type summary =
  { writes_memory : bool
    (** the function (transitively) executes a store *)
  ; returns_loaded : bool
    (** the return value may derive from a load *) }

val conservative : summary

type t

val analyze : Elag_ir.Ir.program -> t

val find : t -> string -> summary
(** Summary for a callee by name (conservative if unknown). *)
