(** Optimization pass driver, mirroring the pass list the paper applies
    before load classification (Section 4): function inlining, constant
    propagation, copy propagation, redundant load elimination,
    loop-invariant code removal, induction-variable strength reduction
    (including pointer-IV formation), plus cleanup passes and loop
    unrolling. *)

type level = O0 | O1 | O2
(** [O0]: no optimization. [O1]: scalar passes to a fixpoint.
    [O2]: adds loop optimizations and unrolling (the default). *)

val optimize_func : ?level:level -> Elag_ir.Ir.func -> unit

val optimize :
  ?level:level ->
  ?inline_threshold:int ->
  ?unroll_factor:int ->
  Elag_ir.Ir.program ->
  Elag_ir.Ir.program
(** Optimize in place; the program is also returned for chaining. *)
