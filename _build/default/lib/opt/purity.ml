(* Interprocedural function summaries — the "more aggressive compiler
   analysis" the paper's conclusion calls for: a call left in a loop
   (after inlining) otherwise forces every dependent load to be
   classified conservatively, and blocks loop-invariant loads from
   being hoisted.

   Two facts are computed per function by a monotone fixpoint over the
   call graph:

   - [writes_memory]: the function (transitively) executes a store.
     Calls to such functions clobber memory for redundant-load
     elimination and LICM; calls to the others do not.
   - [returns_loaded]: the function's return value may derive from a
     load.  Only such calls need their destination added to the S_load
     set of the classification heuristic (Section 4.1); a call that
     returns pure arithmetic does not make dependent loads
     "load-dependent".

   Builtins (print_int, print_char, exit) neither write program-visible
   memory nor return loaded values.  Unknown callees are conservative
   on both facts. *)

module Ir = Elag_ir.Ir

type summary =
  { writes_memory : bool
  ; returns_loaded : bool }

let conservative = { writes_memory = true; returns_loaded = true }

let builtin_names = [ "print_int"; "print_char"; "exit" ]

type t = (string, summary) Hashtbl.t

let find (t : t) name =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None ->
    if List.mem name builtin_names then
      { writes_memory = false; returns_loaded = false }
    else conservative

(* Does the function's return value derive from a load, given current
   summaries for its callees? *)
let returns_loaded_now summaries (f : Ir.func) =
  let module VS = Set.Make (Int) in
  let s = ref VS.empty in
  let insts = List.concat_map (fun (b : Ir.block) -> b.Ir.insts) f.Ir.blocks in
  List.iter
    (fun inst ->
      match inst with
      | Ir.Load { dst; _ } -> s := VS.add dst !s
      | Ir.Call { dst = Some d; callee; _ } ->
        if (find summaries callee).returns_loaded then s := VS.add d !s
      | _ -> ())
    insts;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun inst ->
        match inst with
        | Ir.Bin (_, dst, _, _) | Ir.Mov (dst, _) ->
          if
            (not (VS.mem dst !s))
            && List.exists (fun u -> VS.mem u !s) (Ir.inst_uses inst)
          then begin
            s := VS.add dst !s;
            changed := true
          end
        | _ -> ())
      insts
  done;
  List.exists
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Ret (Some (Ir.Reg v)) -> VS.mem v !s
      | _ -> false)
    f.Ir.blocks

let writes_memory_now summaries (f : Ir.func) =
  List.exists
    (fun (b : Ir.block) ->
      List.exists
        (fun inst ->
          match inst with
          | Ir.Store _ -> true
          | Ir.Call { callee; _ } -> (find summaries callee).writes_memory
          | _ -> false)
        b.Ir.insts)
    f.Ir.blocks

(* Monotone fixpoint: facts start optimistic (false) and only flip to
   true, so iteration terminates. *)
let analyze (p : Ir.program) : t =
  let t : t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace t f.Ir.name { writes_memory = false; returns_loaded = false })
    p.Ir.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ir.func) ->
        let cur = find t f.Ir.name in
        let next =
          { writes_memory = cur.writes_memory || writes_memory_now t f
          ; returns_loaded = cur.returns_loaded || returns_loaded_now t f }
        in
        if next <> cur then begin
          Hashtbl.replace t f.Ir.name next;
          changed := true
        end)
      p.Ir.funcs
  done;
  t
