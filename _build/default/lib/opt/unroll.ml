(* Loop unrolling (superblock-style, with exits kept live).

   Innermost loops with a single latch get their body replicated
   [factor] times; each copy's back edge is redirected to the next
   copy's header, and the last copy closes the cycle.  Virtual
   registers are shared between copies (the copies execute the same
   code, so reuse is semantics-preserving in this non-SSA IR); only
   labels are renamed.  Loop exits jump to their original targets from
   every copy, so early exits remain correct.

   This mirrors the IMPACT compiler's unrolling, and matters to the
   paper's evaluation beyond performance: it multiplies the number of
   static loads competing for address-prediction-table entries, which
   is what makes table size and compiler filtering (Figure 5a)
   observable effects. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

module SS = Loops.SS

let default_factor = 4
let max_body_insts = 48
let max_body_blocks = 8

let body_size (cfg : Cfg.t) (loop : Loops.loop) =
  SS.fold
    (fun label acc -> acc + List.length (Cfg.block cfg label).Ir.insts)
    loop.Loops.body 0

let is_innermost (loops : Loops.loop list) (loop : Loops.loop) =
  not
    (List.exists
       (fun (other : Loops.loop) ->
         other.Loops.header <> loop.Loops.header
         && SS.mem other.Loops.header loop.Loops.body)
       loops)

let unroll_loop (f : Ir.func) (cfg : Cfg.t) (loop : Loops.loop) ~factor =
  match loop.Loops.back_edges with
  | [ latch ] ->
    let copy_label k label = Printf.sprintf "%s.u%d" label k in
    let rename k label = if SS.mem label loop.Loops.body then copy_label k label else label in
    let header = loop.Loops.header in
    let copies = ref [] in
    for k = 1 to factor - 1 do
      SS.iter
        (fun label ->
          let b = Cfg.block cfg label in
          let next_header =
            if label = latch then
              if k = factor - 1 then header else copy_label (k + 1) header
            else ""
          in
          let rename_target tgt =
            if label = latch && tgt = header then next_header else rename k tgt
          in
          let term =
            match b.Ir.term with
            | Ir.Jmp l -> Ir.Jmp (rename_target l)
            | Ir.Br br ->
              Ir.Br { br with ifso = rename_target br.ifso; ifnot = rename_target br.ifnot }
            | Ir.Ret _ as t -> t
          in
          copies :=
            { Ir.label = copy_label k label; insts = b.Ir.insts; term } :: !copies)
        loop.Loops.body
    done;
    (* Redirect the original latch's back edge into the first copy. *)
    let latch_block = Cfg.block cfg latch in
    let redirect tgt = if tgt = header then copy_label 1 header else tgt in
    latch_block.Ir.term <-
      (match latch_block.Ir.term with
      | Ir.Jmp l -> Ir.Jmp (redirect l)
      | Ir.Br br -> Ir.Br { br with ifso = redirect br.ifso; ifnot = redirect br.ifnot }
      | Ir.Ret _ as t -> t);
    (* Copies share vregs with the original: instruction lists are
       reused as-is.  Insert the copies right after the latch block. *)
    let rec insert = function
      | [] -> List.rev !copies
      | b :: rest when b.Ir.label = latch -> (b :: List.rev !copies) @ rest
      | b :: rest -> b :: insert rest
    in
    f.Ir.blocks <- insert f.Ir.blocks;
    true
  | _ -> false

let run ?(factor = default_factor) (f : Ir.func) =
  if factor < 2 then false
  else begin
    let cfg = Cfg.of_func f in
    let dom = Dominators.compute cfg in
    let loops = Loops.compute cfg dom in
    let candidates =
      List.filter
        (fun loop ->
          is_innermost loops loop
          && List.length loop.Loops.back_edges = 1
          && SS.cardinal loop.Loops.body <= max_body_blocks
          && body_size cfg loop <= max_body_insts)
        loops
    in
    List.fold_left (fun acc loop -> unroll_loop f cfg loop ~factor || acc) false candidates
  end
