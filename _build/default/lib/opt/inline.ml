(* Function inlining.

   Small non-recursive callees are inlined bottom-up in the call graph
   (callees processed before callers), so chains of small helpers
   collapse.  The paper's heuristics rely on inlining to remove
   frequently-executed calls inside loops, which would otherwise force
   loads to be classified conservatively. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

let default_threshold = 40

let func_size (f : Ir.func) =
  List.fold_left (fun acc (b : Ir.block) -> acc + 1 + List.length b.Ir.insts) 0 f.Ir.blocks

let callees_of (f : Ir.func) =
  List.concat_map
    (fun (b : Ir.block) ->
      List.filter_map
        (function Ir.Call { callee; _ } -> Some callee | _ -> None)
        b.Ir.insts)
    f.Ir.blocks

(* Functions involved in call-graph cycles (including self-recursion)
   are never inlined. *)
let recursive_set (funcs : Ir.func list) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace tbl f.Ir.name (callees_of f)) funcs;
  let in_cycle = Hashtbl.create 16 in
  let rec reaches target seen name =
    if List.mem name seen then false
    else
      match Hashtbl.find_opt tbl name with
      | None -> false
      | Some cs ->
        List.exists (fun c -> c = target || reaches target (name :: seen) c) cs
  in
  List.iter
    (fun (f : Ir.func) ->
      if reaches f.Ir.name [] f.Ir.name then Hashtbl.replace in_cycle f.Ir.name ())
    funcs;
  in_cycle

(* Inline one call site: splits [block] at [call_inst] and splices a
   renamed copy of [callee] in between. *)
let inline_site (caller : Ir.func) (block : Ir.block) (call_inst : Ir.inst)
    (callee : Ir.func) =
  let dst, args =
    match call_inst with
    | Ir.Call { dst; args; _ } -> (dst, args)
    | _ -> invalid_arg "inline_site"
  in
  (* Renaming maps. *)
  let vreg_offset = caller.Ir.next_vreg in
  caller.Ir.next_vreg <- caller.Ir.next_vreg + callee.Ir.next_vreg;
  let rv v = v + vreg_offset in
  let tag = Ir.fresh_label caller "inl" in
  let rl label = Printf.sprintf "%s.%s" tag label in
  let slot_map = Hashtbl.create 8 in
  List.iter
    (fun (s : Ir.slot) ->
      let ns = Ir.add_slot caller ~size:s.Ir.slot_size ~align:s.Ir.slot_align in
      Hashtbl.replace slot_map s.Ir.slot_id ns)
    callee.Ir.slots;
  let continuation = rl "cont" in
  let rename_operand = function Ir.Reg v -> Ir.Reg (rv v) | Ir.Imm _ as o -> o in
  let rename_address = function
    | Ir.Base (b, d) -> Ir.Base (rv b, d)
    | Ir.Base_index (b, i) -> Ir.Base_index (rv b, rv i)
    | (Ir.Abs _ | Ir.Abs_sym _) as a -> a
  in
  let rename_inst = function
    | Ir.Bin (op, d, a, b) -> Ir.Bin (op, rv d, rename_operand a, rename_operand b)
    | Ir.Mov (d, a) -> Ir.Mov (rv d, rename_operand a)
    | Ir.Load l -> Ir.Load { l with dst = rv l.dst; addr = rename_address l.addr }
    | Ir.Store s ->
      Ir.Store { s with src = rename_operand s.src; addr = rename_address s.addr }
    | Ir.Call c ->
      Ir.Call
        { c with
          dst = Option.map rv c.dst
        ; args = List.map rename_operand c.args }
    | Ir.Global_addr (d, l) -> Ir.Global_addr (rv d, l)
    | Ir.Slot_addr (d, s) -> Ir.Slot_addr (rv d, Hashtbl.find slot_map s)
  in
  let rename_term = function
    | Ir.Jmp l -> Ir.Jmp (rl l)
    | Ir.Br b ->
      Ir.Br
        { b with
          src1 = rename_operand b.src1
        ; src2 = rename_operand b.src2
        ; ifso = rl b.ifso
        ; ifnot = rl b.ifnot }
    | Ir.Ret op ->
      (* return becomes an assignment to the call destination followed
         by a jump to the continuation *)
      ignore op;
      assert false
  in
  let copied_blocks =
    List.map
      (fun (b : Ir.block) ->
        let insts = List.map rename_inst b.Ir.insts in
        match b.Ir.term with
        | Ir.Ret op ->
          let extra =
            match (dst, op) with
            | Some d, Some v -> [ Ir.Mov (d, rename_operand v) ]
            | Some d, None -> [ Ir.Mov (d, Ir.Imm 0) ]
            | None, _ -> []
          in
          { Ir.label = rl b.Ir.label; insts = insts @ extra; term = Ir.Jmp continuation }
        | t -> { Ir.label = rl b.Ir.label; insts; term = rename_term t })
      callee.Ir.blocks
  in
  (* Split the caller block. *)
  let rec split before = function
    | [] -> invalid_arg "inline_site: call not found"
    | inst :: rest when inst == call_inst -> (List.rev before, rest)
    | inst :: rest -> split (inst :: before) rest
  in
  let before, after = split [] block.Ir.insts in
  let param_moves =
    List.map2 (fun p a -> Ir.Mov (rv p, a)) callee.Ir.params args
  in
  let cont_block = { Ir.label = continuation; insts = after; term = block.Ir.term } in
  let callee_entry = rl (Ir.entry_block callee).Ir.label in
  block.Ir.insts <- before @ param_moves;
  block.Ir.term <- Ir.Jmp callee_entry;
  (* Insert the copied blocks and continuation right after [block]. *)
  let rec insert = function
    | [] -> []
    | b :: rest when b == block -> b :: (copied_blocks @ [ cont_block ]) @ rest
    | b :: rest -> b :: insert rest
  in
  caller.Ir.blocks <- insert caller.Ir.blocks

(* Inline every eligible call site in [caller]. *)
let run_func ~threshold ~by_name ~recursive (caller : Ir.func) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let site =
      List.find_map
        (fun (b : Ir.block) ->
          List.find_map
            (fun inst ->
              match inst with
              | Ir.Call { callee; _ } -> begin
                match Hashtbl.find_opt by_name callee with
                | Some target
                  when target.Ir.name <> caller.Ir.name
                       && (not (Hashtbl.mem recursive callee))
                       && func_size target <= threshold ->
                  Some (b, inst, target)
                | _ -> None
              end
              | _ -> None)
            b.Ir.insts)
        caller.Ir.blocks
    in
    match site with
    | Some (b, inst, target) ->
      inline_site caller b inst target;
      changed := true;
      continue_ := true
    | None -> ()
  done;
  !changed

let run ?(threshold = default_threshold) (p : Ir.program) =
  let by_name = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace by_name f.Ir.name f) p.Ir.funcs;
  let recursive = recursive_set p.Ir.funcs in
  (* Bottom-up: process small functions first so helpers collapse into
     their callers before the callers are considered. *)
  let ordered =
    List.sort (fun a b -> compare (func_size a) (func_size b)) p.Ir.funcs
  in
  List.fold_left
    (fun acc f -> run_func ~threshold ~by_name ~recursive f || acc)
    false ordered
