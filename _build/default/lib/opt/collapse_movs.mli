(** Collapse adjacent [t = op ...; v = t] pairs where [t] is a
    single-def single-use temporary, producing the compact two-address
    shapes ([v = add v, 1], [p = ld [p+8]]) that induction-variable
    detection and the paper's load-classification heuristics key on. *)

val run : Elag_ir.Ir.func -> bool
