(* Loop-invariant code motion.

   For every natural loop (inner-first) a preheader is created and
   invariant instructions are hoisted into it.  An instruction is
   hoisted when:
   - it is pure (or a load, if the whole loop is free of stores and
     calls — this doubles as cross-iteration redundant-load
     elimination, one of the passes the paper's heuristics assume);
   - every virtual register it reads has no definition inside the loop;
   - its destination has exactly one definition inside the loop;
   - its destination is not live on entry to the loop header (no use
     before the definition inside the loop);
   - its block dominates every latch (it executes on every iteration).  *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

module SS = Loops.SS
module VS = Liveness.VS

(* Create (or reuse) a preheader for [loop]: a block that becomes the
   unique non-latch predecessor of the header. *)
let ensure_preheader (_f : Ir.func) (cfg : Cfg.t) (loop : Loops.loop) =
  let outside_preds =
    List.filter (fun p -> not (SS.mem p loop.Loops.body)) (Cfg.preds cfg loop.Loops.header)
  in
  match outside_preds with
  | [ single ] ->
    let b = Cfg.block cfg single in
    (* reuse it only if it unconditionally jumps to the header *)
    (match b.Ir.term with Ir.Jmp _ -> Some b | _ -> None)
  | _ -> None

let rec make_preheader (f : Ir.func) (cfg : Cfg.t) (loop : Loops.loop) =
  match ensure_preheader f cfg loop with
  | Some b -> b
  | None ->
    let label = Ir.fresh_label f "preheader" in
    let pre = { Ir.label; insts = []; term = Ir.Jmp loop.Loops.header } in
    let retarget l = if l = loop.Loops.header then label else l in
    List.iter
      (fun (b : Ir.block) ->
        if not (SS.mem b.Ir.label loop.Loops.body) then
          b.Ir.term <-
            (match b.Ir.term with
            | Ir.Jmp l -> Ir.Jmp (retarget l)
            | Ir.Br br -> Ir.Br { br with ifso = retarget br.ifso; ifnot = retarget br.ifnot }
            | Ir.Ret _ as t -> t))
      f.Ir.blocks;
    (* keep entry block first: if the header was the entry, the
       preheader becomes the new entry *)
    if (Ir.entry_block f).Ir.label = loop.Loops.header then
      f.Ir.blocks <- pre :: f.Ir.blocks
    else f.Ir.blocks <- insert_before f.Ir.blocks loop.Loops.header pre;
    pre

and insert_before blocks label pre =
  match blocks with
  | [] -> [ pre ]
  | b :: rest when b.Ir.label = label -> pre :: b :: rest
  | b :: rest -> b :: insert_before rest label pre

(* def counts inside the loop *)
let loop_def_counts (cfg : Cfg.t) (loop : Loops.loop) =
  let tbl = Hashtbl.create 32 in
  SS.iter
    (fun label ->
      let b = Cfg.block cfg label in
      List.iter
        (fun inst ->
          List.iter
            (fun d ->
              Hashtbl.replace tbl d (1 + Option.value (Hashtbl.find_opt tbl d) ~default:0))
            (Ir.inst_defs inst))
        b.Ir.insts)
    loop.Loops.body;
  tbl

let loop_has_memory_clobber ?summaries (cfg : Cfg.t) (loop : Loops.loop) =
  SS.exists
    (fun label ->
      let b = Cfg.block cfg label in
      List.exists
        (function
          | Ir.Store _ -> true
          | Ir.Call { callee; _ } -> begin
            (* with interprocedural summaries, calls to functions that
               never store do not clobber memory *)
            match summaries with
            | Some t -> (Purity.find t callee).Purity.writes_memory
            | None -> true
          end
          | _ -> false)
        b.Ir.insts)
    loop.Loops.body

let run_loop ?summaries (f : Ir.func) (loop : Loops.loop) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let cfg = Cfg.of_func f in
    if SS.for_all (fun l -> Cfg.reachable cfg l) loop.Loops.body then begin
      let dom = Dominators.compute cfg in
      let live = Liveness.compute cfg in
      let def_counts = loop_def_counts cfg loop in
      let defined_in_loop v = Hashtbl.mem def_counts v in
      let single_def_in_loop v = Hashtbl.find_opt def_counts v = Some 1 in
      let live_at_header = Liveness.live_in live loop.Loops.header in
      let memory_clobbered = loop_has_memory_clobber ?summaries cfg loop in
      let dominates_latches label =
        List.for_all (fun latch -> Dominators.dominates dom label latch) loop.Loops.back_edges
      in
      let hoistable label inst =
        let pure =
          match inst with
          | Ir.Bin _ | Ir.Mov _ | Ir.Global_addr _ | Ir.Slot_addr _ -> true
          | Ir.Load _ -> not memory_clobbered
          | Ir.Store _ | Ir.Call _ -> false
        in
        pure
        && (match Ir.inst_defs inst with
           | [ d ] ->
             single_def_in_loop d
             && (not (VS.mem d live_at_header))
             && List.for_all (fun u -> not (defined_in_loop u)) (Ir.inst_uses inst)
           | _ -> false)
        && dominates_latches label
      in
      (* find one hoistable instruction, move it, restart *)
      let moved = ref false in
      SS.iter
        (fun label ->
          if not !moved then begin
            let b = Cfg.block cfg label in
            match List.find_opt (hoistable label) b.Ir.insts with
            | Some inst ->
              b.Ir.insts <- List.filter (fun i -> i != inst) b.Ir.insts;
              let pre = make_preheader f (Cfg.of_func f) loop in
              pre.Ir.insts <- pre.Ir.insts @ [ inst ];
              moved := true;
              changed := true;
              continue_ := true
            | None -> ()
          end)
        loop.Loops.body
    end
  done;
  !changed

let run ?summaries (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let dom = Dominators.compute cfg in
  let loops = Loops.compute cfg dom in
  List.fold_left (fun acc loop -> run_loop ?summaries f loop || acc) false loops
