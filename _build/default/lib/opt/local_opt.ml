(* Per-basic-block optimization: constant folding and propagation, copy
   propagation, common-subexpression elimination on pure operations,
   store-to-load forwarding and redundant-load elimination.

   The block is walked forward while maintaining:
   - [env]: the current known value (constant or copy source) of each
     virtual register;
   - [exprs]: available pure expressions keyed by (op, operands);
   - [mem]: available memory values keyed by canonical address+size.

   Invalidations: redefining [v] drops every table entry mentioning
   [v]; stores and calls drop memory entries (a store then records its
   own forwarding entry). *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

module Insn = Elag_isa.Insn
module Alu = Elag_isa.Alu

type env =
  { mutable values : (Ir.vreg * Ir.operand) list
  ; mutable exprs : ((Ir.binop * Ir.operand * Ir.operand) * Ir.vreg) list
  ; mutable addrs : ((string * int) * Ir.vreg) list
    (* Global_addr/Slot_addr availability: key = (kind-tagged name, n) *)
  ; mutable mem : ((Ir.address * Insn.mem_size * Insn.signedness) * Ir.operand) list }

let empty () = { values = []; exprs = []; addrs = []; mem = [] }

let lookup_value env v = List.assoc_opt v env.values

let subst_operand env = function
  | Ir.Reg v -> (match lookup_value env v with Some op -> op | None -> Ir.Reg v)
  | Ir.Imm _ as op -> op

(* Substitute inside an address; a base register known to be a constant
   turns the address into an absolute one. *)
let subst_address env addr =
  match addr with
  | Ir.Base (b, d) -> begin
    match lookup_value env b with
    | Some (Ir.Reg w) -> Ir.Base (w, d)
    | Some (Ir.Imm n) -> Ir.Abs (n + d)
    | None -> addr
  end
  | Ir.Base_index (b, i) -> begin
    let b' = match lookup_value env b with Some (Ir.Reg w) -> `R w | Some (Ir.Imm n) -> `I n | None -> `R b in
    let i' = match lookup_value env i with Some (Ir.Reg w) -> `R w | Some (Ir.Imm n) -> `I n | None -> `R i in
    match (b', i') with
    | `R b, `R i -> Ir.Base_index (b, i)
    | `R b, `I n | `I n, `R b -> Ir.Base (b, n)
    | `I a, `I b -> Ir.Abs (a + b)
  end
  | Ir.Abs _ | Ir.Abs_sym _ -> addr

let operand_mentions v = function Ir.Reg w -> w = v | Ir.Imm _ -> false

let address_mentions v = function
  | Ir.Base (b, _) -> b = v
  | Ir.Base_index (b, i) -> b = v || i = v
  | Ir.Abs _ | Ir.Abs_sym _ -> false

(* Drop every table entry that mentions [v]. *)
let invalidate env v =
  env.values <-
    List.filter (fun (d, op) -> d <> v && not (operand_mentions v op)) env.values;
  env.exprs <-
    List.filter
      (fun ((_, a, b), d) ->
        d <> v && not (operand_mentions v a) && not (operand_mentions v b))
      env.exprs;
  env.addrs <- List.filter (fun (_, d) -> d <> v) env.addrs;
  env.mem <-
    List.filter
      (fun ((addr, _, _), value) ->
        (not (address_mentions v addr)) && not (operand_mentions v value))
      env.mem

let invalidate_memory env = env.mem <- []

(* Commutative operators get normalized operand order so that CSE and
   folding find more matches. *)
let is_commutative = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor | Ir.Seq | Ir.Sne -> true
  | _ -> false

let normalize_bin op a b =
  if is_commutative op then
    match (a, b) with
    | Ir.Imm _, Ir.Reg _ -> (b, a)
    | Ir.Reg x, Ir.Reg y when x > y -> (b, a)
    | _ -> (a, b)
  else (a, b)

(* Algebraic simplification of a binop with substituted operands;
   returns either a simpler operand or the (possibly normalized)
   operation. *)
let simplify_bin op a b =
  match (op, a, b) with
  | _, Ir.Imm x, Ir.Imm y -> `Value (Ir.Imm (Alu.eval (Ir.alu_of_binop op) x y))
  | (Ir.Add | Ir.Or | Ir.Xor | Ir.Sll | Ir.Srl | Ir.Sra), v, Ir.Imm 0 -> `Value v
  | (Ir.Add | Ir.Or | Ir.Xor), Ir.Imm 0, v -> `Value v
  | Ir.Sub, v, Ir.Imm 0 -> `Value v
  | Ir.Mul, v, Ir.Imm 1 | Ir.Mul, Ir.Imm 1, v -> `Value v
  | Ir.Mul, _, Ir.Imm 0 | Ir.Mul, Ir.Imm 0, _ -> `Value (Ir.Imm 0)
  | Ir.Div, v, Ir.Imm 1 -> `Value v
  | Ir.And, _, Ir.Imm 0 | Ir.And, Ir.Imm 0, _ -> `Value (Ir.Imm 0)
  | Ir.Sub, Ir.Reg x, Ir.Reg y when x = y -> `Value (Ir.Imm 0)
  | Ir.Xor, Ir.Reg x, Ir.Reg y when x = y -> `Value (Ir.Imm 0)
  | _ ->
    let a, b = normalize_bin op a b in
    `Op (op, a, b)

let addr_key_global label = ("G:" ^ label, 0)
let addr_key_slot slot = ("S:", slot)

(* Two memory accesses conflict unless they are provably disjoint.  We
   only prove disjointness for absolute addresses (static data). *)
let may_alias (a1, s1, _) a2 s2 =
  let range = function
    | Ir.Abs a -> Some (a, a)
    | Ir.Abs_sym _ | Ir.Base _ | Ir.Base_index _ -> None
  in
  match (range a1, range a2) with
  | Some (lo1, _), Some (lo2, _) ->
    let hi1 = lo1 + Insn.size_bytes s1 - 1 and hi2 = lo2 + Insn.size_bytes s2 - 1 in
    not (hi1 < lo2 || hi2 < lo1)
  | _ -> true

let run_block env (b : Ir.block) =
  let changed = ref false in
  let out = ref [] in
  let keep inst = out := inst :: !out in
  let define v =
    invalidate env v
  in
  let record_value v op =
    if op <> Ir.Reg v then env.values <- (v, op) :: env.values
  in
  List.iter
    (fun inst ->
      match inst with
      | Ir.Bin (op, dst, a, b) -> begin
        let a = subst_operand env a and b = subst_operand env b in
        match simplify_bin op a b with
        | `Value op_val ->
          define dst;
          record_value dst op_val;
          keep (Ir.Mov (dst, op_val));
          changed := true
        | `Op (op, a, b) -> begin
          match List.assoc_opt (op, a, b) env.exprs with
          | Some prev when prev <> dst ->
            define dst;
            record_value dst (Ir.Reg prev);
            keep (Ir.Mov (dst, Ir.Reg prev));
            changed := true
          | _ ->
            define dst;
            (* an expression whose operands mention [dst] reads the
               pre-assignment value and must not become available *)
            if not (operand_mentions dst a || operand_mentions dst b) then
              env.exprs <- ((op, a, b), dst) :: env.exprs;
            keep (Ir.Bin (op, dst, a, b))
        end
      end
      | Ir.Mov (dst, src) ->
        let src = subst_operand env src in
        define dst;
        record_value dst src;
        keep (Ir.Mov (dst, src))
      | Ir.Global_addr (dst, label) -> begin
        match List.assoc_opt (addr_key_global label) env.addrs with
        | Some prev when prev <> dst ->
          define dst;
          record_value dst (Ir.Reg prev);
          keep (Ir.Mov (dst, Ir.Reg prev));
          changed := true
        | _ ->
          define dst;
          env.addrs <- (addr_key_global label, dst) :: env.addrs;
          keep (Ir.Global_addr (dst, label))
      end
      | Ir.Slot_addr (dst, slot) -> begin
        match List.assoc_opt (addr_key_slot slot) env.addrs with
        | Some prev when prev <> dst ->
          define dst;
          record_value dst (Ir.Reg prev);
          keep (Ir.Mov (dst, Ir.Reg prev));
          changed := true
        | _ ->
          define dst;
          env.addrs <- (addr_key_slot slot, dst) :: env.addrs;
          keep (Ir.Slot_addr (dst, slot))
      end
      | Ir.Load ({ dst; addr; size; sign; _ } as l) -> begin
        let addr = subst_address env addr in
        match List.assoc_opt (addr, size, sign) env.mem with
        | Some value ->
          (* redundant load: the value is already known *)
          define dst;
          record_value dst value;
          keep (Ir.Mov (dst, value));
          changed := true
        | None ->
          define dst;
          (* pointer-chasing loads ([v = ld \[v\]]) overwrite their own
             base; the address key would refer to the old value *)
          if not (address_mentions dst addr) then
            env.mem <- ((addr, size, sign), Ir.Reg dst) :: env.mem;
          keep (Ir.Load { l with addr; dst })
      end
      | Ir.Store { size; src; addr } ->
        let src = subst_operand env src in
        let addr = subst_address env addr in
        (* kill aliasing entries, then record the forwarded value for
           both signednesses only when the store writes a full word *)
        env.mem <- List.filter (fun (key, _) -> not (may_alias key addr size)) env.mem;
        if size = Insn.Word then
          env.mem <- ((addr, size, Insn.Signed), src) :: env.mem;
        keep (Ir.Store { size; src; addr })
      | Ir.Call { dst; callee; args } ->
        let args = List.map (subst_operand env) args in
        invalidate_memory env;
        (match dst with Some d -> define d | None -> ());
        keep (Ir.Call { dst; callee; args }))
    b.insts;
  b.insts <- List.rev !out;
  b.term <- Ir.map_term_uses ~operand:(fun v -> subst_operand env (Ir.Reg v)) b.term;
  (* fold constant branches right away *)
  (match b.term with
  | Ir.Br { cond; src1 = Ir.Imm x; src2 = Ir.Imm y; ifso; ifnot } ->
    b.term <- Ir.Jmp (if Alu.eval_cond cond x y then ifso else ifnot);
    changed := true
  | _ -> ());
  !changed

let run (f : Ir.func) =
  let changed = ref false in
  List.iter
    (fun b -> if run_block (empty ()) b then changed := true)
    f.Ir.blocks;
  !changed
