(* Dead-code elimination: removes pure instructions whose destination
   is not live at the point of definition, using block-level liveness
   refined instruction-by-instruction backwards. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

module VS = Liveness.VS

(* Kill dead induction cycles: a register whose every use occurs in
   instructions that only define it (e.g. [v = v + 4] with no other
   use) keeps itself alive under plain liveness; remove those
   instructions explicitly. *)
let kill_self_cycles (f : Ir.func) =
  let self_uses = Hashtbl.create 16 in
  let other_uses = Hashtbl.create 16 in
  let bump tbl v = Hashtbl.replace tbl v (1 + Option.value (Hashtbl.find_opt tbl v) ~default:0) in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun inst ->
          let defs = Ir.inst_defs inst in
          List.iter
            (fun u -> if List.mem u defs then bump self_uses u else bump other_uses u)
            (Ir.inst_uses inst))
        b.Ir.insts;
      List.iter (fun u -> bump other_uses u) (Ir.term_uses b.Ir.term))
    f.Ir.blocks;
  let dead v =
    Hashtbl.mem self_uses v
    && not (Hashtbl.mem other_uses v)
    && not (List.mem v f.Ir.params)
  in
  let changed = ref false in
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.insts <-
        List.filter
          (fun inst ->
            let remove =
              (not (Ir.has_side_effect inst))
              && (match Ir.inst_defs inst with [ d ] -> dead d | _ -> false)
            in
            if remove then changed := true;
            not remove)
          b.Ir.insts)
    f.Ir.blocks;
  !changed

let run (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let live = Liveness.compute cfg in
  let changed = ref false in
  List.iter
    (fun (b : Ir.block) ->
      let live_set = ref (Liveness.live_out live b.label) in
      (* also live: uses of the terminator *)
      List.iter (fun v -> live_set := VS.add v !live_set) (Ir.term_uses b.term);
      let kept =
        List.fold_left
          (fun acc inst ->
            let defs = Ir.inst_defs inst in
            let dead =
              (not (Ir.has_side_effect inst))
              && defs <> []
              && List.for_all (fun d -> not (VS.mem d !live_set)) defs
            in
            if dead then begin
              changed := true;
              acc
            end
            else begin
              List.iter (fun d -> live_set := VS.remove d !live_set) defs;
              List.iter (fun u -> live_set := VS.add u !live_set) (Ir.inst_uses inst);
              inst :: acc
            end)
          []
          (List.rev b.insts)
      in
      b.insts <- kept)
    f.Ir.blocks;
  let killed = kill_self_cycles f in
  !changed || killed
