(** Loop-invariant code motion.  For every natural loop (inner-first)
    a preheader is created and invariant instructions are hoisted into
    it; invariant loads are hoisted too when the loop is free of
    stores and memory-writing calls, which doubles as cross-iteration
    redundant-load elimination (one of the passes the paper's
    heuristics assume).  With interprocedural [summaries], calls to
    store-free functions do not block load hoisting — the paper's
    future-work "more aggressive analysis". *)

val make_preheader : Elag_ir.Ir.func -> Elag_ir.Cfg.t -> Elag_ir.Loops.loop -> Elag_ir.Ir.block
(** Create (or reuse) the loop's preheader: the unique non-latch
    predecessor of the header.  Shared with {!Strength_reduce} and
    {!Addr_promote}. *)

val run : ?summaries:Purity.t -> Elag_ir.Ir.func -> bool
