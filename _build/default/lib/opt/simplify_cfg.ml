(* Control-flow cleanup:
   - constant-condition branches become jumps;
   - branches with identical arms become jumps;
   - jumps to empty forwarding blocks are threaded;
   - unreachable blocks are deleted;
   - a block with a unique successor whose unique predecessor it is gets
     merged with it. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

let fold_branch (t : Ir.terminator) =
  match t with
  | Ir.Br { cond; src1 = Ir.Imm a; src2 = Ir.Imm b; ifso; ifnot } ->
    let taken =
      match cond with
      | Elag_isa.Insn.Eq -> a = b
      | Elag_isa.Insn.Ne -> a <> b
      | Elag_isa.Insn.Lt -> a < b
      | Elag_isa.Insn.Le -> a <= b
      | Elag_isa.Insn.Gt -> a > b
      | Elag_isa.Insn.Ge -> a >= b
    in
    Ir.Jmp (if taken then ifso else ifnot)
  | Ir.Br { ifso; ifnot; _ } when ifso = ifnot -> Ir.Jmp ifso
  | t -> t

(* Follow chains of empty blocks that only jump onward. *)
let thread_target f =
  let forward = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      match (b.insts, b.term) with
      | [], Ir.Jmp next when next <> b.label -> Hashtbl.replace forward b.label next
      | _ -> ())
    f.Ir.blocks;
  let rec chase seen label =
    if List.mem label seen then label
    else
      match Hashtbl.find_opt forward label with
      | Some next -> chase (label :: seen) next
      | None -> label
  in
  chase []

let retarget_term thread = function
  | Ir.Jmp l -> Ir.Jmp (thread l)
  | Ir.Br b -> Ir.Br { b with ifso = thread b.ifso; ifnot = thread b.ifnot }
  | Ir.Ret _ as t -> t

let run (f : Ir.func) =
  let changed = ref false in
  (* 1. fold constant branches *)
  List.iter
    (fun (b : Ir.block) ->
      let t' = fold_branch b.term in
      if t' <> b.term then begin
        b.term <- t';
        changed := true
      end)
    f.Ir.blocks;
  (* 2. thread forwarding blocks *)
  let thread = thread_target f in
  List.iter
    (fun (b : Ir.block) ->
      let t' = retarget_term thread b.term in
      if t' <> b.term then begin
        b.term <- t';
        changed := true
      end)
    f.Ir.blocks;
  (* 3. delete unreachable blocks *)
  let cfg = Cfg.of_func f in
  let reachable = List.filter (fun (b : Ir.block) -> Cfg.reachable cfg b.label) f.Ir.blocks in
  if List.length reachable <> List.length f.Ir.blocks then begin
    f.Ir.blocks <- reachable;
    changed := true
  end;
  (* 4. merge straight-line pairs *)
  let cfg = Cfg.of_func f in
  let merged = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      if not (Hashtbl.mem merged b.label) then
        match b.term with
        | Ir.Jmp next when next <> b.label -> begin
          match Cfg.preds cfg next with
          | [ single ] when single = b.label && next <> (Ir.entry_block f).label ->
            let nb = Cfg.block cfg next in
            b.insts <- b.insts @ nb.Ir.insts;
            b.term <- nb.Ir.term;
            Hashtbl.replace merged next ();
            changed := true
          | _ -> ()
        end
        | _ -> ())
    f.Ir.blocks;
  if Hashtbl.length merged > 0 then
    f.Ir.blocks <-
      List.filter (fun (b : Ir.block) -> not (Hashtbl.mem merged b.label)) f.Ir.blocks;
  !changed
