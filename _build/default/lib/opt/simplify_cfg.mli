(** Control-flow cleanup: constant-condition and same-target branches
    become jumps, empty forwarding blocks are threaded, unreachable
    blocks are deleted, and straight-line block pairs are merged. *)

val run : Elag_ir.Ir.func -> bool
(** Returns whether anything changed. *)
