(* Optimization pass driver.

   Mirrors the pass list the paper applies before load classification
   (Section 4): function inlining, constant propagation, copy
   propagation, redundant load elimination, loop-invariant code
   removal, and induction-variable strength reduction — plus the
   cleanup passes (CFG simplification, dead-code elimination) that keep
   the IR canonical between them. *)

module Ir = Elag_ir.Ir

type level = O0 | O1 | O2

(* One scalar round: cheap passes to a local fixpoint. *)
let scalar_round f =
  let changed = ref false in
  let note c = if c then changed := true in
  note (Simplify_cfg.run f);
  note (Collapse_movs.run f);
  note (Local_opt.run f);
  note (Global_prop.run f);
  note (Dce.run f);
  !changed

let rec fixpoint ?(fuel = 10) pass f =
  if fuel > 0 && pass f then fixpoint ~fuel:(fuel - 1) pass f

let optimize_func ?(level = O2) (f : Ir.func) =
  match level with
  | O0 -> ()
  | O1 -> fixpoint scalar_round f
  | O2 ->
    fixpoint scalar_round f;
    ignore (Licm.run f);
    fixpoint scalar_round f;
    ignore (Strength_reduce.run f);
    fixpoint scalar_round f;
    ignore (Addr_promote.run f);
    fixpoint scalar_round f;
    ignore (Licm.run f);
    fixpoint scalar_round f

let optimize ?(level = O2) ?(inline_threshold = Inline.default_threshold)
    ?(unroll_factor = Unroll.default_factor) (p : Ir.program) =
  if level <> O0 then ignore (Inline.run ~threshold:inline_threshold p);
  List.iter (optimize_func ~level) p.Ir.funcs;
  if level = O2 then begin
    (* interprocedural round: with function summaries, loops containing
       calls to store-free functions still get their loads hoisted *)
    let summaries = Purity.analyze p in
    List.iter
      (fun f ->
        if Licm.run ~summaries f then fixpoint scalar_round f)
      p.Ir.funcs;
    if unroll_factor >= 2 then
      List.iter
        (fun f ->
          if Unroll.run ~factor:unroll_factor f then begin
            fixpoint scalar_round f;
            ignore (Addr_promote.run f);
            fixpoint scalar_round f
          end)
        p.Ir.funcs
  end;
  p
