(* Pointer induction-variable formation (address strength reduction).

   Converts register+register memory addressing over a loop induction
   variable into an incremented pointer with register+offset
   addressing — the code shape of the paper's Figure 4b, where
   [arr\[ind\[i\]\]]-style walks compile to

     ld   r4, r17(0)
     ...
     add  r17, r17, 4

   For each memory access in a loop whose address is
   [Base_index (b, x)] with [b] invariant in the loop and [x] a basic
   induction variable with constant step, a new pointer [p] is created:

     preheader:          p = b + x
     after x's update:   p = p + step

   and the access is rewritten to [Base (p, 0)].  Because [p] is
   bumped immediately after every update of [x], the invariant
   [p = b + x] holds at every other program point, so the rewrite is
   position-independent.  Accesses sharing the same (b, x) pair reuse
   one pointer. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

module SS = Loops.SS

(* Basic induction variables, reusing the detector from
   {!Strength_reduce}. *)
let find_ivs = Strength_reduce.find_basic_ivs

let loop_def_set (cfg : Cfg.t) (loop : Loops.loop) =
  let tbl = Hashtbl.create 32 in
  SS.iter
    (fun label ->
      List.iter
        (fun inst -> List.iter (fun d -> Hashtbl.replace tbl d ()) (Ir.inst_defs inst))
        (Cfg.block cfg label).Ir.insts)
    loop.Loops.body;
  tbl

let run_loop (f : Ir.func) (loop : Loops.loop) =
  let cfg = Cfg.of_func f in
  if not (SS.for_all (Cfg.reachable cfg) loop.Loops.body) then false
  else begin
    let dom = Dominators.compute cfg in
    let ivs = find_ivs cfg dom loop in
    let defs_in_loop = loop_def_set cfg loop in
    let invariant v = not (Hashtbl.mem defs_in_loop v) in
    let iv_of x =
      List.find_opt (fun (iv : Strength_reduce.basic_iv) -> iv.iv = x) ivs
    in
    (* pointer cache: (base, iv) -> pointer vreg.  Preheader inits and
       post-update bumps are deferred until after the address rewrite,
       because inserting into a block that is concurrently being
       rebuilt would be lost. *)
    let pointers = Hashtbl.create 8 in
    let pending = ref [] in
    let changed = ref false in
    let pointer_for b (iv : Strength_reduce.basic_iv) =
      match Hashtbl.find_opt pointers (b, iv.Strength_reduce.iv) with
      | Some p -> p
      | None ->
        let p = Ir.fresh_vreg f in
        Hashtbl.replace pointers (b, iv.Strength_reduce.iv) p;
        pending := (p, b, iv) :: !pending;
        p
    in
    let promote_addr = function
      | Ir.Base_index (b, x) when invariant b -> begin
        match iv_of x with
        | Some iv ->
          changed := true;
          Ir.Base (pointer_for b iv, 0)
        | None -> Ir.Base_index (b, x)
      end
      | addr -> addr
    in
    SS.iter
      (fun label ->
        let blk = Cfg.block cfg label in
        blk.Ir.insts <-
          List.map
            (fun inst ->
              match inst with
              | Ir.Load l -> Ir.Load { l with addr = promote_addr l.addr }
              | Ir.Store st -> Ir.Store { st with addr = promote_addr st.addr }
              | other -> other)
            blk.Ir.insts)
      loop.Loops.body;
    (* Phase 2: materialize preheader inits and post-update bumps. *)
    List.iter
      (fun (p, b, (iv : Strength_reduce.basic_iv)) ->
        let pre = Licm.make_preheader f (Cfg.of_func f) loop in
        pre.Ir.insts <-
          pre.Ir.insts @ [ Ir.Bin (Ir.Add, p, Ir.Reg b, Ir.Reg iv.Strength_reduce.iv) ];
        let upd_block = Ir.find_block f iv.Strength_reduce.update_block in
        let bump = Ir.Bin (Ir.Add, p, Ir.Reg p, Ir.Imm iv.Strength_reduce.step) in
        let rec insert_after = function
          | [] ->
            invalid_arg "Addr_promote: induction-variable update vanished"
          | inst :: rest when inst == iv.Strength_reduce.update_inst ->
            inst :: bump :: rest
          | inst :: rest -> inst :: insert_after rest
        in
        upd_block.Ir.insts <- insert_after upd_block.Ir.insts)
      !pending;
    !changed
  end

let run (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let dom = Dominators.compute cfg in
  let loops = Loops.compute cfg dom in
  List.fold_left (fun acc loop -> run_loop f loop || acc) false loops
