(* Collapse adjacent [t = op ...; v = t] pairs where [t] is a
   single-def single-use temporary, producing the compact two-address
   shapes ([v = add v, 1], [p = ld \[p+8\]]) that induction-variable
   detection and the paper's load-classification heuristics key on. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

let run (f : Ir.func) =
  let counts = Use_counts.compute f in
  let changed = ref false in
  let collapsible t v =
    t <> v && Use_counts.use_count counts t = 1 && Use_counts.def_count counts t = 1
  in
  let rec rewrite = function
    | inst :: Ir.Mov (v, Ir.Reg t) :: rest when List.mem t (Ir.inst_defs inst) -> begin
      let retargeted =
        match inst with
        | Ir.Bin (op, d, a, b) when d = t && collapsible t v -> Some (Ir.Bin (op, v, a, b))
        | Ir.Load l when l.dst = t && collapsible t v -> Some (Ir.Load { l with dst = v })
        | Ir.Global_addr (d, lbl) when d = t && collapsible t v ->
          Some (Ir.Global_addr (v, lbl))
        | Ir.Slot_addr (d, s) when d = t && collapsible t v -> Some (Ir.Slot_addr (v, s))
        | _ -> None
      in
      match retargeted with
      | Some inst' ->
        changed := true;
        inst' :: rewrite rest
      | None -> inst :: rewrite (Ir.Mov (v, Ir.Reg t) :: rest)
    end
    | inst :: rest -> inst :: rewrite rest
    | [] -> []
  in
  List.iter (fun (b : Ir.block) -> b.insts <- rewrite b.insts) f.Ir.blocks;
  !changed
