(** Induction-variable strength reduction: [d = iv * k] (or
    [iv << k]) inside a loop is replaced by an accumulator bumped by
    [step * k] right after the induction variable's single update. *)

type basic_iv =
  { iv : Elag_ir.Ir.vreg
  ; step : int
  ; update_block : string
  ; update_inst : Elag_ir.Ir.inst }

val find_basic_ivs : Elag_ir.Cfg.t -> Elag_ir.Dominators.t -> Elag_ir.Loops.loop -> basic_iv list
(** Registers whose only in-loop definition is a self-increment by a
    constant, with the update dominating every latch.  Shared with
    {!Addr_promote}. *)

val run : Elag_ir.Ir.func -> bool
