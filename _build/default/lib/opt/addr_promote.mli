(** Pointer induction-variable formation (address strength reduction):
    rewrites register+register addressing over a loop induction
    variable into an incremented pointer with register+offset
    addressing — the code shape of the paper's Figure 4b
    ([ld r4, r17(0)] ... [add r17, r17, 4]).  Register+offset mode is
    what makes loads eligible for the early-calculation path. *)

val run : Elag_ir.Ir.func -> bool
