(** Whole-function virtual-register use and definition counts, shared
    by several passes. *)

type t

val compute : Elag_ir.Ir.func -> t

val use_count : t -> Elag_ir.Ir.vreg -> int
val def_count : t -> Elag_ir.Ir.vreg -> int
