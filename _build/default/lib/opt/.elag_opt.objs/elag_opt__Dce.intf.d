lib/opt/dce.mli: Elag_ir
