lib/opt/addr_promote.ml: Elag_ir Hashtbl Licm List Strength_reduce
