lib/opt/collapse_movs.mli: Elag_ir
