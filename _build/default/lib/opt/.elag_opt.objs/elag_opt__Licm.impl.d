lib/opt/licm.ml: Elag_ir Hashtbl List Option Purity
