lib/opt/inline.mli: Elag_ir
