lib/opt/local_opt.mli: Elag_ir
