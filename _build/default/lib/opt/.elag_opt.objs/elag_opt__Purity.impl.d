lib/opt/purity.ml: Elag_ir Hashtbl Int List Set
