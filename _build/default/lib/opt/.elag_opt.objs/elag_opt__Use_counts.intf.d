lib/opt/use_counts.mli: Elag_ir
