lib/opt/local_opt.ml: Elag_ir Elag_isa List
