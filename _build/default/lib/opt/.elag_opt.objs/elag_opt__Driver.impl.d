lib/opt/driver.ml: Addr_promote Collapse_movs Dce Elag_ir Global_prop Inline Licm List Local_opt Purity Simplify_cfg Strength_reduce Unroll
