lib/opt/global_prop.ml: Elag_ir Hashtbl List Use_counts
