lib/opt/global_prop.mli: Elag_ir
