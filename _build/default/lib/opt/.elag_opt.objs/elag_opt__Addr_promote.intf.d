lib/opt/addr_promote.mli: Elag_ir
