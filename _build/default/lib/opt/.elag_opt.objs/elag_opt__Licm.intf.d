lib/opt/licm.mli: Elag_ir Purity
