lib/opt/simplify_cfg.mli: Elag_ir
