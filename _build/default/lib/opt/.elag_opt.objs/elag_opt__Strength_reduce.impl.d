lib/opt/strength_reduce.ml: Elag_ir Hashtbl Licm List Option
