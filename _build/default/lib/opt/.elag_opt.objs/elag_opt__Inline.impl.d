lib/opt/inline.ml: Elag_ir Hashtbl List Option Printf
