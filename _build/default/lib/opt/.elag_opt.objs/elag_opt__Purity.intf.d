lib/opt/purity.mli: Elag_ir
