lib/opt/dce.ml: Elag_ir Hashtbl List Option
