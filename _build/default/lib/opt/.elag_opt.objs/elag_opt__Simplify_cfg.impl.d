lib/opt/simplify_cfg.ml: Elag_ir Elag_isa Hashtbl List
