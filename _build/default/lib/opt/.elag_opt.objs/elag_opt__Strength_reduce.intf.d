lib/opt/strength_reduce.mli: Elag_ir
