lib/opt/unroll.ml: Elag_ir List Printf
