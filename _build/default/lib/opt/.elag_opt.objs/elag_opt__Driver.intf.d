lib/opt/driver.mli: Elag_ir
