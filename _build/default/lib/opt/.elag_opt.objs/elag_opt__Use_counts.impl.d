lib/opt/use_counts.ml: Elag_ir Hashtbl List Option
