lib/opt/unroll.mli: Elag_ir
