lib/opt/collapse_movs.ml: Elag_ir List Use_counts
