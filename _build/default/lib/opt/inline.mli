(** Function inlining: small non-recursive callees are inlined
    bottom-up in the call graph.  The paper's heuristics rely on
    inlining to remove frequently-executed calls inside loops, which
    would otherwise force loads to be classified conservatively. *)

val default_threshold : int
(** Maximum callee size (instructions + blocks) to inline. *)

val func_size : Elag_ir.Ir.func -> int

val run : ?threshold:int -> Elag_ir.Ir.program -> bool
