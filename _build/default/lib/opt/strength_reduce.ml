(* Induction-variable strength reduction.

   A basic induction variable is a virtual register [v] whose only
   definition inside a loop is [v = v + c] (or [v - c]) with the update
   block dominating every latch.  A use [d = v * k] or [d = v << k]
   with a constant [k] is replaced by a new accumulator [s]:

     preheader:           s = v * k
     after the update:    s = s + step_scaled
     at the use:          d = s

   Because the accumulator update is placed immediately after the
   single IV update, [s = v * k] holds at every other program point in
   the loop, so the replacement is position-independent. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness

module SS = Loops.SS

type basic_iv =
  { iv : Ir.vreg
  ; step : int
  ; update_block : string
  ; update_inst : Ir.inst }

let find_basic_ivs (cfg : Cfg.t) (dom : Dominators.t) (loop : Loops.loop) =
  let candidates = Hashtbl.create 8 in
  (* map v -> (count of defs, latest update info) *)
  SS.iter
    (fun label ->
      let b = Cfg.block cfg label in
      List.iter
        (fun inst ->
          List.iter
            (fun d ->
              let step =
                match inst with
                | Ir.Bin (Ir.Add, v, Ir.Reg v', Ir.Imm c) when v = d && v' = v -> Some c
                | Ir.Bin (Ir.Add, v, Ir.Imm c, Ir.Reg v') when v = d && v' = v -> Some c
                | Ir.Bin (Ir.Sub, v, Ir.Reg v', Ir.Imm c) when v = d && v' = v -> Some (-c)
                | _ -> None
              in
              let prev = Option.value (Hashtbl.find_opt candidates d) ~default:(0, None) in
              let count = fst prev + 1 in
              Hashtbl.replace candidates d
                (count, match step with
                        | Some c -> Some (c, label, inst)
                        | None -> None))
            (Ir.inst_defs inst))
        b.Ir.insts)
    loop.Loops.body;
  Hashtbl.fold
    (fun v (count, info) acc ->
      match info with
      | Some (step, update_block, update_inst)
        when count = 1
             && List.for_all
                  (fun latch -> Dominators.dominates dom update_block latch)
                  loop.Loops.back_edges ->
        { iv = v; step; update_block; update_inst } :: acc
      | _ -> acc)
    candidates []

(* Multiplier of a candidate use of [iv], if it is a constant-scale
   operation worth reducing. *)
let candidate_scale iv = function
  | Ir.Bin (Ir.Mul, d, Ir.Reg v, Ir.Imm k) when v = iv -> Some (d, k)
  | Ir.Bin (Ir.Mul, d, Ir.Imm k, Ir.Reg v) when v = iv -> Some (d, k)
  | Ir.Bin (Ir.Sll, d, Ir.Reg v, Ir.Imm k) when v = iv && k >= 0 && k < 31 ->
    Some (d, 1 lsl k)
  | _ -> None

let reduce_one (f : Ir.func) (cfg : Cfg.t) (loop : Loops.loop) (biv : basic_iv) =
  (* Find one candidate instruction in the loop. *)
  let found = ref None in
  SS.iter
    (fun label ->
      if !found = None then begin
        let b = Cfg.block cfg label in
        List.iter
          (fun inst ->
            if !found = None then
              match candidate_scale biv.iv inst with
              | Some (d, k) when k <> 0 && k <> 1 -> found := Some (b, inst, d, k)
              | _ -> ())
          b.Ir.insts
      end)
    loop.Loops.body;
  match !found with
  | None -> false
  | Some (use_block, use_inst, d, k) ->
    let s = Ir.fresh_vreg f in
    (* preheader initialization *)
    let pre = Licm.make_preheader f (Cfg.of_func f) loop in
    pre.Ir.insts <- pre.Ir.insts @ [ Ir.Bin (Ir.Mul, s, Ir.Reg biv.iv, Ir.Imm k) ];
    (* accumulator bump right after the IV update *)
    let upd_block = Cfg.block cfg biv.update_block in
    let bump = Ir.Bin (Ir.Add, s, Ir.Reg s, Ir.Imm (biv.step * k)) in
    let rec insert_after = function
      | [] -> []
      | inst :: rest when inst == biv.update_inst -> inst :: bump :: rest
      | inst :: rest -> inst :: insert_after rest
    in
    upd_block.Ir.insts <- insert_after upd_block.Ir.insts;
    (* replace the use *)
    use_block.Ir.insts <-
      List.map
        (fun inst -> if inst == use_inst then Ir.Mov (d, Ir.Reg s) else inst)
        use_block.Ir.insts;
    true

let run_loop (f : Ir.func) (loop : Loops.loop) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let cfg = Cfg.of_func f in
    if SS.for_all (Cfg.reachable cfg) loop.Loops.body then begin
      let dom = Dominators.compute cfg in
      let ivs = find_basic_ivs cfg dom loop in
      if List.exists (fun biv -> reduce_one f cfg loop biv) ivs then begin
        changed := true;
        continue_ := true
      end
    end
  done;
  !changed

let run (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let dom = Dominators.compute cfg in
  let loops = Loops.compute cfg dom in
  List.fold_left (fun acc loop -> run_loop f loop || acc) false loops
