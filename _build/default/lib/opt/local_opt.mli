(** Per-basic-block optimization: constant folding and propagation,
    copy propagation, common-subexpression elimination on pure
    operations, store-to-load forwarding and redundant-load
    elimination.

    Folding uses the ISA's 32-bit ALU semantics ({!Elag_isa.Alu}), so
    folded results always match execution. *)

val run : Elag_ir.Ir.func -> bool
(** Returns whether anything changed. *)
