(* Immediate dominators via the Cooper–Harvey–Kennedy iterative
   algorithm over the reverse-postorder numbering in {!Cfg}. *)

module SM = Cfg.SM

type t =
  { idom : string SM.t  (* entry maps to itself *)
  ; cfg : Cfg.t }

let compute (cfg : Cfg.t) =
  let entry = (Ir.entry_block cfg.func).label in
  let index l = SM.find l cfg.rpo_index in
  let idom = ref (SM.singleton entry entry) in
  let intersect b1 b2 =
    let rec go f1 f2 =
      if f1 = f2 then f1
      else if index f1 > index f2 then go (SM.find f1 !idom) f2
      else go f1 (SM.find f2 !idom)
    in
    go b1 b2
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        if label <> entry then begin
          let processed_preds =
            List.filter
              (fun p -> SM.mem p !idom && Cfg.reachable cfg p)
              (Cfg.preds cfg label)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if SM.find_opt label !idom <> Some new_idom then begin
              idom := SM.add label new_idom !idom;
              changed := true
            end
        end)
      cfg.rpo
  done;
  { idom = !idom; cfg }

let idom t label = SM.find_opt label t.idom

(* [dominates t a b]: does [a] dominate [b]?  Walks the idom chain. *)
let dominates t a b =
  let entry = (Ir.entry_block t.cfg.func).label in
  let rec go b = if a = b then true else if b = entry then false
    else match idom t b with Some p when p <> b -> go p | _ -> false
  in
  go b
