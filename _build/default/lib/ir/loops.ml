(* Natural-loop detection from back edges (an edge t -> h where h
   dominates t).  Loops are reported with their nesting depth and in
   inner-first order, which is the order the paper's cyclic heuristic
   processes them in (Section 4.1). *)

module SS = Cfg.SS
module SM = Cfg.SM

type loop =
  { header : string
  ; body : SS.t       (* block labels, header included *)
  ; depth : int       (* 1 = outermost *)
  ; back_edges : string list  (* latch blocks *) }

type t = loop list  (* inner-first (deepest first) *)

let natural_loop cfg ~header ~latch =
  let body = ref (SS.singleton header) in
  let rec pull label =
    if not (SS.mem label !body) then begin
      body := SS.add label !body;
      List.iter pull (Cfg.preds cfg label)
    end
  in
  pull latch;
  !body

let compute (cfg : Cfg.t) (dom : Dominators.t) : t =
  (* Find back edges among reachable blocks. *)
  let back_edges =
    List.concat_map
      (fun (b : Ir.block) ->
        if not (Cfg.reachable cfg b.label) then []
        else
          List.filter_map
            (fun succ ->
              if Dominators.dominates dom succ b.label then Some (succ, b.label)
              else None)
            (Cfg.succs cfg b.label))
      cfg.func.blocks
  in
  (* Merge back edges sharing a header into one loop. *)
  let by_header =
    List.fold_left
      (fun m (header, latch) ->
        let existing = Option.value (SM.find_opt header m) ~default:[] in
        SM.add header (latch :: existing) m)
      SM.empty back_edges
  in
  let loops =
    SM.fold
      (fun header latches acc ->
        let body =
          List.fold_left
            (fun acc latch -> SS.union acc (natural_loop cfg ~header ~latch))
            SS.empty latches
        in
        { header; body; depth = 0; back_edges = latches } :: acc)
      by_header []
  in
  (* Depth = number of loops containing this loop's header (itself
     included). *)
  let with_depth =
    List.map
      (fun l ->
        let depth =
          List.length (List.filter (fun l' -> SS.mem l.header l'.body) loops)
        in
        { l with depth })
      loops
  in
  List.sort (fun a b -> compare b.depth a.depth) with_depth

let innermost_containing (loops : t) label =
  List.find_opt (fun l -> SS.mem label l.body) loops

let mem loop label = SS.mem label loop.body
