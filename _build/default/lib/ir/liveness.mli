(** Per-block virtual-register liveness by backwards iterative
    dataflow.  Used by dead-code elimination and the register
    allocator's interval construction. *)

module VS : Set.S with type elt = int

type t

val compute : Cfg.t -> t

val live_in : t -> string -> VS.t
(** Virtual registers live on entry to the block. *)

val live_out : t -> string -> VS.t
(** Virtual registers live on exit from the block. *)
