(** Control-flow-graph utilities over {!Ir.func}: successor and
    predecessor maps, reverse-postorder numbering, reachability.

    A [Cfg.t] is a snapshot: passes that add or remove blocks must
    rebuild it with {!of_func}. *)

module SM : Map.S with type key = string
module SS : Set.S with type elt = string

type t =
  { func : Ir.func
  ; blocks : Ir.block SM.t
  ; succs : string list SM.t
  ; preds : string list SM.t
  ; rpo : string list  (** reverse postorder from the entry block *)
  ; rpo_index : int SM.t }

val of_func : Ir.func -> t

val block : t -> string -> Ir.block
(** Raises [Not_found] for unknown labels. *)

val succs : t -> string -> string list
val preds : t -> string -> string list

val reachable : t -> string -> bool
(** Is the block reachable from the entry? *)

val unreachable_blocks : t -> Ir.block list
