(* Per-block virtual-register liveness by backwards iterative
   dataflow.  Used by dead-code elimination and the register
   allocator's interval construction. *)

module VS = Set.Make (Int)
module SM = Map.Make (String)

type t =
  { live_in : VS.t SM.t
  ; live_out : VS.t SM.t }

let block_use_def (b : Ir.block) =
  (* use = vregs read before any write in the block *)
  let use = ref VS.empty and def = ref VS.empty in
  let read v = if not (VS.mem v !def) then use := VS.add v !use in
  List.iter
    (fun inst ->
      List.iter read (Ir.inst_uses inst);
      List.iter (fun v -> def := VS.add v !def) (Ir.inst_defs inst))
    b.insts;
  List.iter read (Ir.term_uses b.term);
  (!use, !def)

let compute (cfg : Cfg.t) =
  let use_def =
    List.fold_left
      (fun m (b : Ir.block) -> SM.add b.label (block_use_def b) m)
      SM.empty cfg.func.blocks
  in
  let live_in = ref SM.empty and live_out = ref SM.empty in
  List.iter
    (fun (b : Ir.block) ->
      live_in := SM.add b.label VS.empty !live_in;
      live_out := SM.add b.label VS.empty !live_out)
    cfg.func.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Iterate in reverse RPO for fast convergence. *)
    List.iter
      (fun label ->
        let out =
          List.fold_left
            (fun acc s -> VS.union acc (SM.find s !live_in))
            VS.empty (Cfg.succs cfg label)
        in
        let use, def = SM.find label use_def in
        let inn = VS.union use (VS.diff out def) in
        if not (VS.equal out (SM.find label !live_out)) then begin
          live_out := SM.add label out !live_out;
          changed := true
        end;
        if not (VS.equal inn (SM.find label !live_in)) then begin
          live_in := SM.add label inn !live_in;
          changed := true
        end)
      (List.rev cfg.rpo)
  done;
  { live_in = !live_in; live_out = !live_out }

let live_in t label = SM.find label t.live_in
let live_out t label = SM.find label t.live_out
