(** Three-address intermediate representation over virtual registers,
    organized as a control-flow graph of basic blocks.

    The IR reuses the ISA's memory sizes, load specifiers and
    comparison conditions ({!Elag_isa.Insn}) so that load
    classification decisions made at this level survive code generation
    unchanged. *)

module Insn = Elag_isa.Insn

type vreg = int
(** Virtual register index, unbounded per function. *)

val pp_vreg : vreg Fmt.t

type operand = Reg of vreg | Imm of int

(** Arithmetic/logic operations; mirrors {!Elag_isa.Insn.alu_op}
    one-for-one (see {!alu_of_binop}). *)
type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Sll | Srl | Sra
  | Slt | Sle | Seq | Sne

(** Memory addressing, matching the ISA's three modes plus symbolic
    absolutes resolved at code generation. *)
type address =
  | Base of vreg * int        (** register + displacement *)
  | Base_index of vreg * vreg (** register + register *)
  | Abs of int                (** absolute *)
  | Abs_sym of string * int   (** data label + displacement *)

type inst =
  | Bin of binop * vreg * operand * operand
  | Mov of vreg * operand
  | Load of
      { spec : Insn.load_spec
      ; size : Insn.mem_size
      ; sign : Insn.signedness
      ; dst : vreg
      ; addr : address }
  | Store of { size : Insn.mem_size; src : operand; addr : address }
  | Call of { dst : vreg option; callee : string; args : operand list }
  | Global_addr of vreg * string  (** dst := address of data label *)
  | Slot_addr of vreg * int       (** dst := address of frame slot *)

type terminator =
  | Jmp of string
  | Br of
      { cond : Insn.cond
      ; src1 : operand
      ; src2 : operand
      ; ifso : string
      ; ifnot : string }
  | Ret of operand option

type block =
  { label : string
  ; mutable insts : inst list
  ; mutable term : terminator }

type slot = { slot_id : int; slot_size : int; slot_align : int }
(** A stack-frame slot (array, struct or address-taken scalar). *)

type func =
  { name : string
  ; mutable params : vreg list
  ; mutable blocks : block list  (** entry block first *)
  ; mutable slots : slot list
  ; mutable next_vreg : int
  ; mutable next_label : int }

type data = { data_label : string; data_align : int; data_init : Elag_isa.Layout.init }

type program =
  { data : data list
  ; funcs : func list }

val alu_of_binop : binop -> Insn.alu_op
(** The one-for-one mapping onto ISA ALU operations, letting the
    constant folder reuse the emulator's 32-bit semantics. *)

val fresh_vreg : func -> vreg
val fresh_label : func -> string -> string
val add_slot : func -> size:int -> align:int -> int

val entry_block : func -> block
(** First block; raises [Invalid_argument] on an empty function. *)

val find_block : func -> string -> block
(** Block by label; raises [Invalid_argument] if absent. *)

val operand_vregs : operand -> vreg list
val address_vregs : address -> vreg list

val inst_uses : inst -> vreg list
(** Virtual registers read by the instruction. *)

val inst_defs : inst -> vreg list
(** Virtual registers written by the instruction. *)

val term_uses : terminator -> vreg list

val successors : terminator -> string list
(** Successor block labels, in branch order (taken first). *)

val map_operand : (vreg -> operand) -> operand -> operand
val map_address : (vreg -> vreg) -> address -> address

val map_inst_uses :
  operand:(vreg -> operand) -> reg:(vreg -> vreg) -> inst -> inst
(** Substitute use positions: [operand] rewrites value operands,
    [reg] rewrites address registers (which must stay registers). *)

val map_term_uses : operand:(vreg -> operand) -> terminator -> terminator

val has_side_effect : inst -> bool
(** Stores and calls; everything else is pure and removable when dead. *)

val pp_operand : operand Fmt.t
val binop_name : binop -> string
val pp_address : address Fmt.t
val pp_inst : inst Fmt.t
val pp_term : terminator Fmt.t
val pp_block : block Fmt.t
val pp_func : func Fmt.t
val pp_program : program Fmt.t
