(** Natural-loop detection from back edges.  Loops are reported with
    their nesting depth and in inner-first order — the order the
    paper's cyclic classification heuristic processes them in
    (Section 4.1). *)

module SS : Set.S with type elt = string

type loop =
  { header : string
  ; body : SS.t              (** block labels, header included *)
  ; depth : int              (** 1 = outermost *)
  ; back_edges : string list (** latch blocks *) }

type t = loop list
(** Deepest (innermost) loops first. *)

val compute : Cfg.t -> Dominators.t -> t

val innermost_containing : t -> string -> loop option
(** The innermost loop whose body contains the given block label. *)

val mem : loop -> string -> bool
