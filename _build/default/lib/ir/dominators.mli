(** Immediate dominators, via the Cooper–Harvey–Kennedy iterative
    algorithm over the reverse-postorder numbering in {!Cfg}. *)

module SM : Map.S with type key = string

type t =
  { idom : string SM.t  (** the entry block maps to itself *)
  ; cfg : Cfg.t }

val compute : Cfg.t -> t

val idom : t -> string -> string option
(** Immediate dominator of a (reachable) block. *)

val dominates : t -> string -> string -> bool
(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)
