lib/ir/loops.mli: Cfg Dominators Set
