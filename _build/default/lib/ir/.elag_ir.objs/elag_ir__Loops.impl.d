lib/ir/loops.ml: Cfg Dominators Ir List Option
