lib/ir/liveness.mli: Cfg Set
