lib/ir/lower.ml: Char Elag_isa Elag_minic Fmt Hashtbl Ir List Option String
