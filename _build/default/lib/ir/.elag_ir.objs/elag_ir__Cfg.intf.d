lib/ir/cfg.mli: Ir Map Set
