lib/ir/ir.mli: Elag_isa Fmt
