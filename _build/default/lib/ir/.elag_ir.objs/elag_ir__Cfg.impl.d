lib/ir/cfg.ml: Hashtbl Ir List Map Option Set String
