lib/ir/dominators.mli: Cfg Map
