lib/ir/ir.ml: Elag_isa Fmt List Printf
