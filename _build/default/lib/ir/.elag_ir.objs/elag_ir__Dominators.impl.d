lib/ir/dominators.ml: Cfg Ir List
