lib/ir/lower.mli: Elag_minic Ir
