(* Three-address intermediate representation over virtual registers,
   organized as a control-flow graph of basic blocks.

   The IR reuses the ISA's memory sizes, load specifiers and comparison
   conditions ({!Elag_isa.Insn}) so that classification decisions made
   here survive code generation unchanged. *)

module Insn = Elag_isa.Insn

type vreg = int

let pp_vreg ppf v = Fmt.pf ppf "v%d" v

type operand = Reg of vreg | Imm of int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Sll | Srl | Sra
  | Slt | Sle | Seq | Sne

type address =
  | Base of vreg * int        (* register + displacement *)
  | Base_index of vreg * vreg (* register + register *)
  | Abs of int                (* absolute *)
  | Abs_sym of string * int   (* data label + displacement, resolved at codegen *)

type inst =
  | Bin of binop * vreg * operand * operand
  | Mov of vreg * operand
  | Load of
      { spec : Insn.load_spec
      ; size : Insn.mem_size
      ; sign : Insn.signedness
      ; dst : vreg
      ; addr : address }
  | Store of { size : Insn.mem_size; src : operand; addr : address }
  | Call of { dst : vreg option; callee : string; args : operand list }
  | Global_addr of vreg * string  (* dst := address of data label *)
  | Slot_addr of vreg * int       (* dst := address of frame slot *)

type terminator =
  | Jmp of string
  | Br of
      { cond : Insn.cond
      ; src1 : operand
      ; src2 : operand
      ; ifso : string
      ; ifnot : string }
  | Ret of operand option

type block =
  { label : string
  ; mutable insts : inst list
  ; mutable term : terminator }

type slot = { slot_id : int; slot_size : int; slot_align : int }

type func =
  { name : string
  ; mutable params : vreg list
  ; mutable blocks : block list  (* entry block first *)
  ; mutable slots : slot list
  ; mutable next_vreg : int
  ; mutable next_label : int }

type data = { data_label : string; data_align : int; data_init : Elag_isa.Layout.init }

type program =
  { data : data list
  ; funcs : func list }

(* The IR binop set mirrors the ISA ALU set one-for-one; this mapping
   lets the constant folder reuse the emulator's 32-bit semantics. *)
let alu_of_binop = function
  | Add -> Insn.Add | Sub -> Insn.Sub | Mul -> Insn.Mul | Div -> Insn.Div
  | Rem -> Insn.Rem | And -> Insn.And | Or -> Insn.Or | Xor -> Insn.Xor
  | Sll -> Insn.Sll | Srl -> Insn.Srl | Sra -> Insn.Sra
  | Slt -> Insn.Slt | Sle -> Insn.Sle | Seq -> Insn.Seq | Sne -> Insn.Sne

(* --- constructors --------------------------------------------------- *)

let fresh_vreg f =
  let v = f.next_vreg in
  f.next_vreg <- f.next_vreg + 1;
  v

let fresh_label f prefix =
  let n = f.next_label in
  f.next_label <- f.next_label + 1;
  Printf.sprintf "%s.%s%d" f.name prefix n

let add_slot f ~size ~align =
  let slot_id = List.length f.slots in
  f.slots <- f.slots @ [ { slot_id; slot_size = size; slot_align = align } ];
  slot_id

let entry_block f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Ir.entry_block: empty function"

let find_block f label =
  match List.find_opt (fun b -> b.label = label) f.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.find_block: %s not in %s" label f.name)

(* --- uses and defs --------------------------------------------------- *)

let operand_vregs = function Reg v -> [ v ] | Imm _ -> []

let address_vregs = function
  | Base (b, _) -> [ b ]
  | Base_index (b, i) -> [ b; i ]
  | Abs _ | Abs_sym _ -> []

let inst_uses = function
  | Bin (_, _, a, b) -> operand_vregs a @ operand_vregs b
  | Mov (_, a) -> operand_vregs a
  | Load { addr; _ } -> address_vregs addr
  | Store { src; addr; _ } -> operand_vregs src @ address_vregs addr
  | Call { args; _ } -> List.concat_map operand_vregs args
  | Global_addr _ | Slot_addr _ -> []

let inst_defs = function
  | Bin (_, d, _, _) | Mov (d, _) | Load { dst = d; _ }
  | Global_addr (d, _) | Slot_addr (d, _) -> [ d ]
  | Call { dst = Some d; _ } -> [ d ]
  | Call { dst = None; _ } | Store _ -> []

let term_uses = function
  | Jmp _ -> []
  | Br { src1; src2; _ } -> operand_vregs src1 @ operand_vregs src2
  | Ret (Some op) -> operand_vregs op
  | Ret None -> []

let successors = function
  | Jmp l -> [ l ]
  | Br { ifso; ifnot; _ } -> [ ifso; ifnot ]
  | Ret _ -> []

(* Substitute virtual registers in operand (use) positions. *)
let map_operand subst = function
  | Reg v -> subst v
  | Imm _ as op -> op

let map_address subst_reg = function
  | Base (b, d) -> Base (subst_reg b, d)
  | Base_index (b, i) -> Base_index (subst_reg b, subst_reg i)
  | (Abs _ | Abs_sym _) as a -> a

let map_inst_uses ~operand ~reg = function
  | Bin (op, d, a, b) -> Bin (op, d, map_operand operand a, map_operand operand b)
  | Mov (d, a) -> Mov (d, map_operand operand a)
  | Load l -> Load { l with addr = map_address reg l.addr }
  | Store s ->
    Store { s with src = map_operand operand s.src; addr = map_address reg s.addr }
  | Call c -> Call { c with args = List.map (map_operand operand) c.args }
  | (Global_addr _ | Slot_addr _) as i -> i

let map_term_uses ~operand = function
  | Br b -> Br { b with src1 = map_operand operand b.src1; src2 = map_operand operand b.src2 }
  | Ret (Some op) -> Ret (Some (map_operand operand op))
  | (Jmp _ | Ret None) as t -> t

(* Loads and stores may touch memory; calls may too (and have other side
   effects).  Used by dead-code elimination. *)
let has_side_effect = function
  | Store _ | Call _ -> true
  | Bin _ | Mov _ | Load _ | Global_addr _ | Slot_addr _ -> false

(* --- pretty-printing -------------------------------------------------- *)

let pp_operand ppf = function
  | Reg v -> pp_vreg ppf v
  | Imm n -> Fmt.int ppf n

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Slt -> "slt" | Sle -> "sle" | Seq -> "seq" | Sne -> "sne"

let pp_address ppf = function
  | Base (b, 0) -> Fmt.pf ppf "[%a]" pp_vreg b
  | Base (b, d) -> Fmt.pf ppf "[%a%+d]" pp_vreg b d
  | Base_index (b, i) -> Fmt.pf ppf "[%a+%a]" pp_vreg b pp_vreg i
  | Abs a -> Fmt.pf ppf "[abs %d]" a
  | Abs_sym (l, 0) -> Fmt.pf ppf "[%s]" l
  | Abs_sym (l, d) -> Fmt.pf ppf "[%s%+d]" l d

let pp_inst ppf = function
  | Bin (op, d, a, b) ->
    Fmt.pf ppf "%a = %s %a, %a" pp_vreg d (binop_name op) pp_operand a pp_operand b
  | Mov (d, a) -> Fmt.pf ppf "%a = %a" pp_vreg d pp_operand a
  | Load { spec; size; dst; addr; _ } ->
    Fmt.pf ppf "%a = %a.%d %a" pp_vreg dst Insn.pp_load_spec spec
      (Insn.size_bytes size) pp_address addr
  | Store { size; src; addr } ->
    Fmt.pf ppf "st.%d %a, %a" (Insn.size_bytes size) pp_operand src pp_address addr
  | Call { dst; callee; args } ->
    (match dst with
    | Some d -> Fmt.pf ppf "%a = call %s(%a)" pp_vreg d callee
                  Fmt.(list ~sep:comma pp_operand) args
    | None -> Fmt.pf ppf "call %s(%a)" callee Fmt.(list ~sep:comma pp_operand) args)
  | Global_addr (d, l) -> Fmt.pf ppf "%a = &%s" pp_vreg d l
  | Slot_addr (d, s) -> Fmt.pf ppf "%a = &slot%d" pp_vreg d s

let pp_term ppf = function
  | Jmp l -> Fmt.pf ppf "jmp %s" l
  | Br { cond; src1; src2; ifso; ifnot } ->
    Fmt.pf ppf "br %a %a, %a -> %s | %s" Insn.pp_cond cond pp_operand src1
      pp_operand src2 ifso ifnot
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some op) -> Fmt.pf ppf "ret %a" pp_operand op

let pp_block ppf b =
  Fmt.pf ppf "%s:@." b.label;
  List.iter (fun i -> Fmt.pf ppf "  %a@." pp_inst i) b.insts;
  Fmt.pf ppf "  %a@." pp_term b.term

let pp_func ppf f =
  Fmt.pf ppf "func %s(%a):@." f.name Fmt.(list ~sep:comma pp_vreg) f.params;
  List.iter (pp_block ppf) f.blocks

let pp_program ppf p = List.iter (pp_func ppf) p.funcs
