(* Control-flow-graph utilities over {!Ir.func}: successor/predecessor
   maps and reverse-postorder numbering. *)

module SM = Map.Make (String)
module SS = Set.Make (String)

type t =
  { func : Ir.func
  ; blocks : Ir.block SM.t
  ; succs : string list SM.t
  ; preds : string list SM.t
  ; rpo : string list  (* reverse postorder from the entry block *)
  ; rpo_index : int SM.t }

let of_func (f : Ir.func) =
  let blocks =
    List.fold_left (fun m (b : Ir.block) -> SM.add b.label b m) SM.empty f.blocks
  in
  let succs =
    List.fold_left
      (fun m (b : Ir.block) -> SM.add b.label (Ir.successors b.term) m)
      SM.empty f.blocks
  in
  let preds =
    List.fold_left
      (fun m (b : Ir.block) ->
        List.fold_left
          (fun m s ->
            let existing = Option.value (SM.find_opt s m) ~default:[] in
            SM.add s (b.label :: existing) m)
          m (Ir.successors b.term))
      (List.fold_left (fun m (b : Ir.block) -> SM.add b.label [] m) SM.empty f.blocks)
      f.blocks
  in
  let visited = Hashtbl.create 16 in
  let postorder = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.replace visited label ();
      List.iter dfs (Option.value (SM.find_opt label succs) ~default:[]);
      postorder := label :: !postorder
    end
  in
  dfs (Ir.entry_block f).label;
  let rpo = !postorder in
  let rpo_index =
    List.fold_left
      (fun (m, i) l -> (SM.add l i m, i + 1))
      (SM.empty, 0) rpo
    |> fst
  in
  { func = f; blocks; succs; preds; rpo; rpo_index }

let block t label = SM.find label t.blocks

let succs t label = Option.value (SM.find_opt label t.succs) ~default:[]

let preds t label = Option.value (SM.find_opt label t.preds) ~default:[]

let reachable t label = SM.mem label t.rpo_index

(* Blocks never reached from the entry (dead after CFG simplification). *)
let unreachable_blocks t =
  List.filter (fun (b : Ir.block) -> not (reachable t b.label)) t.func.blocks
