(* SPEC-like workloads, first half: espresso, li, eqntott, compress,
   sc, cc1.  Each kernel mirrors the dominant load behaviour of the
   original benchmark (see DESIGN.md §4): strided array sweeps become
   predictable (PD) loads, pointer chasing becomes early-calculation
   (EC) loads, data-dependent indexing becomes neither (NT). *)

let espresso =
  Workload.make ~name:"008.espresso" ~suite:Workload.Spec
    ~description:
      "boolean-cube set operations: strided bitset sweeps plus \
       index-indirected accesses"
    {|
int ncubes;
int nwords;
int cubes[512 * 8];
int index_map[512];
int cover[512];

void init_cubes() {
  int i;
  int j;
  srand_set(7);
  ncubes = 512;
  nwords = 8;
  for (i = 0; i < ncubes; i++) {
    for (j = 0; j < nwords; j++) {
      cubes[i * 8 + j] = rand_next() * 977 + j;
    }
    index_map[i] = (i * 37 + 11) % ncubes;
    cover[i] = 0;
  }
}

int cube_distance(int a, int b) {
  int j;
  int d = 0;
  for (j = 0; j < nwords; j++) {
    int x = cubes[a * 8 + j] ^ cubes[b * 8 + j];
    while (x != 0) {
      d = d + (x & 1);
      x = (x >> 1) & 0x7FFFFFFF;
    }
  }
  return d;
}

int intersect_count() {
  int i;
  int j;
  int count = 0;
  for (i = 0; i < ncubes; i++) {
    int any = 0;
    for (j = 0; j < nwords; j++) {
      if ((cubes[i * 8 + j] & cubes[(i + 1) % ncubes * 8 + j]) != 0) {
        any = 1;
      }
    }
    count = count + any;
  }
  return count;
}

int sharp_pass() {
  int i;
  int sum = 0;
  for (i = 0; i < ncubes; i++) {
    int k = index_map[i];
    int v = cubes[k * 8];
    sum = sum + (v & 0xFF);
    cover[k] = cover[k] + 1;
  }
  return sum;
}

/* covers as linked lists of cube descriptors, as in real espresso */
struct cube_node {
  int index;        /* row in the cubes array */
  int weight;
  struct cube_node *next;
};

struct cube_node *cover_f;
struct cube_node *cover_r;

void build_covers() {
  int i;
  cover_f = (struct cube_node*)0;
  cover_r = (struct cube_node*)0;
  for (i = 0; i < ncubes; i++) {
    struct cube_node *n = (struct cube_node*)alloc_node(sizeof(struct cube_node));
    n->index = i;
    n->weight = (i * 13 + 5) % 97;
    if ((i & 3) == 0) {
      n->next = cover_r;
      cover_r = n;
    } else {
      n->next = cover_f;
      cover_f = n;
    }
  }
}

/* walk a cover chain summing cube words: the loads through [p] are
   the pointer-chasing early-calculation targets */
int cover_mass(struct cube_node *p) {
  int mass = 0;
  while (p) {
    int idx = p->index;
    mass = (mass + cubes[idx * 8] + p->weight) & 0xFFFFFF;
    p = p->next;
  }
  return mass;
}

/* does cube a contain cube b?  word-parallel check */
int contains(int a, int b) {
  int j;
  for (j = 0; j < nwords; j++) {
    int wa = cubes[a * 8 + j];
    int wb = cubes[b * 8 + j];
    if ((wa & wb) != wb) { return 0; }
  }
  return 1;
}

int containment_pass() {
  int removed = 0;
  struct cube_node *p = cover_f;
  while (p) {
    struct cube_node *q = p->next;
    if (q && contains(p->index, q->index)) {
      removed = removed + 1;
    }
    p = p->next;
  }
  return removed;
}

/* cofactor: project every cube onto a literal, writing a result row */
int cofactor_buf[8];

int cofactor_pass(int literal) {
  int i;
  int j;
  int nonzero = 0;
  int maskw = literal % 8;
  for (i = 0; i < ncubes; i++) {
    int live = 0;
    for (j = 0; j < nwords; j++) {
      int w = cubes[i * 8 + j];
      if (j == maskw) { w = w & ~(1 << (literal & 31)); }
      cofactor_buf[j] = w;
      if (w != 0) { live = 1; }
    }
    nonzero = nonzero + live;
  }
  return nonzero;
}

int main() {
  int pass;
  int total = 0;
  init_cubes();
  build_covers();
  for (pass = 0; pass < 14; pass++) {
    total = total + intersect_count();
    total = total + sharp_pass();
    total = total + cube_distance(pass % ncubes, (pass * 5 + 3) % ncubes);
    total = (total + cover_mass(cover_f)) % 1000000007;
    total = (total + cover_mass(cover_r)) % 1000000007;
    total = total + containment_pass();
    total = (total + cofactor_pass(pass * 7 + 3)) % 1000000007;
  }
  print_int(total);
  print_int(cover[100]);
  return 0;
}
|}

let li =
  Workload.make ~name:"022.li" ~suite:Workload.Spec
    ~description:
      "lisp-style cons-cell interpreter: car/cdr pointer chasing with a \
       symbol association list"
    {|
struct cell {
  int tag;        /* 0 = number, 1 = cons, 2 = symbol */
  int value;
  struct cell *car;
  struct cell *cdr;
};

struct cell *make_num(int v) {
  struct cell *c = (struct cell*)alloc_node(sizeof(struct cell));
  c->tag = 0;
  c->value = v;
  c->car = (struct cell*)0;
  c->cdr = (struct cell*)0;
  return c;
}

struct cell *make_cons(struct cell *a, struct cell *d) {
  struct cell *c = (struct cell*)alloc_node(sizeof(struct cell));
  c->tag = 1;
  c->value = 0;
  c->car = a;
  c->cdr = d;
  return c;
}

/* association list: (symbol-id . value) pairs as a chain */
struct binding {
  int symbol;
  int value;
  struct binding *next;
};

struct binding *env;

void bind_symbol(int sym, int v) {
  struct binding *b = (struct binding*)alloc_node(sizeof(struct binding));
  b->symbol = sym;
  b->value = v;
  b->next = env;
  env = b;
}

int lookup(int sym) {
  struct binding *b = env;
  while (b) {
    if (b->symbol == sym) {
      return b->value;
    }
    b = b->next;
  }
  return 0;
}

/* build a list of n numbers */
struct cell *build_list(int n, int seed) {
  struct cell *head = (struct cell*)0;
  int i;
  for (i = 0; i < n; i++) {
    head = make_cons(make_num((seed * (i + 1)) % 1000), head);
  }
  return head;
}

int sum_list(struct cell *p) {
  int s = 0;
  while (p) {
    s = s + p->car->value;
    p = p->cdr;
  }
  return s;
}

struct cell *map_scale(struct cell *p, int k) {
  struct cell *out = (struct cell*)0;
  while (p) {
    out = make_cons(make_num(p->car->value * k & 4095), out);
    p = p->cdr;
  }
  return out;
}

/* reverse a list destructively (classic lisp primitive) */
struct cell *nreverse(struct cell *p) {
  struct cell *prev = (struct cell*)0;
  while (p) {
    struct cell *nx = p->cdr;
    p->cdr = prev;
    prev = p;
    p = nx;
  }
  return prev;
}

/* zip two lists into pairs, consing heavily */
struct cell *pair_up(struct cell *a, struct cell *b) {
  struct cell *out = (struct cell*)0;
  while (a && b) {
    out = make_cons(make_cons(a->car, b->car), out);
    a = a->cdr;
    b = b->cdr;
  }
  return out;
}

int tree_weight(struct cell *p, int depth) {
  int w = 0;
  while (p && depth > 0) {
    if (p->tag == 1 && p->car) {
      if (p->car->tag == 1) {
        w = w + tree_weight(p->car, depth - 1);
      } else {
        w = (w + p->car->value) & 0xFFFFFF;
      }
    }
    p = p->cdr;
  }
  return w;
}

int main() {
  int round;
  int total = 0;
  int i;
  env = (struct binding*)0;
  for (i = 0; i < 64; i++) {
    bind_symbol(i, i * i);
  }
  for (round = 0; round < 30; round++) {
    struct cell *l = build_list(300, round + 3);
    struct cell *m = map_scale(l, 7);
    struct cell *z = pair_up(l, m);
    total = total + sum_list(m) % 10007;
    total = total + lookup(round % 64);
    total = (total + tree_weight(z, 3)) % 1000000007;
    m = nreverse(m);
    total = total + sum_list(m) % 10007;
  }
  print_int(total);
  return 0;
}
|}

let eqntott =
  Workload.make ~name:"023.eqntott" ~suite:Workload.Spec
    ~description:
      "truth-table comparison sort: dense strided sweeps over a 2-D \
       table (almost every load predictable)"
    {|
int nterms;
int width;
int table[256 * 32];
int perm[256];

void init_table() {
  int i;
  int j;
  srand_set(13);
  nterms = 256;
  width = 32;
  for (i = 0; i < nterms; i++) {
    for (j = 0; j < width; j++) {
      /* long shared prefixes force deep sequential comparison */
      if (j < 24) {
        table[i * 32 + j] = j & 3;
      } else {
        table[i * 32 + j] = rand_next() & 3;
      }
    }
    perm[i] = i;
  }
}

int cmp_terms(int a, int b) {
  int j;
  for (j = 0; j < width; j++) {
    int x = table[a * 32 + j];
    int y = table[b * 32 + j];
    if (x < y) { return 0 - 1; }
    if (x > y) { return 1; }
  }
  return 0;
}

void sort_terms() {
  /* insertion sort over the permutation array */
  int i;
  for (i = 1; i < nterms; i++) {
    int key = perm[i];
    int j = i - 1;
    while (j >= 0 && cmp_terms(perm[j], key) > 0) {
      perm[j + 1] = perm[j];
      j = j - 1;
    }
    perm[j + 1] = key;
  }
}

int count_distinct() {
  int i;
  int distinct = 1;
  for (i = 1; i < nterms; i++) {
    if (cmp_terms(perm[i - 1], perm[i]) != 0) {
      distinct = distinct + 1;
    }
  }
  return distinct;
}

int inputs[32];

/* evaluate every term against an input vector: long strided sweeps */
int eval_terms() {
  int i;
  int j;
  int ones = 0;
  for (i = 0; i < nterms; i++) {
    int match = 1;
    for (j = 0; j < width; j++) {
      int cell = table[i * 32 + j];
      int v = inputs[j];
      if (cell == 1 && v != 1) { match = 0; }
      if (cell == 0 && v != 0) { match = 0; }
    }
    ones = ones + match;
  }
  return ones;
}

/* merge adjacent equal-prefix terms, rewriting the table in place */
int merge_pass() {
  int i;
  int j;
  int merged = 0;
  for (i = 0; i + 1 < nterms; i++) {
    int same = 1;
    for (j = 0; j < width - 4; j++) {
      if (table[perm[i] * 32 + j] != table[perm[i + 1] * 32 + j]) {
        same = 0;
        break;
      }
    }
    if (same) {
      for (j = width - 4; j < width; j++) {
        table[perm[i + 1] * 32 + j] = table[perm[i] * 32 + j] | 2;
      }
      merged = merged + 1;
    }
  }
  return merged;
}

/* follow permutation cycles: serial index chains perm[perm[...]] —
   each load's address depends on the previous loaded value */
int cycle_lengths() {
  int seen[256];
  int i;
  int check = 0;
  for (i = 0; i < nterms; i++) { seen[i] = 0; }
  for (i = 0; i < nterms; i++) {
    if (seen[i] == 0) {
      int j = i;
      int len = 0;
      while (seen[j] == 0) {
        seen[j] = 1;
        j = perm[j];
        len = len + 1;
      }
      check = (check * 31 + len) % 65521;
    }
  }
  return check;
}

int main() {
  int check = 0;
  int i;
  int v;
  init_table();
  sort_terms();
  check = count_distinct();
  for (i = 0; i < nterms; i++) {
    check = (check + perm[i] * (i + 1)) % 65521;
  }
  srand_set(41);
  for (v = 0; v < 24; v++) {
    for (i = 0; i < 32; i++) { inputs[i] = rand_next() & 1; }
    check = (check + eval_terms()) % 65521;
  }
  check = (check + merge_pass()) % 65521;
  for (v = 0; v < 8; v++) {
    check = (check + cycle_lengths()) % 65521;
  }
  print_int(check);
  return 0;
}
|}

let compress92 =
  Workload.make ~name:"026.compress" ~suite:Workload.Spec
    ~description:
      "LZW compression: byte-stream sweeps (predictable) and \
       hash-table probes (not predictable)"
    {|
int HSIZE;
char input[16384];
int htab[5003];
int codetab[5003];

void make_input(int n) {
  int i;
  srand_set(5);
  for (i = 0; i < n; i++) {
    /* skewed distribution compresses well */
    int r = rand_next();
    if ((r & 7) < 5) {
      input[i] = 'a' + (r % 4);
    } else {
      input[i] = 'a' + (r % 26);
    }
  }
}

int compress_once(int n) {
  int i;
  int free_code = 257;
  int prefix;
  int out_count = 0;
  int out_check = 0;
  HSIZE = 5003;
  for (i = 0; i < HSIZE; i++) {
    htab[i] = 0 - 1;
    codetab[i] = 0;
  }
  prefix = input[0];
  for (i = 1; i < n; i++) {
    int c = input[i];
    int key = (c << 16) + prefix;
    int h = ((c << 8) ^ prefix) % HSIZE;
    int disp = 1 + (key % 97);
    int found = 0 - 1;
    while (htab[h] != (0 - 1)) {
      if (htab[h] == key) {
        found = codetab[h];
        break;
      }
      h = h + disp;
      if (h >= HSIZE) { h = h - HSIZE; }
    }
    if (found >= 0) {
      prefix = found;
    } else {
      out_count = out_count + 1;
      out_check = (out_check * 31 + prefix) & 0xFFFFFF;
      if (free_code < 3300) {
        htab[h] = key;
        codetab[h] = free_code;
        free_code = free_code + 1;
      }
      prefix = c;
    }
  }
  return out_check + out_count;
}

/* code stream produced by a compression round, then decompressed *
 * via a parent-pointer dictionary walk (real LZW decode)          */
int out_codes[16384];
int n_codes;
int dict_prefix[4096];
int dict_char[4096];
char stack_buf[4096];

int compress_emit(int n) {
  int i;
  int free_code = 257;
  int prefix;
  HSIZE = 5003;
  n_codes = 0;
  for (i = 0; i < HSIZE; i++) { htab[i] = 0 - 1; codetab[i] = 0; }
  for (i = 0; i < 257; i++) { dict_prefix[i] = 0 - 1; dict_char[i] = i; }
  prefix = input[0];
  for (i = 1; i < n; i++) {
    int c = input[i];
    int key = (c << 16) + prefix;
    int h = ((c << 8) ^ prefix) % HSIZE;
    int disp = 1 + (key % 97);
    int found = 0 - 1;
    while (htab[h] != (0 - 1)) {
      if (htab[h] == key) { found = codetab[h]; break; }
      h = h + disp;
      if (h >= HSIZE) { h = h - HSIZE; }
    }
    if (found >= 0) {
      prefix = found;
    } else {
      out_codes[n_codes] = prefix;
      n_codes = n_codes + 1;
      if (free_code < 3300) {
        htab[h] = key;
        codetab[h] = free_code;
        dict_prefix[free_code] = prefix;
        dict_char[free_code] = c;
        free_code = free_code + 1;
      }
      prefix = c;
    }
  }
  out_codes[n_codes] = prefix;
  n_codes = n_codes + 1;
  return n_codes;
}

int decompress_check() {
  int i;
  int check = 0;
  for (i = 0; i < n_codes; i++) {
    int code = out_codes[i];
    int sp = 0;
    /* walk the parent chain: data-dependent, unpredictable loads */
    while (code >= 0 && sp < 4095) {
      stack_buf[sp] = dict_char[code];
      sp = sp + 1;
      code = dict_prefix[code];
    }
    while (sp > 0) {
      sp = sp - 1;
      check = (check * 31 + stack_buf[sp]) & 0xFFFFFF;
    }
  }
  return check;
}

int main() {
  int r;
  int total = 0;
  make_input(16384);
  for (r = 0; r < 8; r++) {
    total = (total + compress_once(16384)) % 1000000007;
  }
  compress_emit(16384);
  total = (total + decompress_check()) % 1000000007;
  print_int(total);
  return 0;
}
|}

let sc =
  Workload.make ~name:"072.sc" ~suite:Workload.Spec
    ~description:
      "spreadsheet recalculation: strided sweeps over the cell grid \
       plus dependency chains through linked cell lists"
    {|
struct cell {
  int value;
  int formula;     /* 0 = constant, 1 = sum of deps */
  struct cell *dep1;
  struct cell *dep2;
};

struct cell grid[48 * 48];

void init_grid() {
  int r;
  int c;
  srand_set(3);
  for (r = 0; r < 48; r++) {
    for (c = 0; c < 48; c++) {
      struct cell *p = &grid[r * 48 + c];
      p->value = rand_next() % 100;
      if (r > 0 && c > 0 && (rand_next() & 3) != 0) {
        p->formula = 1;
        p->dep1 = &grid[(r - 1) * 48 + c];
        p->dep2 = &grid[r * 48 + (c - 1)];
      } else {
        p->formula = 0;
        p->dep1 = (struct cell*)0;
        p->dep2 = (struct cell*)0;
      }
    }
  }
}

int recalc() {
  int r;
  int c;
  int changed = 0;
  for (r = 0; r < 48; r++) {
    for (c = 0; c < 48; c++) {
      struct cell *p = &grid[r * 48 + c];
      if (p->formula == 1) {
        int v = (p->dep1->value + p->dep2->value) & 0xFFFF;
        if (v != p->value) {
          p->value = v;
          changed = changed + 1;
        }
      }
    }
  }
  return changed;
}

int column_sum(int c) {
  int r;
  int s = 0;
  for (r = 0; r < 48; r++) {
    s = s + grid[r * 48 + c].value;
  }
  return s;
}

/* range functions over rectangular windows (strided with row jumps) */
int range_max(int r0, int c0, int r1, int c1) {
  int r;
  int c;
  int best = 0 - 2147483647;
  for (r = r0; r <= r1; r++) {
    for (c = c0; c <= c1; c++) {
      int v = grid[r * 48 + c].value;
      if (v > best) { best = v; }
    }
  }
  return best;
}

/* undo log: a chain of edit records, walked on rollback */
struct edit {
  struct cell *target;
  int old_value;
  struct edit *next;
};

struct edit *undo_log;

void record_edit(struct cell *p, int old_value) {
  struct edit *e = (struct edit*)alloc_node(sizeof(struct edit));
  e->target = p;
  e->old_value = old_value;
  e->next = undo_log;
  undo_log = e;
}

int rollback(int limit) {
  int n = 0;
  struct edit *e = undo_log;
  while (e && n < limit) {
    e->target->value = e->old_value;
    e = e->next;
    n = n + 1;
  }
  undo_log = e;
  return n;
}

void poke_cells(int seed) {
  int k;
  srand_set(seed);
  for (k = 0; k < 40; k++) {
    int r = rand_next() % 48;
    int c = rand_next() % 48;
    struct cell *p = &grid[r * 48 + c];
    record_edit(p, p->value);
    p->value = rand_next() % 100;
  }
}

int main() {
  int pass;
  int total = 0;
  init_grid();
  undo_log = (struct edit*)0;
  for (pass = 0; pass < 100; pass++) {
    total = total + recalc();
    total = (total + column_sum(pass % 48)) % 1000000007;
    total = (total + range_max(pass % 20, pass % 16, (pass % 20) + 20, (pass % 16) + 20))
            % 1000000007;
    poke_cells(pass + 7);
    if ((pass & 3) == 3) {
      total = total + rollback(100);
    }
  }
  print_int(total);
  return 0;
}
|}

let cc1 =
  Workload.make ~name:"085.cc1" ~suite:Workload.Spec
    ~description:
      "compiler front end: byte-stream tokenizer, AST construction, \
       and recursive tree walks over node pointers"
    {|
char src[8192];
int pos;

struct node {
  int kind;        /* 0 = leaf, 1 = add, 2 = mul */
  int value;
  struct node *left;
  struct node *right;
};

void make_source(int n) {
  int i;
  srand_set(11);
  /* pseudo-expression stream: digits and operators */
  for (i = 0; i < n; i++) {
    int r = rand_next() % 10;
    if (r < 6) {
      src[i] = '0' + (rand_next() % 10);
    } else if (r < 8) {
      src[i] = '+';
    } else {
      src[i] = '*';
    }
  }
  src[n - 1] = '0';
}

struct node *leaf(int v) {
  struct node *p = (struct node*)alloc_node(sizeof(struct node));
  p->kind = 0;
  p->value = v;
  p->left = (struct node*)0;
  p->right = (struct node*)0;
  return p;
}

struct node *binop(int kind, struct node *l, struct node *r) {
  struct node *p = (struct node*)alloc_node(sizeof(struct node));
  p->kind = kind;
  p->value = 0;
  p->left = l;
  p->right = r;
  return p;
}

/* parse a flat stream into a left-leaning tree */
struct node *parse(int n) {
  struct node *t;
  int c = src[pos];
  pos = pos + 1;
  t = leaf(c - '0');
  while (pos < n - 1) {
    int op = src[pos];
    if (op != '+' && op != '*') {
      pos = pos + 1;
      continue;
    }
    pos = pos + 1;
    if (pos >= n) { break; }
    c = src[pos];
    pos = pos + 1;
    if (c >= '0' && c <= '9') {
      t = binop(op == '+' ? 1 : 2, t, leaf(c - '0'));
    }
    if (pos >= n - 1) { break; }
  }
  return t;
}

int eval(struct node *t) {
  /* iterative walk with an explicit stack of pending nodes */
  struct node *stack[512];
  int sp = 0;
  int acc = 0;
  stack[sp] = t;
  sp = sp + 1;
  while (sp > 0) {
    struct node *p;
    sp = sp - 1;
    p = stack[sp];
    if (p->kind == 0) {
      acc = (acc + p->value) & 0xFFFFFF;
    } else {
      if (p->kind == 2) {
        acc = (acc * 3 + 1) & 0xFFFFFF;
      }
      if (sp < 510) {
        stack[sp] = p->left;
        sp = sp + 1;
        stack[sp] = p->right;
        sp = sp + 1;
      }
    }
  }
  return acc;
}

int count_kinds(struct node *t, int kind) {
  struct node *stack[512];
  int sp = 0;
  int n = 0;
  stack[sp] = t;
  sp = sp + 1;
  while (sp > 0) {
    struct node *p;
    sp = sp - 1;
    p = stack[sp];
    if (p->kind == kind) { n = n + 1; }
    if (p->kind != 0 && sp < 510) {
      stack[sp] = p->left;
      sp = sp + 1;
      stack[sp] = p->right;
      sp = sp + 1;
    }
  }
  return n;
}

/* symbol table with chained buckets, as in a real front end */
struct symbol {
  int name_hash;
  int refs;
  struct symbol *next;
};

struct symbol *sym_buckets[64];

struct symbol *intern(int name_hash) {
  int b = name_hash & 63;
  struct symbol *s = sym_buckets[b];
  while (s) {
    if (s->name_hash == name_hash) {
      s->refs = s->refs + 1;
      return s;
    }
    s = s->next;
  }
  s = (struct symbol*)alloc_node(sizeof(struct symbol));
  s->name_hash = name_hash;
  s->refs = 1;
  s->next = sym_buckets[b];
  sym_buckets[b] = s;
  return s;
}

/* constant-fold: rewrite mul-of-leaves bottom-up with an explicit stack */
int fold_constants(struct node *t) {
  struct node *stack[512];
  int sp = 0;
  int folded = 0;
  stack[sp] = t;
  sp = sp + 1;
  while (sp > 0) {
    struct node *p;
    sp = sp - 1;
    p = stack[sp];
    if (p->kind == 2 && p->left->kind == 0 && p->right->kind == 0) {
      p->kind = 0;
      p->value = (p->left->value * p->right->value) & 0xFFFFFF;
      folded = folded + 1;
    } else if (p->kind != 0 && sp < 510) {
      stack[sp] = p->left;
      sp = sp + 1;
      stack[sp] = p->right;
      sp = sp + 1;
    }
  }
  return folded;
}

int main() {
  int round;
  int total = 0;
  int b;
  for (b = 0; b < 64; b++) { sym_buckets[b] = (struct symbol*)0; }
  for (round = 0; round < 24; round++) {
    struct node *t;
    int i;
    make_source(2048 + round);
    pos = 0;
    t = parse(2048 + round);
    total = (total + eval(t)) % 1000000007;
    total = (total + count_kinds(t, 1) * 7) % 1000000007;
    total = (total + fold_constants(t)) % 1000000007;
    total = (total + eval(t)) % 1000000007;
    for (i = 0; i < 200; i++) {
      struct symbol *s = intern((round * 131 + i * 17) % 1024);
      total = (total + s->refs) % 1000000007;
    }
  }
  print_int(total);
  return 0;
}
|}
