(* A workload: a MiniC kernel with its expected output (self-check)
   and suite tag.  [source] already includes the runtime prelude. *)

type suite = Spec | Media

type t =
  { name : string
  ; suite : suite
  ; description : string
  ; source : string
  ; expected_output : string option }

let make ~name ~suite ~description ?expected_output body =
  { name
  ; suite
  ; description
  ; source = Runtime.with_prelude body
  ; expected_output }

let suite_name = function Spec -> "SPEC-like" | Media -> "MediaBench-like"
