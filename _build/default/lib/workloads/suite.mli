(** The full workload suites, in the order the paper's tables list
    them, with pinned expected outputs attached. *)

val spec : Workload.t list
(** The 12 SPEC92/95-like kernels (paper Table 2/3, Figure 5). *)

val media : Workload.t list
(** The 13 MediaBench-like kernels (paper Table 4). *)

val all : Workload.t list

val find : string -> Workload.t
(** By exact name; raises [Invalid_argument] if unknown. *)
