(** MiniC runtime prelude prepended to every workload: a bump
    allocator over the emulator-provided heap, a deterministic LCG,
    and [alloc_node], an allocator with irregular padding that models
    the scattered layouts real allocators produce (so pointer chasing
    is not secretly stride-predictable). *)

val prelude : string

val with_prelude : string -> string
