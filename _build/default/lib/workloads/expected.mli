(** Pinned emulator outputs per workload, regenerated whenever a
    kernel changes; {!Suite} attaches them so every consumer
    self-checks. *)

val table : (string * string) list

val find : string -> string option
