(* MiniC runtime prelude prepended to every workload: a bump allocator
   over the emulator-provided heap and a deterministic LCG.

   The emulator publishes the heap base in the reserved word at address
   4092 (Layout.heap_pointer_slot); [alloc] bootstraps from it on first
   use. *)

let prelude = {|
int __heap_ptr;
int __rand_state;

int alloc(int nbytes) {
  int p;
  if (__heap_ptr == 0) {
    __heap_ptr = *((int*)4092);
  }
  p = __heap_ptr;
  __heap_ptr = __heap_ptr + ((nbytes + 3) & (0 - 4));
  return p;
}

void srand_set(int seed) {
  __rand_state = seed;
}

int rand_next() {
  __rand_state = __rand_state * 1103515245 + 12345;
  return (__rand_state >> 16) & 32767;
}

int __scramble_state;

/* Heap allocator with irregular padding, modelling the scattered
   layouts real allocators and garbage collectors produce: consecutive
   allocations are NOT at constant strides, so pointer-chasing loads
   are not secretly stride-predictable. */
int alloc_node(int nbytes) {
  __scramble_state = __scramble_state * 69069 + 1;
  int pad = ((__scramble_state >> 20) & 7) * 4;
  int p = alloc(nbytes + pad);
  return p + pad;
}
|}

let with_prelude source = prelude ^ "\n" ^ source
