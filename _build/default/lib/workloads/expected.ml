(* Generated expected outputs: emulator stdout per workload. *)
let table = [
  ("008.espresso", "290075826\n14\n");
  ("022.li", "4580071\n");
  ("023.eqntott", "57604\n");
  ("026.compress", "67359388\n");
  ("072.sc", "75126539\n");
  ("085.cc1", "502853919\n");
  ("124.m88ksim", "4954469\n461\n");
  ("129.compress", "4943728\n");
  ("130.li", "6069001\n");
  ("132.ijpeg", "601822604\n");
  ("134.perl", "32030409\n");
  ("147.vortex", "910147833\n");
  ("G.721 Decode", "135151938\n");
  ("G.721 Encode", "149906114\n");
  ("EPIC Decode", "23499975\n");
  ("EPIC Encode", "443813092\n");
  ("GSM Decode", "251036758\n");
  ("GSM Encode", "545412622\n");
  ("ADPCM Decode", "222211646\n");
  ("ADPCM Encode", "186098971\n");
  ("Ghostscript", "259738655\n");
  ("MPEG Decode", "9705273\n");
  ("PGP Decode", "358214307\n");
  ("PGP Encode", "359205251\n");
  ("RASTA", "186316708\n");
]

let find name = List.assoc_opt name table
