lib/workloads/workload.ml: Runtime
