lib/workloads/workload.mli:
