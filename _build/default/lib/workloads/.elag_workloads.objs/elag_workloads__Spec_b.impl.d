lib/workloads/spec_b.ml: Workload
