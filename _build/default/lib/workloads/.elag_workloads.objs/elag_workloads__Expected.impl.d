lib/workloads/expected.ml: List
