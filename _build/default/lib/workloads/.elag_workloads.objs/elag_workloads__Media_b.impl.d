lib/workloads/media_b.ml: Workload
