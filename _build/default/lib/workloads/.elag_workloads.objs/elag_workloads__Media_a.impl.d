lib/workloads/media_a.ml: Workload
