lib/workloads/runtime.mli:
