lib/workloads/spec_a.ml: Workload
