lib/workloads/expected.mli:
