lib/workloads/runtime.ml:
