lib/workloads/suite.ml: Expected List Media_a Media_b Spec_a Spec_b Workload
