(* MediaBench-like workloads, second half: MPEG decode, PGP
   encode/decode, Ghostscript, RASTA. *)

let mpeg_decode =
  Workload.make ~name:"MPEG Decode" ~suite:Workload.Media
    ~description:"video decoder inner loops: IDCT over 8x8 blocks and motion compensation copies"
    {|
int frame[96 * 96];
int reference[96 * 96];
int block[64];
int idct_tmp[64];

void init_frames(int seed) {
  int i;
  srand_set(seed);
  for (i = 0; i < 96 * 96; i++) {
    reference[i] = rand_next() % 256;
    frame[i] = 0;
  }
}

void fill_block(int seed) {
  int i;
  srand_set(seed);
  for (i = 0; i < 64; i++) {
    block[i] = (rand_next() % 64) - 32;
    if (i > 20) { block[i] = 0; } /* typical sparse high bands */
  }
}

/* integer IDCT approximation: two separable passes */
void idct() {
  int r;
  int c;
  int k;
  for (r = 0; r < 8; r++) {
    for (c = 0; c < 8; c++) {
      int acc = 0;
      for (k = 0; k < 8; k++) {
        int w = 8 - ((c * (2 * k + 1)) % 15);
        acc = acc + block[r * 8 + k] * w;
      }
      idct_tmp[r * 8 + c] = acc >> 3;
    }
  }
  for (c = 0; c < 8; c++) {
    for (r = 0; r < 8; r++) {
      int acc = 0;
      for (k = 0; k < 8; k++) {
        int w = 8 - ((r * (2 * k + 1)) % 15);
        acc = acc + idct_tmp[k * 8 + c] * w;
      }
      block[r * 8 + c] = acc >> 6;
    }
  }
}

/* motion compensation: copy a displaced 8x8 region plus residual */
int motion_comp(int bx, int by, int dx, int dy) {
  int r;
  int c;
  int check = 0;
  for (r = 0; r < 8; r++) {
    for (c = 0; c < 8; c++) {
      int sr = by * 8 + r + dy;
      int sc = bx * 8 + c + dx;
      int pred = reference[sr * 96 + sc];
      int v = pred + block[r * 8 + c];
      if (v < 0) { v = 0; }
      if (v > 255) { v = 255; }
      frame[(by * 8 + r) * 96 + bx * 8 + c] = v;
      check = (check + v) & 0xFFFFFF;
    }
  }
  return check;
}

/* per-macroblock decode records, as produced by the VLC parser in a
   real decoder */
struct macroblock {
  int bx;
  int by;
  int dx;
  int dy;
  int cbp;
  struct macroblock *next;
};

struct macroblock *mb_list;

void parse_picture(int pic) {
  int bx;
  int by;
  mb_list = (struct macroblock*)0;
  for (by = 10; by >= 1; by--) {
    for (bx = 10; bx >= 1; bx--) {
      struct macroblock *mb =
        (struct macroblock*)alloc_node(sizeof(struct macroblock));
      mb->bx = bx;
      mb->by = by;
      mb->dx = (pic % 3) - 1;
      mb->dy = (pic % 5) % 3 - 1;
      mb->cbp = pic * 121 + by * 11 + bx;
      mb->next = mb_list;
      mb_list = mb;
    }
  }
}

int main() {
  int pic;
  int total = 0;
  init_frames(3);
  for (pic = 0; pic < 12; pic++) {
    struct macroblock *mb;
    parse_picture(pic);
    mb = mb_list;
    while (mb) {
      fill_block(mb->cbp);
      idct();
      total = (total + motion_comp(mb->bx, mb->by, mb->dx, mb->dy)) % 1000000007;
      mb = mb->next;
    }
  }
  print_int(total);
  return 0;
}
|}

let pgp_core = {|
/* multi-precision integers as in real PGP: a descriptor struct with a
   pointer to heap-allocated 16-bit limbs */
struct mpi {
  int nlimbs;
  int *limbs;
};

struct mpi *mp_a;
struct mpi *mp_b;
struct mpi *mp_m;
struct mpi *mp_r;

struct mpi *mpi_new(int nlimbs) {
  struct mpi *m = (struct mpi*)alloc_node(sizeof(struct mpi));
  m->nlimbs = nlimbs;
  m->limbs = (int*)alloc_node(nlimbs * 4);
  return m;
}

void mp_mul() {
  int i;
  int j;
  int *r = mp_r->limbs;
  for (i = 0; i < 64; i++) { r[i] = 0; }
  for (i = 0; i < 32; i++) {
    int carry = 0;
    int ai = mp_a->limbs[i];
    int *b = mp_b->limbs;
    for (j = 0; j < 32; j++) {
      int t = r[i + j] + ai * b[j] + carry;
      r[i + j] = t & 0xFFFF;
      carry = (t >> 16) & 0xFFFF;
    }
    r[i + 32] = carry;
  }
}

/* pseudo-Montgomery reduction: fold the high half using m */
int mp_reduce() {
  int i;
  int j;
  int check = 0;
  int *r = mp_r->limbs;
  for (i = 63; i >= 32; i--) {
    int q = r[i] & 0xFF;
    int carry = 0;
    int *m = mp_m->limbs;
    for (j = 0; j < 32; j++) {
      int idx = i - 32 + j;
      int t = r[idx] + q * m[j] + carry;
      r[idx] = t & 0xFFFF;
      carry = (t >> 16) & 0xFFFF;
    }
    check = (check * 31 + r[i - 32]) & 0xFFFFFF;
  }
  return check;
}

void load_operands(int seed) {
  int i;
  srand_set(seed);
  if (mp_a == (struct mpi*)0) {
    mp_a = mpi_new(32);
    mp_b = mpi_new(32);
    mp_m = mpi_new(32);
    mp_r = mpi_new(64);
  }
  for (i = 0; i < 32; i++) {
    mp_a->limbs[i] = rand_next() & 0xFFFF;
    mp_b->limbs[i] = rand_next() & 0xFFFF;
    mp_m->limbs[i] = (rand_next() & 0xFFFF) | 1;
  }
}
|}

let pgp_encode =
  Workload.make ~name:"PGP Encode" ~suite:Workload.Media
    ~description:"public-key encryption inner loops: multi-precision multiply and reduce"
    (pgp_core
    ^ {|
int main() {
  int r;
  int total = 0;
  for (r = 0; r < 48; r++) {
    load_operands(r + 71);
    mp_mul();
    total = (total + mp_reduce()) % 1000000007;
  }
  print_int(total);
  return 0;
}
|})

let pgp_decode =
  Workload.make ~name:"PGP Decode" ~suite:Workload.Media
    ~description:"public-key decryption inner loops: repeated square-and-reduce ladder"
    (pgp_core
    ^ {|
int main() {
  int r;
  int total = 0;
  load_operands(83);
  for (r = 0; r < 48; r++) {
    int i;
    mp_mul();
    total = (total + mp_reduce()) % 1000000007;
    /* feed the low half back in as the next operand (square chain) */
    for (i = 0; i < 32; i++) {
      mp_a->limbs[i] = mp_r->limbs[i];
      mp_b->limbs[i] = mp_r->limbs[(i * 7 + 1) % 32];
    }
  }
  print_int(total);
  return 0;
}
|})

let ghostscript =
  Workload.make ~name:"Ghostscript" ~suite:Workload.Media
    ~description:"rasterizer: scanline polygon fill with an active-edge linked list"
    {|
struct edge {
  int y_top;
  int y_bot;
  int x_fixed;     /* 16.16 */
  int dx_fixed;
  struct edge *next;
};

char raster[128 * 128];
struct edge *edge_buckets[128];

void add_edge(int x0, int y0, int x1, int y1) {
  struct edge *e;
  if (y0 == y1) { return; }
  if (y0 > y1) {
    int t = y0; y0 = y1; y1 = t;
    t = x0; x0 = x1; x1 = t;
  }
  e = (struct edge*)alloc_node(sizeof(struct edge));
  e->y_top = y0;
  e->y_bot = y1;
  e->x_fixed = x0 << 16;
  e->dx_fixed = ((x1 - x0) << 16) / (y1 - y0);
  e->next = edge_buckets[y0];
  edge_buckets[y0] = e;
}

void make_scene(int seed) {
  int i;
  srand_set(seed);
  for (i = 0; i < 128; i++) { edge_buckets[i] = (struct edge*)0; }
  for (i = 0; i < 128 * 128; i++) { raster[i] = 0; }
  for (i = 0; i < 40; i++) {
    int x0 = rand_next() % 120;
    int y0 = rand_next() % 120;
    int w = 4 + rand_next() % 24;
    int h = 4 + rand_next() % 24;
    /* a triangle */
    add_edge(x0, y0, x0 + w, y0 + h);
    add_edge(x0 + w, y0 + h, x0, y0 + h);
    add_edge(x0, y0 + h, x0, y0);
  }
}

int fill() {
  struct edge *active = (struct edge*)0;
  int y;
  int filled = 0;
  for (y = 0; y < 128; y++) {
    struct edge *e;
    struct edge *prev;
    /* merge in edges starting at this scanline */
    e = edge_buckets[y];
    while (e) {
      struct edge *nx = e->next;
      e->next = active;
      active = e;
      e = nx;
    }
    /* remove finished edges */
    prev = (struct edge*)0;
    e = active;
    while (e) {
      if (e->y_bot <= y) {
        if (prev) { prev->next = e->next; } else { active = e->next; }
      } else {
        prev = e;
      }
      e = e->next;
    }
    /* paint spans between pairs (even-odd, unsorted approximation) */
    e = active;
    while (e) {
      int x = e->x_fixed >> 16;
      if (x >= 0 && x < 128) {
        raster[y * 128 + x] = 1;
        filled = filled + 1;
      }
      e->x_fixed = e->x_fixed + e->dx_fixed;
      e = e->next;
    }
  }
  return filled;
}

int checksum() {
  int i;
  int check = 0;
  for (i = 0; i < 128 * 128; i++) {
    check = (check * 3 + raster[i]) & 0xFFFFFF;
  }
  return check;
}

int main() {
  int r;
  int total = 0;
  for (r = 0; r < 30; r++) {
    make_scene(r + 91);
    total = (total + fill()) % 1000000007;
    total = (total + checksum()) % 1000000007;
  }
  print_int(total);
  return 0;
}
|}

let rasta =
  Workload.make ~name:"RASTA" ~suite:Workload.Media
    ~description:"speech-analysis filter bank: FIR/IIR cascades over frames"
    {|
int samples[4096];
int bands[16 * 256];

/* per-band filter descriptor, allocated like a real filter bank's
   channel state */
struct band_state {
  int c0;
  int c1;
  int c2;
  int c3;
  int s0;
  int s1;
  struct band_state *next;
};

struct band_state *band_list;

void make_bands() {
  int band;
  band_list = (struct band_state*)0;
  for (band = 15; band >= 0; band--) {
    struct band_state *b = (struct band_state*)alloc_node(sizeof(struct band_state));
    b->c0 = 3 + band;
    b->c1 = 7 - (band & 3);
    b->c2 = 2 + (band >> 2);
    b->c3 = 5;
    b->s0 = 0;
    b->s1 = 0;
    b->next = band_list;
    band_list = b;
  }
}

void make_speech(int seed) {
  int i;
  srand_set(seed);
  for (i = 0; i < 4096; i++) {
    samples[i] = (rand_next() % 2048) - 1024;
  }
}

/* 16-band filter bank: each band a 4-tap FIR followed by a 2-pole
   IIR, with coefficients and recursion state in the band's record */
int analyze() {
  int band = 0;
  int check = 0;
  struct band_state *b = band_list;
  while (b) {
    int i;
    b->s0 = 0;
    b->s1 = 0;
    for (i = 0; i < 256; i++) {
      int x0 = samples[i * 16 + (band & 15)];
      int x1 = samples[(i * 16 + band + 1) & 4095];
      int x2 = samples[(i * 16 + band + 2) & 4095];
      int x3 = samples[(i * 16 + band + 3) & 4095];
      int fir = (x0 * b->c0 + x1 * b->c1 + x2 * b->c2 + x3 * b->c3) >> 4;
      int y = fir + ((b->s0 * 27) >> 5) - ((b->s1 * 13) >> 6);
      b->s1 = b->s0;
      b->s0 = y;
      bands[band * 256 + i] = y;
    }
    band = band + 1;
    b = b->next;
  }
  for (band = 0; band < 16; band++) {
    int i;
    int energy = 0;
    for (i = 0; i < 256; i++) {
      int v = bands[band * 256 + i];
      energy = (energy + ((v * v) >> 8)) & 0xFFFFFF;
    }
    check = (check * 31 + energy) & 0xFFFFFF;
  }
  return check;
}

int main() {
  int r;
  int total = 0;
  make_bands();
  for (r = 0; r < 25; r++) {
    make_speech(r + 101);
    total = (total + analyze()) % 1000000007;
  }
  print_int(total);
  return 0;
}
|}
