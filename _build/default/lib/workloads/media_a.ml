(* MediaBench-like workloads, first half: ADPCM encode/decode, G.721
   encode/decode, GSM encode/decode, EPIC encode/decode.  Media kernels
   are dominated by linear array walks over sample buffers and constant
   coefficient tables, reproducing the suite's high fraction of
   predictable loads (paper Table 4). *)

let common_signal = {|
int signal[8192];

void make_signal(int n, int seed) {
  int i;
  int phase = 0;
  srand_set(seed);
  for (i = 0; i < n; i++) {
    phase = phase + 3 + (rand_next() % 5);
    /* triangle wave plus noise */
    int tri = phase % 256;
    if (tri > 128) { tri = 256 - tri; }
    signal[i] = tri * 24 - 1536 + (rand_next() % 64);
  }
}
|}

let adpcm_tables = {|
struct adpcm_state {
  int valprev;
  int index;
};

struct adpcm_state *enc_state;
struct adpcm_state *dec_state;

void init_states() {
  enc_state = (struct adpcm_state*)alloc_node(sizeof(struct adpcm_state));
  dec_state = (struct adpcm_state*)alloc_node(sizeof(struct adpcm_state));
  enc_state->valprev = 0;
  enc_state->index = 0;
  dec_state->valprev = 0;
  dec_state->index = 0;
}

int step_table[89] = {
  7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
  41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
  190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
  724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
  2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
  6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
  16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767 };
int index_table[16] = { -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8 };
|}

let adpcm_encode =
  Workload.make ~name:"ADPCM Encode" ~suite:Workload.Media
    ~description:"IMA ADPCM encoder over a synthetic 16-bit signal"
    (common_signal ^ adpcm_tables
    ^ {|
char out[8192];

int encode(struct adpcm_state *st, int n) {
  int i;
  int check = 0;
  st->valprev = 0;
  st->index = 0;
  for (i = 0; i < n; i++) {
    int valpred = st->valprev;
    int index = st->index;
    int val = signal[i];
    int step = step_table[index];
    int diff = val - valpred;
    int sign = 0;
    int delta;
    int vpdiff;
    if (diff < 0) { sign = 8; diff = 0 - diff; }
    delta = 0;
    vpdiff = step >> 3;
    if (diff >= step) { delta = 4; diff = diff - step; vpdiff = vpdiff + step; }
    step = step >> 1;
    if (diff >= step) { delta = delta + 2; diff = diff - step; vpdiff = vpdiff + step; }
    step = step >> 1;
    if (diff >= step) { delta = delta + 1; vpdiff = vpdiff + step; }
    if (sign != 0) { valpred = valpred - vpdiff; } else { valpred = valpred + vpdiff; }
    if (valpred > 32767) { valpred = 32767; }
    if (valpred < (0 - 32768)) { valpred = 0 - 32768; }
    delta = delta | sign;
    index = index + index_table[delta];
    if (index < 0) { index = 0; }
    if (index > 88) { index = 88; }
    out[i] = delta;
    st->valprev = valpred;
    st->index = index;
    check = (check * 31 + delta) & 0xFFFFFF;
  }
  return check;
}

int main() {
  int r;
  int total = 0;
  init_states();
  for (r = 0; r < 24; r++) {
    make_signal(8192, r + 1);
    total = (total + encode(enc_state, 8192)) % 1000000007;
  }
  print_int(total);
  return 0;
}
|})

let adpcm_decode =
  Workload.make ~name:"ADPCM Decode" ~suite:Workload.Media
    ~description:"IMA ADPCM decoder over an encoded synthetic stream"
    (common_signal ^ adpcm_tables
    ^ {|
char code[8192];
int decoded[8192];

void make_code(int n, int seed) {
  int i;
  srand_set(seed);
  for (i = 0; i < n; i++) {
    code[i] = rand_next() & 15;
  }
}

int decode(struct adpcm_state *st, int n) {
  int i;
  int check = 0;
  st->valprev = 0;
  st->index = 0;
  for (i = 0; i < n; i++) {
    int valpred = st->valprev;
    int index = st->index;
    int delta = code[i];
    int step = step_table[index];
    int vpdiff = step >> 3;
    if ((delta & 4) != 0) { vpdiff = vpdiff + step; }
    if ((delta & 2) != 0) { vpdiff = vpdiff + (step >> 1); }
    if ((delta & 1) != 0) { vpdiff = vpdiff + (step >> 2); }
    if ((delta & 8) != 0) { valpred = valpred - vpdiff; }
    else { valpred = valpred + vpdiff; }
    if (valpred > 32767) { valpred = 32767; }
    if (valpred < (0 - 32768)) { valpred = 0 - 32768; }
    index = index + index_table[delta];
    if (index < 0) { index = 0; }
    if (index > 88) { index = 88; }
    decoded[i] = valpred;
    st->valprev = valpred;
    st->index = index;
    check = (check + valpred) & 0xFFFFFF;
  }
  return check;
}

int main() {
  int r;
  int total = 0;
  init_states();
  for (r = 0; r < 24; r++) {
    make_code(8192, r + 2);
    total = (total + decode(dec_state, 8192)) % 1000000007;
  }
  print_int(total);
  return 0;
}
|})

let g721_core = {|
/* G.721-style predictor state, heap-allocated per channel as in a
   real multi-channel transcoder: accesses go through a loaded state
   pointer, the early-calculation case */
struct g72x_state {
  int b0; int b1; int b2; int b3; int b4; int b5;
  int d0; int d1; int d2; int d3; int d4; int d5;
};

struct channel {
  int id;
  struct g72x_state *state;
  struct channel *next;
};

struct channel *channels;

void make_channels(int n) {
  int i;
  channels = (struct channel*)0;
  for (i = 0; i < n; i++) {
    struct channel *c = (struct channel*)alloc_node(sizeof(struct channel));
    struct g72x_state *st = (struct g72x_state*)alloc_node(sizeof(struct g72x_state));
    st->b0 = 0; st->b1 = 0; st->b2 = 0; st->b3 = 0; st->b4 = 0; st->b5 = 0;
    st->d0 = 0; st->d1 = 0; st->d2 = 0; st->d3 = 0; st->d4 = 0; st->d5 = 0;
    c->id = i;
    c->state = st;
    c->next = channels;
    channels = c;
  }
}

int predict(struct g72x_state *s) {
  int acc = s->b0 * s->d0 + s->b1 * s->d1 + s->b2 * s->d2
          + s->b3 * s->d3 + s->b4 * s->d4 + s->b5 * s->d5;
  return acc >> 14;
}

int adapt(int b, int dq, int d) {
  if ((dq ^ d) >= 0) {
    return b + 128 - (b >> 8);
  }
  return b - 128 - (b >> 8);
}

void update(struct g72x_state *s, int dq) {
  s->b5 = adapt(s->b5, dq, s->d4);
  s->b4 = adapt(s->b4, dq, s->d3);
  s->b3 = adapt(s->b3, dq, s->d2);
  s->b2 = adapt(s->b2, dq, s->d1);
  s->b1 = adapt(s->b1, dq, s->d0);
  s->d5 = s->d4; s->d4 = s->d3; s->d3 = s->d2;
  s->d2 = s->d1; s->d1 = s->d0; s->d0 = dq;
}

int quantize(int d) {
  int a = d;
  int q = 0;
  if (a < 0) { a = 0 - a; }
  while (a > 15 && q < 7) {
    a = a >> 1;
    q = q + 1;
  }
  if (d < 0) { q = q | 8; }
  return q;
}

int dequantize(int q) {
  int m = q & 7;
  int v = 15 << m >> 1;
  if ((q & 8) != 0) { return 0 - v; }
  return v;
}
|}

let g721_encode =
  Workload.make ~name:"G.721 Encode" ~suite:Workload.Media
    ~description:"ADPCM transcoder with adaptive linear prediction (encode)"
    (common_signal ^ g721_core
    ^ {|
int main() {
  int r;
  int total = 0;
  make_channels(4);
  for (r = 0; r < 16; r++) {
    int i;
    int check = 0;
    struct channel *ch = channels;
    make_signal(8192, r + 5);
    /* round-robin the channels like a trunk transcoder */
    for (i = 0; i < 8192; i++) {
      struct g72x_state *st = ch->state;
      int se = predict(st);
      int d = (signal[i] >> 4) - se;
      int q = quantize(d);
      int dq = dequantize(q);
      update(st, dq);
      check = (check * 13 + q) & 0xFFFFFF;
      ch = ch->next;
      if (ch == (struct channel*)0) { ch = channels; }
    }
    total = (total + check) % 1000000007;
  }
  print_int(total);
  return 0;
}
|})

let g721_decode =
  Workload.make ~name:"G.721 Decode" ~suite:Workload.Media
    ~description:"ADPCM transcoder with adaptive linear prediction (decode)"
    (common_signal ^ g721_core
    ^ {|
char codes[8192];

int main() {
  int r;
  int total = 0;
  make_channels(4);
  for (r = 0; r < 16; r++) {
    int i;
    int check = 0;
    struct channel *ch = channels;
    srand_set(r + 9);
    for (i = 0; i < 8192; i++) { codes[i] = rand_next() & 15; }
    for (i = 0; i < 8192; i++) {
      struct g72x_state *st = ch->state;
      int se = predict(st);
      int dq = dequantize(codes[i]);
      int rec = se + dq;
      update(st, dq);
      check = (check + (rec & 0xFFFF)) & 0xFFFFFF;
      ch = ch->next;
      if (ch == (struct channel*)0) { ch = channels; }
    }
    total = (total + check) % 1000000007;
  }
  print_int(total);
  return 0;
}
|})

let gsm_core = {|
int lar[8];

/* per-frame descriptor records, chained as the codec's work list */
struct frame_desc {
  int start;
  int length;
  int gain;
  struct frame_desc *next;
};

struct frame_desc *frame_list;

void build_frame_list(int total_samples, int frame_len) {
  int start = 0;
  frame_list = (struct frame_desc*)0;
  while (start + frame_len <= total_samples) {
    struct frame_desc *f = (struct frame_desc*)alloc_node(sizeof(struct frame_desc));
    f->start = start;
    f->length = frame_len;
    f->gain = (start >> 5) & 31;
    f->next = frame_list;
    frame_list = f;
    start = start + frame_len;
  }
}

/* short-term analysis: lattice filter over the frame */
int st_filter(int *frame, int n) {
  int u[8];
  int i;
  int k;
  int check = 0;
  for (k = 0; k < 8; k++) { u[k] = 0; }
  for (i = 0; i < n; i++) {
    int din = frame[i];
    int sav = din;
    for (k = 0; k < 8; k++) {
      int rp = lar[k];
      int ui = u[k];
      u[k] = sav;
      sav = ui + ((rp * din) >> 15);
      din = din + ((rp * ui) >> 15);
    }
    check = (check + (din & 0xFFFF)) & 0xFFFFFF;
  }
  return check;
}

/* long-term prediction: search best lag by correlation */
int ltp_search(int *frame, int pos, int n) {
  int best = 0;
  int best_corr = 0 - 2147483647;
  int lag;
  for (lag = 40; lag <= 120; lag++) {
    int corr = 0;
    int j;
    if (pos - lag < 0) { break; }
    for (j = 0; j < 40; j++) {
      if (pos + j < n) {
        corr = corr + ((frame[pos + j] * frame[pos + j - lag]) >> 8);
      }
    }
    if (corr > best_corr) {
      best_corr = corr;
      best = lag;
    }
  }
  return best;
}
|}

let gsm_encode =
  Workload.make ~name:"GSM Encode" ~suite:Workload.Media
    ~description:"GSM 06.10-style full-rate encoder: lattice filtering plus long-term lag search"
    (common_signal ^ gsm_core
    ^ {|
int main() {
  int r;
  int total = 0;
  int k;
  for (k = 0; k < 8; k++) { lar[k] = 3000 - k * 350; }
  build_frame_list(8192 - 160, 160);
  for (r = 0; r < 6; r++) {
    struct frame_desc *f = frame_list;
    make_signal(8192, r + 21);
    while (f) {
      total = (total + st_filter(&signal[f->start], f->length) + f->gain)
              % 1000000007;
      total = (total + ltp_search(signal, f->start + 160, 8192)) % 1000000007;
      f = f->next;
    }
  }
  print_int(total);
  return 0;
}
|})

let gsm_decode =
  Workload.make ~name:"GSM Decode" ~suite:Workload.Media
    ~description:"GSM 06.10-style decoder: inverse lattice filtering over frames"
    (common_signal ^ gsm_core
    ^ {|
int main() {
  int r;
  int total = 0;
  int k;
  for (k = 0; k < 8; k++) { lar[k] = 2800 - k * 300; }
  build_frame_list(8192, 160);
  for (r = 0; r < 20; r++) {
    struct frame_desc *f = frame_list;
    make_signal(8192, r + 33);
    while (f) {
      total = (total + st_filter(&signal[f->start], f->length) + f->gain)
              % 1000000007;
      f = f->next;
    }
  }
  print_int(total);
  return 0;
}
|})

let epic_core = {|
int img[64 * 64];
int lowpass[64 * 64];
int highpass[64 * 64];

/* pyramid level descriptors, chained as in the EPIC code's level
   list: each holds the quantizer binsize and a running statistics
   accumulator */
struct pyr_level {
  int binsize;
  int count;
  int energy;
  struct pyr_level *next;
};

struct pyr_level *levels;

void make_levels(int n) {
  int i;
  levels = (struct pyr_level*)0;
  for (i = n - 1; i >= 0; i--) {
    struct pyr_level *l = (struct pyr_level*)alloc_node(sizeof(struct pyr_level));
    l->binsize = 2 + (i & 3);
    l->count = 0;
    l->energy = 0;
    l->next = levels;
    levels = l;
  }
}

void make_image(int seed) {
  int i;
  srand_set(seed);
  for (i = 0; i < 64 * 64; i++) {
    img[i] = (i % 64) * 2 + (i / 64) + (rand_next() % 16);
  }
}

/* separable 5-tap pyramid filter */
void filter_pass() {
  int r;
  int c;
  for (r = 0; r < 64; r++) {
    for (c = 2; c < 62; c++) {
      int acc = img[r * 64 + c - 2] * (0 - 1)
              + img[r * 64 + c - 1] * 4
              + img[r * 64 + c] * 10
              + img[r * 64 + c + 1] * 4
              + img[r * 64 + c + 2] * (0 - 1);
      lowpass[r * 64 + c] = acc >> 4;
      highpass[r * 64 + c] = img[r * 64 + c] - (acc >> 4);
    }
  }
}

int quantize_bands(struct pyr_level *l) {
  int i;
  int check = 0;
  int qstep = l->binsize;
  for (i = 0; i < 64 * 64; i++) {
    int v = highpass[i] / qstep;
    l->count = l->count + 1;
    l->energy = (l->energy + (v & 0xFF)) & 0xFFFFFF;
    check = (check * 31 + (v & 0xFF)) & 0xFFFFFF;
  }
  return check;
}
|}

let epic_encode =
  Workload.make ~name:"EPIC Encode" ~suite:Workload.Media
    ~description:"pyramid image coder: separable filtering and band quantization"
    (epic_core
    ^ {|
int main() {
  int r;
  int total = 0;
  make_levels(4);
  for (r = 0; r < 40; r++) {
    struct pyr_level *l = levels;
    make_image(r + 41);
    filter_pass();
    while (l) {
      total = (total + quantize_bands(l)) % 1000000007;
      l = l->next;
    }
  }
  print_int(total);
  return 0;
}
|})

let epic_decode =
  Workload.make ~name:"EPIC Decode" ~suite:Workload.Media
    ~description:"pyramid image decoder: band reconstruction sweeps"
    (epic_core
    ^ {|
int reconstruct() {
  int i;
  int check = 0;
  for (i = 0; i < 64 * 64; i++) {
    int v = lowpass[i] + highpass[i];
    img[i] = v;
    check = (check + (v & 0xFFFF)) & 0xFFFFFF;
  }
  return check;
}

int main() {
  int r;
  int total = 0;
  for (r = 0; r < 60; r++) {
    make_image(r + 55);
    filter_pass();
    total = (total + reconstruct()) % 1000000007;
  }
  print_int(total);
  return 0;
}
|})
