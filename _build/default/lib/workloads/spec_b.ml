(* SPEC-like workloads, second half: m88ksim, compress95, li95, ijpeg,
   perl, vortex. *)

let m88ksim =
  Workload.make ~name:"124.m88ksim" ~suite:Workload.Spec
    ~description:
      "CPU simulator: sequential instruction fetch (strided), register \
       file indexing, and simulated-memory indirection"
    {|
int imem[4096];
int dmem[4096];
int regs[32];

void assemble_program() {
  int i;
  srand_set(17);
  for (i = 0; i < 4096; i++) {
    /* opcode:3 rd:5 rs:5 rt:5 imm:12 */
    int opcode = rand_next() % 6;
    int rd = 1 + (rand_next() % 31);
    int rs = rand_next() % 32;
    int rt = rand_next() % 32;
    int imm = rand_next() % 4096;
    imem[i] = (opcode << 27) + (rd << 22) + (rs << 17) + (rt << 12) + imm;
    dmem[i] = rand_next();
  }
}

int run_sim(int steps) {
  int pc = 0;
  int count = 0;
  int i;
  for (i = 0; i < 32; i++) { regs[i] = i * 3; }
  while (count < steps) {
    int insn = imem[pc];
    int opcode = (insn >> 27) & 7;
    int rd = (insn >> 22) & 31;
    int rs = (insn >> 17) & 31;
    int rt = (insn >> 12) & 31;
    int imm = insn & 4095;
    if (opcode == 0) {
      regs[rd] = regs[rs] + regs[rt];
    } else if (opcode == 1) {
      regs[rd] = regs[rs] - regs[rt];
    } else if (opcode == 2) {
      regs[rd] = regs[rs] & regs[rt];
    } else if (opcode == 3) {
      regs[rd] = dmem[(regs[rs] + imm) & 4095];
    } else if (opcode == 4) {
      dmem[(regs[rs] + imm) & 4095] = regs[rt];
    } else {
      regs[rd] = imm << 4;
    }
    regs[0] = 0;
    pc = pc + 1;
    if (pc >= 4096) { pc = 0; }
    count = count + 1;
  }
  return regs[7] + regs[13] + regs[29];
}

/* simulated translation cache: chained buckets keyed by page */
struct tlb_entry {
  int page;
  int frame;
  int uses;
  struct tlb_entry *next;
};

struct tlb_entry *tlb[64];

int translate(int addr) {
  int page = (addr >> 6) & 4095;
  int b = page & 63;
  struct tlb_entry *e = tlb[b];
  while (e) {
    if (e->page == page) {
      e->uses = e->uses + 1;
      return (e->frame << 6) | (addr & 63);
    }
    e = e->next;
  }
  e = (struct tlb_entry*)alloc_node(sizeof(struct tlb_entry));
  e->page = page;
  e->frame = (page * 7 + 3) & 4095;
  e->uses = 1;
  e->next = tlb[b];
  tlb[b] = e;
  return (e->frame << 6) | (addr & 63);
}

/* second simulation loop with translation on memory operands */
int run_sim_mmu(int steps) {
  int pc = 0;
  int count = 0;
  int i;
  for (i = 0; i < 32; i++) { regs[i] = i * 5 + 1; }
  for (i = 0; i < 64; i++) { tlb[i] = (struct tlb_entry*)0; }
  while (count < steps) {
    int insn = imem[pc];
    int opcode = (insn >> 27) & 7;
    int rd = (insn >> 22) & 31;
    int rs = (insn >> 17) & 31;
    int rt = (insn >> 12) & 31;
    int imm = insn & 4095;
    if (opcode == 3) {
      regs[rd] = dmem[translate(regs[rs] + imm) & 4095];
    } else if (opcode == 4) {
      dmem[translate(regs[rs] + imm) & 4095] = regs[rt];
    } else if (opcode == 0) {
      regs[rd] = regs[rs] + regs[rt];
    } else {
      regs[rd] = (regs[rs] ^ imm) + opcode;
    }
    regs[0] = 0;
    pc = pc + 1;
    if (pc >= 4096) { pc = 0; }
    count = count + 1;
  }
  return regs[11] + regs[19];
}

/* opcode histogram over the whole image (strided sweep) */
int histogram_check() {
  int counts[8];
  int i;
  int check = 0;
  for (i = 0; i < 8; i++) { counts[i] = 0; }
  for (i = 0; i < 4096; i++) {
    counts[(imem[i] >> 27) & 7] = counts[(imem[i] >> 27) & 7] + 1;
  }
  for (i = 0; i < 8; i++) { check = check * 31 + counts[i]; }
  return check & 0xFFFFFF;
}

int main() {
  int total;
  assemble_program();
  total = run_sim(90000);
  total = total + run_sim_mmu(60000);
  total = (total + histogram_check()) % 1000000007;
  print_int(total);
  print_int(dmem[1234]);
  return 0;
}
|}

let compress95 =
  Workload.make ~name:"129.compress" ~suite:Workload.Spec
    ~description:
      "LZW compression over a larger, less compressible stream \
       (hash probes dominate misses)"
    {|
int HSIZE;
char input[24576];
int htab[9001];
int codetab[9001];

void make_input(int n) {
  int i;
  srand_set(23);
  for (i = 0; i < n; i++) {
    int r = rand_next();
    if ((r & 15) < 9) {
      input[i] = 'a' + (r % 8);
    } else {
      input[i] = ' ' + (r % 64);
    }
  }
}

int compress_once(int n) {
  int i;
  int free_code = 257;
  int prefix;
  int out_count = 0;
  int out_check = 0;
  HSIZE = 9001;
  for (i = 0; i < HSIZE; i++) {
    htab[i] = 0 - 1;
    codetab[i] = 0;
  }
  prefix = input[0];
  for (i = 1; i < n; i++) {
    int c = input[i];
    int key = (c << 16) + prefix;
    int h = ((c << 7) ^ (prefix * 3)) % HSIZE;
    int disp = 1 + (key % 193);
    int found = 0 - 1;
    while (htab[h] != (0 - 1)) {
      if (htab[h] == key) {
        found = codetab[h];
        break;
      }
      h = h + disp;
      if (h >= HSIZE) { h = h - HSIZE; }
    }
    if (found >= 0) {
      prefix = found;
    } else {
      out_count = out_count + 1;
      out_check = (out_check * 33 + prefix) % 999979;
      if (free_code < 6000) {
        htab[h] = key;
        codetab[h] = free_code;
        free_code = free_code + 1;
      }
      prefix = c;
    }
  }
  return out_check + out_count;
}

/* entropy estimate of the raw stream (byte-strided, predictable) */
int byte_entropy(int n) {
  int counts[256];
  int i;
  int check = 0;
  for (i = 0; i < 256; i++) { counts[i] = 0; }
  for (i = 0; i < n; i++) {
    counts[input[i]] = counts[input[i]] + 1;
  }
  for (i = 0; i < 256; i++) {
    int c = counts[i];
    while (c > 0) { check = check + 1; c = c >> 1; }
  }
  return check;
}

/* run-length pre-pass over the input (strided with data-dependent exits) */
int rle_scan(int n) {
  int i = 0;
  int runs = 0;
  while (i < n) {
    int c = input[i];
    int j = i + 1;
    while (j < n && input[j] == c) { j = j + 1; }
    runs = runs + 1;
    i = j;
  }
  return runs;
}

int main() {
  int r;
  int total = 0;
  make_input(24576);
  for (r = 0; r < 7; r++) {
    total = (total + compress_once(24576)) % 1000000007;
  }
  total = (total + byte_entropy(24576)) % 1000000007;
  total = (total + rle_scan(24576)) % 1000000007;
  print_int(total);
  return 0;
}
|}

let li95 =
  Workload.make ~name:"130.li" ~suite:Workload.Spec
    ~description:
      "lisp interpreter with a mark-and-sweep pass: cons chains, \
       property lists, and free-list management (pointer heavy)"
    {|
struct cell {
  int tag;
  int mark;
  int value;
  struct cell *car;
  struct cell *cdr;
};

struct cell *free_list;
int heap_cells;

struct cell *cell_pool;

void init_heap(int n) {
  int i;
  heap_cells = n;
  cell_pool = (struct cell*)alloc(n * sizeof(struct cell));
  free_list = (struct cell*)0;
  /* thread the free list in a shuffled order so cons chains are laid
     out irregularly, as after real allocation and collection churn */
  srand_set(97);
  for (i = 0; i < n; i++) {
    int j = (i * 2654435761 >> 7) % n;
    if (j < 0) { j = 0 - j; }
    struct cell *c = &cell_pool[j];
    if (c->tag == 0 && c->cdr == (struct cell*)0 && c != free_list) {
      c->mark = 0;
      c->value = 0;
      c->car = (struct cell*)0;
      c->cdr = free_list;
      free_list = c;
    }
  }
  for (i = 0; i < n; i++) {
    struct cell *c = &cell_pool[i];
    if (c->cdr == (struct cell*)0 && c != free_list) {
      c->tag = 0;
      c->mark = 0;
      c->value = 0;
      c->car = (struct cell*)0;
      c->cdr = free_list;
      free_list = c;
    }
  }
}

struct cell *cons(struct cell *a, struct cell *d) {
  struct cell *c = free_list;
  if (c == (struct cell*)0) {
    return (struct cell*)0;
  }
  free_list = c->cdr;
  c->tag = 1;
  c->car = a;
  c->cdr = d;
  return c;
}

struct cell *number(int v) {
  struct cell *c = cons((struct cell*)0, (struct cell*)0);
  if (c) {
    c->tag = 0;
    c->value = v;
  }
  return c;
}

void mark(struct cell *p) {
  while (p && p->mark == 0) {
    p->mark = 1;
    if (p->tag == 1) {
      mark(p->car);
      p = p->cdr;
    } else {
      break;
    }
  }
}

int sweep() {
  int i;
  int reclaimed = 0;
  free_list = (struct cell*)0;
  for (i = 0; i < heap_cells; i++) {
    struct cell *c = &cell_pool[i];
    if (c->mark == 0) {
      c->cdr = free_list;
      c->tag = 0;
      free_list = c;
      reclaimed = reclaimed + 1;
    } else {
      c->mark = 0;
    }
  }
  return reclaimed;
}

int list_sum(struct cell *p) {
  int s = 0;
  while (p) {
    if (p->car && p->car->tag == 0) {
      s = (s + p->car->value) & 0xFFFFFF;
    }
    p = p->cdr;
  }
  return s;
}

/* association lookup over a cons list of (key . value) pairs */
struct cell *assq(struct cell *alist, int key) {
  while (alist) {
    struct cell *pair = alist->car;
    if (pair && pair->tag == 1 && pair->car && pair->car->value == key) {
      return pair;
    }
    alist = alist->cdr;
  }
  return (struct cell*)0;
}

struct cell *acons(struct cell *alist, int key, int value) {
  struct cell *k = number(key);
  struct cell *v = number(value);
  struct cell *pair = cons(k, v);
  if (pair == (struct cell*)0) { return alist; }
  return cons(pair, alist);
}

int plist_phase(int round) {
  struct cell *alist = (struct cell*)0;
  int i;
  int check = 0;
  for (i = 0; i < 80; i++) {
    alist = acons(alist, (round * 7 + i * 3) % 61, i);
  }
  for (i = 0; i < 200; i++) {
    struct cell *hit = assq(alist, i % 61);
    if (hit && hit->cdr) {
      check = (check + hit->cdr->value) & 0xFFFFFF;
    }
  }
  mark(alist);
  return check;
}

int main() {
  int round;
  int total = 0;
  init_heap(4000);
  for (round = 0; round < 45; round++) {
    struct cell *keep = (struct cell*)0;
    int i;
    for (i = 0; i < 250; i++) {
      struct cell *n = number((round * 251 + i * 7) % 977);
      if (n) {
        keep = cons(n, keep);
      }
      /* garbage: dropped immediately */
      number(i);
    }
    total = (total + list_sum(keep)) % 1000000007;
    total = (total + plist_phase(round)) % 1000000007;
    mark(keep);
    total = (total + sweep()) % 1000000007;
  }
  print_int(total);
  return 0;
}
|}

let ijpeg =
  Workload.make ~name:"132.ijpeg" ~suite:Workload.Spec
    ~description:
      "JPEG-style block transforms: dense strided sweeps over 8x8 \
       blocks with quantization tables"
    {|
int image[64 * 64];
int block[64];
int coeffs[64];
int quant[64];

void init_image() {
  int i;
  srand_set(29);
  for (i = 0; i < 64 * 64; i++) {
    image[i] = rand_next() % 256;
  }
  for (i = 0; i < 64; i++) {
    quant[i] = 1 + (i / 8) + (i % 8);
  }
}

void load_block(int bx, int by) {
  int r;
  int c;
  for (r = 0; r < 8; r++) {
    for (c = 0; c < 8; c++) {
      block[r * 8 + c] = image[(by * 8 + r) * 64 + bx * 8 + c] - 128;
    }
  }
}

/* separable "DCT": butterfly-free integer approximation */
void transform_rows() {
  int r;
  int k;
  int c;
  for (r = 0; r < 8; r++) {
    for (k = 0; k < 8; k++) {
      int acc = 0;
      for (c = 0; c < 8; c++) {
        int w = ((k + 1) * (2 * c + 1)) % 16 - 8;
        acc = acc + block[r * 8 + c] * w;
      }
      coeffs[r * 8 + k] = acc >> 3;
    }
  }
}

void quantize() {
  int i;
  for (i = 0; i < 64; i++) {
    coeffs[i] = coeffs[i] / quant[i];
  }
}

int entropy_estimate() {
  int i;
  int bits = 0;
  for (i = 0; i < 64; i++) {
    int v = coeffs[i];
    if (v < 0) { v = 0 - v; }
    while (v > 0) {
      bits = bits + 1;
      v = v >> 1;
    }
  }
  return bits;
}

int zigzag[64] = {
  0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
  12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
  35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
  58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63 };

void transform_cols() {
  int c;
  int k;
  int r;
  for (c = 0; c < 8; c++) {
    for (k = 0; k < 8; k++) {
      int acc = 0;
      for (r = 0; r < 8; r++) {
        int w = ((k + 2) * (2 * r + 1)) % 16 - 8;
        acc = acc + coeffs[r * 8 + c] * w;
      }
      block[k * 8 + c] = acc >> 4;
    }
  }
}

/* zigzag reordering: table-indirected loads (not linear) */
int zigzag_check() {
  int i;
  int check = 0;
  for (i = 0; i < 64; i++) {
    check = (check * 17 + block[zigzag[i]]) & 0xFFFFFF;
  }
  return check;
}

int downsampled[32 * 32];

void downsample() {
  int r;
  int c;
  for (r = 0; r < 32; r++) {
    for (c = 0; c < 32; c++) {
      int s0 = image[(r * 2) * 64 + c * 2];
      int s1 = image[(r * 2) * 64 + c * 2 + 1];
      int s2 = image[(r * 2 + 1) * 64 + c * 2];
      int s3 = image[(r * 2 + 1) * 64 + c * 2 + 1];
      downsampled[r * 32 + c] = (s0 + s1 + s2 + s3) >> 2;
    }
  }
}

int downsample_check() {
  int i;
  int check = 0;
  for (i = 0; i < 32 * 32; i++) {
    check = (check + downsampled[i]) & 0xFFFFFF;
  }
  return check;
}

/* Huffman decode: bit-serial walks down a pointer-linked code trie.
   Every step loads a child pointer whose base register was itself
   just loaded — the serial, early-calculation-friendly load chains of
   real JPEG entropy decoding. */
struct huff_node {
  int leaf;              /* -1 = internal */
  struct huff_node *zero;
  struct huff_node *one;
};

struct huff_node *huff_root;
struct huff_node *huff_nodes[511];
char bitstream[8192];

void build_huffman() {
  int i;
  srand_set(47);
  for (i = 0; i < 511; i++) {
    struct huff_node *n = (struct huff_node*)alloc_node(sizeof(struct huff_node));
    n->leaf = (i >= 200) ? (i & 63) : (0 - 1);
    n->zero = (struct huff_node*)0;
    n->one = (struct huff_node*)0;
    huff_nodes[i] = n;
  }
  for (i = 0; i < 511; i++) {
    huff_nodes[i]->zero = huff_nodes[(i * 2 + 1) % 511];
    huff_nodes[i]->one = huff_nodes[(i * 2 + 2) % 511];
  }
  huff_root = huff_nodes[0];
  for (i = 0; i < 8192; i++) {
    bitstream[i] = rand_next() & 1;
  }
}

int huffman_decode(int nbits) {
  struct huff_node *node = huff_root;
  int i;
  int check = 0;
  for (i = 0; i < nbits; i++) {
    if (bitstream[i]) {
      node = node->one;
    } else {
      node = node->zero;
    }
    if (node->leaf >= 0) {
      check = (check * 31 + node->leaf) & 0xFFFFFF;
      node = huff_root;
    }
  }
  return check;
}

int main() {
  int bx;
  int by;
  int pass;
  int total = 0;
  init_image();
  build_huffman();
  for (pass = 0; pass < 8; pass++) {
    for (by = 0; by < 8; by++) {
      for (bx = 0; bx < 8; bx++) {
        load_block(bx, by);
        transform_rows();
        transform_cols();
        quantize();
        total = (total + entropy_estimate()) % 1000000007;
        total = (total + zigzag_check()) % 1000000007;
      }
    }
    downsample();
    total = (total + downsample_check()) % 1000000007;
    total = (total + huffman_decode(2048)) % 1000000007;
  }
  print_int(total);
  return 0;
}
|}

let perl =
  Workload.make ~name:"134.perl" ~suite:Workload.Spec
    ~description:
      "interpreter with chained hash tables: opcode dispatch over a \
       bytecode array plus hash lookups through collision chains"
    {|
struct entry {
  int key;
  int value;
  struct entry *next;
};

struct entry *buckets[256];
int prog[4096];

int hash_get(int key) {
  struct entry *e = buckets[key & 255];
  while (e) {
    if (e->key == key) {
      return e->value;
    }
    e = e->next;
  }
  return 0 - 1;
}

void hash_put(int key, int value) {
  struct entry *e = buckets[key & 255];
  while (e) {
    if (e->key == key) {
      e->value = value;
      return;
    }
    e = e->next;
  }
  e = (struct entry*)alloc_node(sizeof(struct entry));
  e->key = key;
  e->value = value;
  e->next = buckets[key & 255];
  buckets[key & 255] = e;
}

void assemble(int n) {
  int i;
  srand_set(31);
  for (i = 0; i < n; i++) {
    prog[i] = (rand_next() % 5 << 16) + (rand_next() % 2048);
  }
}

int interpret(int n) {
  int pc;
  int acc = 0;
  for (pc = 0; pc < n; pc++) {
    int insn = prog[pc];
    int op = (insn >> 16) & 7;
    int arg = insn & 65535;
    if (op == 0) {
      acc = (acc + arg) & 0xFFFFFF;
    } else if (op == 1) {
      hash_put(arg, acc);
    } else if (op == 2) {
      int v = hash_get(arg);
      if (v >= 0) {
        acc = (acc + v) & 0xFFFFFF;
      }
    } else if (op == 3) {
      acc = (acc * 17 + 5) & 0xFFFFFF;
    } else {
      int v = hash_get((arg * 7) % 2048);
      acc = (acc ^ (v + 1)) & 0xFFFFF;
    }
  }
  return acc;
}

char text[4096];

void make_text(int seed) {
  int i;
  srand_set(seed);
  for (i = 0; i < 4096; i++) {
    int r = rand_next() % 30;
    if (r < 26) { text[i] = 'a' + r; } else { text[i] = ' '; }
  }
}

/* substring scan: byte loads with data-dependent inner loop */
int count_pattern(char *pat, int patlen, int n) {
  int i;
  int found = 0;
  for (i = 0; i + patlen <= n; i++) {
    int j = 0;
    while (j < patlen && text[i + j] == pat[j]) { j = j + 1; }
    if (j == patlen) { found = found + 1; }
  }
  return found;
}

/* tiny stack machine over the same bytecode (value stack in memory) */
int stack_eval(int n) {
  int stack[64];
  int sp = 0;
  int pc;
  int check = 0;
  for (pc = 0; pc < n; pc++) {
    int insn = prog[pc];
    int op = (insn >> 16) & 7;
    int arg = insn & 65535;
    if (op == 0 || op == 3) {
      if (sp < 64) { stack[sp] = arg; sp = sp + 1; }
    } else if (sp >= 2) {
      int b = stack[sp - 1];
      int a = stack[sp - 2];
      sp = sp - 1;
      if (op == 1) { stack[sp - 1] = (a + b) & 0xFFFFFF; }
      else if (op == 2) { stack[sp - 1] = (a ^ b) & 0xFFFFF; }
      else { stack[sp - 1] = (a * 3 + b) & 0xFFFFFF; }
    }
    if (sp == 64) {
      int k;
      for (k = 0; k < 64; k++) { check = (check + stack[k]) & 0xFFFFFF; }
      sp = 0;
    }
  }
  while (sp > 0) { sp = sp - 1; check = (check + stack[sp]) & 0xFFFFFF; }
  return check;
}

char pat1[4] = "the";
char pat2[3] = "ab";

int main() {
  int round;
  int total = 0;
  int i;
  for (i = 0; i < 256; i++) {
    buckets[i] = (struct entry*)0;
  }
  assemble(4096);
  make_text(19);
  for (round = 0; round < 28; round++) {
    total = (total + interpret(4096)) % 1000000007;
    total = (total + stack_eval(4096)) % 1000000007;
    total = (total + count_pattern(pat1, 3, 4096)) % 1000000007;
    total = (total + count_pattern(pat2, 2, 4096)) % 1000000007;
  }
  print_int(total);
  return 0;
}
|}

let vortex =
  Workload.make ~name:"147.vortex" ~suite:Workload.Spec
    ~description:
      "object database: record allocation, index lookups and long \
       reference traversals (early-calculation heavy)"
    {|
struct obj {
  int id;
  int kind;
  int payload;
  struct obj *parent;
  struct obj *sibling;
  struct obj *link;
};

struct obj *objects[2048];
int nobjects;

struct obj *new_obj(int id, int kind) {
  struct obj *o = (struct obj*)alloc_node(sizeof(struct obj));
  o->id = id;
  o->kind = kind;
  o->payload = id * 2654435761;
  o->parent = (struct obj*)0;
  o->sibling = (struct obj*)0;
  o->link = (struct obj*)0;
  return o;
}

void build_db(int n) {
  int i;
  srand_set(37);
  nobjects = n;
  for (i = 0; i < n; i++) {
    objects[i] = new_obj(i, rand_next() % 5);
  }
  for (i = 1; i < n; i++) {
    objects[i]->parent = objects[rand_next() % i];
    objects[i]->sibling = objects[(i * 31 + 7) % n];
    objects[i]->link = objects[(i + 1) % n];
  }
  objects[0]->parent = objects[0];
  objects[0]->link = objects[1 % n];
}

int chase_parents(int start, int limit) {
  struct obj *o = objects[start];
  int depth = 0;
  int check = 0;
  while (o->id != 0 && depth < limit) {
    check = (check + o->payload) & 0xFFFFFF;
    o = o->parent;
    depth = depth + 1;
  }
  return check + depth;
}

int walk_links(int start, int steps) {
  struct obj *o = objects[start];
  int check = 0;
  int i;
  for (i = 0; i < steps; i++) {
    check = (check ^ o->payload) + o->kind;
    o = o->link;
  }
  return check & 0xFFFFFF;
}

int kind_census() {
  int counts[5];
  int i;
  int check = 0;
  for (i = 0; i < 5; i++) { counts[i] = 0; }
  for (i = 0; i < nobjects; i++) {
    counts[objects[i]->kind] = counts[objects[i]->kind] + 1;
  }
  for (i = 0; i < 5; i++) {
    check = check * 31 + counts[i];
  }
  return check & 0xFFFFFF;
}

/* binary search tree index over object payloads */
struct tree_node {
  int key;
  struct obj *object;
  struct tree_node *left;
  struct tree_node *right;
};

struct tree_node *index_root;

void index_insert(struct obj *o) {
  struct tree_node **slot = &index_root;
  while (*slot) {
    struct tree_node *n = *slot;
    if (o->payload < n->key) { slot = &n->left; }
    else { slot = &n->right; }
  }
  struct tree_node *n = (struct tree_node*)alloc_node(sizeof(struct tree_node));
  n->key = o->payload;
  n->object = o;
  n->left = (struct tree_node*)0;
  n->right = (struct tree_node*)0;
  *slot = n;
}

struct obj *index_lookup(int key) {
  struct tree_node *n = index_root;
  while (n) {
    if (key == n->key) { return n->object; }
    if (key < n->key) { n = n->left; } else { n = n->right; }
  }
  return (struct obj*)0;
}

void build_index(int n) {
  int i;
  index_root = (struct tree_node*)0;
  for (i = 0; i < n; i++) {
    index_insert(objects[(i * 37 + 13) % n]);
  }
}

/* a transaction: lookup, mutate payloads, relink a few siblings */
int transaction(int seed) {
  int k;
  int check = 0;
  srand_set(seed);
  for (k = 0; k < 20; k++) {
    int key = objects[rand_next() % nobjects]->payload;
    struct obj *o = index_lookup(key);
    if (o) {
      o->payload = (o->payload + 1) & 0xFFFFFF;
      o->sibling = objects[(o->id * 19 + k) % nobjects];
      check = (check + o->kind) & 0xFFFFFF;
    }
  }
  return check;
}

int main() {
  int round;
  int total = 0;
  build_db(2048);
  build_index(2048);
  for (round = 0; round < 40; round++) {
    total = (total + chase_parents((round * 97 + 5) % 2048, 400)) % 1000000007;
    total = (total + walk_links((round * 53 + 11) % 2048, 600)) % 1000000007;
    total = (total + kind_census()) % 1000000007;
    total = (total + transaction(round + 3)) % 1000000007;
  }
  print_int(total);
  return 0;
}
|}
