(* The full workload suites, in the order the paper's tables list
   them.  Expected emulator outputs (pinned in {!Expected}) are
   attached here so every consumer self-checks. *)

let with_expected (w : Workload.t) =
  match Expected.find w.Workload.name with
  | Some out -> { w with Workload.expected_output = Some out }
  | None -> w

let spec : Workload.t list =
  List.map with_expected
  [ Spec_a.espresso
  ; Spec_a.li
  ; Spec_a.eqntott
  ; Spec_a.compress92
  ; Spec_a.sc
  ; Spec_a.cc1
  ; Spec_b.m88ksim
  ; Spec_b.compress95
  ; Spec_b.li95
  ; Spec_b.ijpeg
  ; Spec_b.perl
  ; Spec_b.vortex ]

let media : Workload.t list =
  List.map with_expected
  [ Media_a.g721_decode
  ; Media_a.g721_encode
  ; Media_a.epic_decode
  ; Media_a.epic_encode
  ; Media_b.ghostscript
  ; Media_a.gsm_decode
  ; Media_a.gsm_encode
  ; Media_b.mpeg_decode
  ; Media_b.pgp_decode
  ; Media_b.pgp_encode
  ; Media_b.rasta
  ; Media_a.adpcm_decode
  ; Media_a.adpcm_encode ]

let all = spec @ media

let find name =
  match List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) all with
  | Some w -> w
  | None -> invalid_arg ("Suite.find: unknown workload " ^ name)
