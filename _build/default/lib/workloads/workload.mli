(** A workload: a MiniC kernel with its expected output (self-check)
    and suite tag.  [source] already includes the runtime prelude. *)

type suite = Spec | Media

type t =
  { name : string
  ; suite : suite
  ; description : string
  ; source : string
  ; expected_output : string option }

val make :
  name:string -> suite:suite -> description:string ->
  ?expected_output:string -> string -> t
(** Build a workload from a MiniC body (the runtime prelude is
    prepended). *)

val suite_name : suite -> string
