(* Compiler-directed load classification (the paper's Section 4).

   Every static load is assigned one of the three opcode specifiers:

   - [Ld_p] (predict): arithmetic-dependent loads in loops, and loads
     from absolute locations in acyclic code — their addresses are
     constants or strides that the table-based predictor captures;
   - [Ld_e] (early-calculate): the largest base-register group of
     load-dependent, register+offset loads — pointer-chasing chains
     whose base register is worth binding to R_addr;
   - [Ld_n] (neither): everything else, so that neither the prediction
     table nor R_addr is polluted.

   Cyclic code is analyzed per natural loop, inner loops first; a load
   is classified by its innermost enclosing loop.  The S_load set is
   the fixpoint closure of load destinations through arithmetic
   operations, exactly as in the paper. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Insn = Elag_isa.Insn

module VS = Set.Make (Int)

let with_spec spec = function
  | Ir.Load l -> Ir.Load { l with spec }
  | inst -> inst



(* Address registers of a load/store. *)
let base_vreg = function
  | Ir.Base (b, _) -> Some b
  | Ir.Base_index (b, _) -> Some b
  | Ir.Abs _ | Ir.Abs_sym _ -> None

let is_reg_offset = function Ir.Base _ -> true | _ -> false
let is_absolute = function Ir.Abs _ | Ir.Abs_sym _ -> true | _ -> false

(* Step 1 + 2 of the cyclic heuristic: destinations of loads, closed
   over arithmetic instructions.  Call results are treated as
   load-derived — the conservative choice for any call not removed by
   inlining — unless interprocedural summaries prove the callee
   returns pure arithmetic (the paper's future-work "more aggressive
   analysis"). *)
let s_load_of_insts ?summaries insts =
  let call_returns_loaded callee =
    match summaries with
    | Some t -> (Elag_opt.Purity.find t callee).Elag_opt.Purity.returns_loaded
    | None -> true
  in
  let s = ref VS.empty in
  List.iter
    (fun inst ->
      match inst with
      | Ir.Load { dst; _ } -> s := VS.add dst !s
      | Ir.Call { dst = Some d; callee; _ } ->
        if call_returns_loaded callee then s := VS.add d !s
      | _ -> ())
    insts;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun inst ->
        match inst with
        | Ir.Bin (_, dst, _, _) | Ir.Mov (dst, _) ->
          if
            (not (VS.mem dst !s))
            && List.exists (fun u -> VS.mem u !s) (Ir.inst_uses inst)
          then begin
            s := VS.add dst !s;
            changed := true
          end
        | _ -> ())
      insts
  done;
  !s

(* Classify the loads of one region.  [region_loads] are the loads to
   assign (those whose innermost context this region is);
   [s_load] decides load-dependence.  Returns per-load specs keyed by
   physical instruction identity order (we rebuild lists in place). *)
type decision = (Ir.inst * Insn.load_spec) list

let decide_cyclic ~s_load (region_loads : Ir.inst list) : decision =
  let load_dependent inst =
    match inst with
    | Ir.Load { addr; _ } ->
      List.exists (fun v -> VS.mem v s_load) (Ir.address_vregs addr)
    | _ -> false
  in
  let dependent, arithmetic = List.partition load_dependent region_loads in
  (* Group register+offset load-dependent loads by base register. *)
  let groups = Hashtbl.create 8 in
  List.iter
    (fun inst ->
      match inst with
      | Ir.Load { addr; _ } when is_reg_offset addr -> begin
        match base_vreg addr with
        | Some b ->
          Hashtbl.replace groups b (1 + Option.value (Hashtbl.find_opt groups b) ~default:0)
        | None -> ()
      end
      | _ -> ())
    dependent;
  let best =
    Hashtbl.fold
      (fun b n acc ->
        match acc with
        | Some (_, bn) when bn >= n -> acc
        | _ -> Some (b, n))
      groups None
  in
  let spec_of inst =
    match inst with
    | Ir.Load { addr; _ } -> begin
      match (best, base_vreg addr) with
      | Some (bb, _), Some b when b = bb && is_reg_offset addr -> Insn.Ld_e
      | _ -> Insn.Ld_n
    end
    | _ -> Insn.Ld_n
  in
  List.map (fun i -> (i, spec_of i)) dependent
  @ List.map (fun i -> (i, Insn.Ld_p)) arithmetic

let decide_acyclic (region_loads : Ir.inst list) : decision =
  let absolute, rest =
    List.partition
      (function Ir.Load { addr; _ } -> is_absolute addr | _ -> false)
      region_loads
  in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun inst ->
      match inst with
      | Ir.Load { addr; _ } when is_reg_offset addr -> begin
        match base_vreg addr with
        | Some b ->
          Hashtbl.replace groups b (1 + Option.value (Hashtbl.find_opt groups b) ~default:0)
        | None -> ()
      end
      | _ -> ())
    rest;
  let best =
    Hashtbl.fold
      (fun b n acc ->
        match acc with Some (_, bn) when bn >= n -> acc | _ -> Some (b, n))
      groups None
  in
  let spec_of inst =
    match inst with
    | Ir.Load { addr; _ } -> begin
      match (best, base_vreg addr) with
      | Some (bb, _), Some b when b = bb && is_reg_offset addr -> Insn.Ld_e
      | _ -> Insn.Ld_n
    end
    | _ -> Insn.Ld_n
  in
  List.map (fun i -> (i, Insn.Ld_p)) absolute
  @ List.map (fun i -> (i, spec_of i)) rest

(* Apply a decision in place by rebuilding instruction lists. *)
let apply_decision (f : Ir.func) (decision : decision) =
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.insts <-
        List.map
          (fun inst ->
            match List.find_opt (fun (i, _) -> i == inst) decision with
            | Some (_, spec) -> with_spec spec inst
            | None -> inst)
          b.Ir.insts)
    f.Ir.blocks

let loads_of_blocks cfg labels =
  List.concat_map
    (fun label ->
      List.filter
        (function Ir.Load _ -> true | _ -> false)
        (Cfg.block cfg label).Ir.insts)
    labels

let run_func ?summaries (f : Ir.func) =
  let cfg = Cfg.of_func f in
  let dom = Dominators.compute cfg in
  let loops = Loops.compute cfg dom in
  (* innermost loop per block: first match in the inner-first list *)
  let innermost label = Loops.innermost_containing loops label in
  let reachable_labels =
    List.filter_map
      (fun (b : Ir.block) -> if Cfg.reachable cfg b.Ir.label then Some b.Ir.label else None)
      f.Ir.blocks
  in
  let decisions = ref [] in
  (* Cyclic: per loop, inner-first.  A loop's own region is the set of
     its blocks whose innermost loop it is. *)
  List.iter
    (fun (loop : Loops.loop) ->
      let region_labels =
        List.filter
          (fun label ->
            Loops.mem loop label
            && (match innermost label with
               | Some l -> l.Loops.header = loop.Loops.header
               | None -> false))
          reachable_labels
      in
      let body_labels = List.filter (Loops.mem loop) reachable_labels in
      let body_insts =
        List.concat_map (fun l -> (Cfg.block cfg l).Ir.insts) body_labels
      in
      let s_load = s_load_of_insts ?summaries body_insts in
      let region_loads = loads_of_blocks cfg region_labels in
      decisions := decide_cyclic ~s_load region_loads @ !decisions)
    loops;
  (* Acyclic: blocks in no loop. *)
  let acyclic_labels =
    List.filter (fun label -> innermost label = None) reachable_labels
  in
  let acyclic_loads = loads_of_blocks cfg acyclic_labels in
  decisions := decide_acyclic acyclic_loads @ !decisions;
  apply_decision f !decisions

let run ?(interprocedural = true) (p : Ir.program) =
  let summaries = if interprocedural then Some (Elag_opt.Purity.analyze p) else None in
  List.iter (fun f -> run_func ?summaries f) p.Ir.funcs

(* Reset every load to the plain specifier (the no-compiler-support
   baseline). *)
let clear_func (f : Ir.func) =
  List.iter
    (fun (b : Ir.block) ->
      b.Ir.insts <- List.map (with_spec Insn.Ld_n) b.Ir.insts)
    f.Ir.blocks

let clear (p : Ir.program) = List.iter clear_func p.Ir.funcs
