lib/core/classify.mli: Elag_ir Elag_opt Int Set
