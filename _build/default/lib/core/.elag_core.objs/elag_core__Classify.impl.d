lib/core/classify.ml: Elag_ir Elag_isa Elag_opt Hashtbl Int List Option Set
