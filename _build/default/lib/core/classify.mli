(** Compiler-directed load classification — the paper's Section 4.

    Assigns one of the three opcode specifiers to every static load:

    - [Ld_p] (predict): arithmetic-dependent loads in loops, and loads
      from absolute locations in acyclic code — their addresses are
      constants or strides that the table-based predictor captures;
    - [Ld_e] (early-calculate): the largest base-register group of
      load-dependent, register+offset loads — pointer-chasing chains
      whose base register is worth binding to R_addr;
    - [Ld_n] (neither): everything else, so that neither the prediction
      table nor R_addr is polluted.

    Cyclic code is analyzed per natural loop, inner loops first; a load
    is classified by its innermost enclosing loop.  The S_load set is
    the fixpoint closure of load destinations through arithmetic
    operations, exactly as in the paper. *)

module Ir = Elag_ir.Ir

val s_load_of_insts :
  ?summaries:Elag_opt.Purity.t -> Ir.inst list -> Set.Make(Int).t
(** Steps 1–2 of the cyclic heuristic over a loop body's instructions:
    destinations of loads (and of calls, conservatively — unless the
    summaries prove the callee returns pure arithmetic), closed over
    arithmetic operations.  Exposed for testing. *)

val run_func : ?summaries:Elag_opt.Purity.t -> Ir.func -> unit
(** Classify every load of the function in place. *)

val run : ?interprocedural:bool -> Ir.program -> unit
(** Classify the whole program; [interprocedural] (default true)
    computes {!Elag_opt.Purity} summaries first. *)

val clear_func : Ir.func -> unit
(** Reset every load to [Ld_n] (the no-compiler-support baseline). *)

val clear : Ir.program -> unit
