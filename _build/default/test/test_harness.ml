(* Harness tests: profiling and profile-guided reclassification, the
   shared experiment context, and distribution accounting. *)

module Compile = Elag_harness.Compile
module Profile = Elag_harness.Profile
module Context = Elag_harness.Context
module Insn = Elag_isa.Insn
module Program = Elag_isa.Program
module Config = Elag_sim.Config
module Suite = Elag_workloads.Suite
module Workload = Elag_workloads.Workload
module Runtime = Elag_workloads.Runtime

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A program with one hot, perfectly strided load that the compiler
   misclassifies as ld_n (its base register is loaded from memory). *)
let misclassified_src =
  Runtime.with_prelude
    "int data[1024];\n\
     int base_holder;\n\
     int main() {\n\
     int i; int s = 0;\n\
     base_holder = (int)data;\n\
     for (i = 0; i < 1024; i++) {\n\
       int *p = (int*)base_holder;   /* load-dependent base */\n\
       s = s + p[i];\n\
     }\n\
     print_int(s);\n\
     return 0; }"

let test_profile_collects_rates () =
  let program = Compile.compile misclassified_src in
  let prof = Profile.collect program in
  check_bool "loads observed" true (prof.Profile.total_loads > 1000);
  (* at least one load should be highly predictable *)
  let has_predictable =
    List.exists
      (fun (pc, _) ->
        match Profile.rate prof pc with Some r -> r > 0.9 | None -> false)
      (Program.static_loads program)
  in
  check_bool "predictable load found" true has_predictable

let test_reclassify_upgrades_nt () =
  let program = Compile.compile misclassified_src in
  let prof = Profile.collect program in
  let reclassified = Profile.reclassify prof program in
  let count spec p =
    List.length
      (List.filter
         (fun (pc, _) ->
           Insn.load_spec (Program.insn p pc) = Some spec
           && Profile.executions prof pc > 100)
         (Program.static_loads p))
  in
  (* hot ld_n loads with high rates must become ld_p *)
  check_bool "hot ld_n loads reduced" true
    (count Insn.Ld_n reclassified < count Insn.Ld_n program
     || count Insn.Ld_n program = 0);
  (* nothing else is overruled: ld_e loads unchanged *)
  List.iter
    (fun (pc, insn) ->
      match Insn.load_spec insn with
      | Some Insn.Ld_e ->
        check_bool "ld_e untouched" true
          (Insn.load_spec (Program.insn reclassified pc) = Some Insn.Ld_e)
      | _ -> ())
    (Program.static_loads program)

let test_reclassify_threshold () =
  let program = Compile.compile misclassified_src in
  let prof = Profile.collect program in
  (* with an impossible threshold nothing changes *)
  let unchanged = Profile.reclassify ~threshold:1.1 prof program in
  List.iter
    (fun (pc, insn) ->
      check_bool "no change at threshold > 1" true
        (Insn.load_spec (Program.insn unchanged pc) = Insn.load_spec insn))
    (Program.static_loads program)

let test_context_caches () =
  let w = Suite.find "PGP Encode" in
  let e1 = Context.get w in
  let e2 = Context.get w in
  check_bool "entries cached" true (e1 == e2);
  let s1 = Context.simulate e1 Config.No_early in
  let s2 = Context.simulate e1 Config.No_early in
  check_bool "simulations cached" true (s1 == s2)

let test_distribution_sums () =
  let w = Suite.find "PGP Encode" in
  let e = Context.get w in
  let d = Context.distribution e in
  let close a b = abs_float (a -. b) < 0.01 in
  check_bool "static sums to 100" true
    (close (d.Context.static_nt +. d.Context.static_pd +. d.Context.static_ec) 100.);
  check_bool "dynamic sums to 100" true
    (close (d.Context.dynamic_nt +. d.Context.dynamic_pd +. d.Context.dynamic_ec) 100.);
  check_bool "dynamic loads counted" true (d.Context.total_dynamic_loads > 10_000)

let test_speedup_sane () =
  let w = Suite.find "PGP Encode" in
  let e = Context.get w in
  let s =
    Context.speedup e
      (Config.Dual { table_entries = 256; selection = Config.Compiler_directed })
  in
  check_bool "speedup in a sane band" true (s >= 0.9 && s <= 3.0)

let suite =
  [ Alcotest.test_case "profile rates" `Quick test_profile_collects_rates
  ; Alcotest.test_case "reclassify upgrades" `Quick test_reclassify_upgrades_nt
  ; Alcotest.test_case "reclassify threshold" `Quick test_reclassify_threshold
  ; Alcotest.test_case "context caching" `Quick test_context_caches
  ; Alcotest.test_case "distribution sums" `Quick test_distribution_sums
  ; Alcotest.test_case "speedup sane" `Quick test_speedup_sane ]
