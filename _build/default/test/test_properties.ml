(* Cross-cutting property and fuzz tests: the front end never crashes
   on arbitrary input, hardware models obey their invariants, and the
   timing model respects structural bounds on real workloads. *)

module Insn = Elag_isa.Insn
module Alu = Elag_isa.Alu
module Lexer = Elag_minic.Lexer
module Parser = Elag_minic.Parser
module Sema = Elag_minic.Sema
module Cache = Elag_sim.Cache
module Memory = Elag_sim.Memory
module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Compile = Elag_harness.Compile
module Suite = Elag_workloads.Suite
module Workload = Elag_workloads.Workload

let check_bool = Alcotest.(check bool)

(* --- front-end fuzz -------------------------------------------------- *)

(* Arbitrary strings over a C-ish alphabet: the lexer either tokenizes
   or raises its error; it never crashes or loops. *)
let lexer_never_crashes =
  let alphabet = "abz019 \n\t(){}[];,.+-*/%<>=!&|^~'\"\\#@?:" in
  let gen =
    QCheck.Gen.(
      string_size ~gen:(map (String.get alphabet) (int_bound (String.length alphabet - 1)))
        (int_bound 200))
  in
  QCheck.Test.make ~name:"lexer total on arbitrary input" ~count:1000
    (QCheck.make gen)
    (fun s ->
      match Lexer.tokenize s with
      | _ -> true
      | exception Lexer.Error _ -> true)

(* The parser is total over arbitrary strings too (wrapping lexical
   errors in its own exception). *)
let parser_never_crashes =
  let alphabet = "intcharvoidstructifwhilemain(){}[];,+-*=<> 09ab" in
  let gen =
    QCheck.Gen.(
      string_size ~gen:(map (String.get alphabet) (int_bound (String.length alphabet - 1)))
        (int_bound 150))
  in
  QCheck.Test.make ~name:"parser total on arbitrary input" ~count:1000
    (QCheck.make gen)
    (fun s ->
      match Parser.parse s with
      | _ -> true
      | exception Parser.Error _ -> true)

(* Sema is total over whatever parses. *)
let sema_never_crashes =
  let fragments =
    [| "int g;"; "char c;"; "struct s { int a; };"; "int f(int x) { return x; }"
     ; "int main() { return 0; }"; "int main() { int x; return *&x; }"
     ; "int main() { break; }"; "int main() { return y; }"
     ; "void v() { }"; "int a[4];"; "int main() { return f(1,2,3); }" |]
  in
  let gen =
    QCheck.Gen.(
      map (String.concat " ")
        (list_size (int_bound 6) (map (Array.get fragments) (int_bound (Array.length fragments - 1)))))
  in
  QCheck.Test.make ~name:"sema total on parsed input" ~count:500 (QCheck.make gen)
    (fun s ->
      match Sema.check (Parser.parse s) with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception Sema.Error _ -> true)

(* --- hardware-model invariants ---------------------------------------- *)

let cache_invariants =
  QCheck.Test.make ~name:"cache: access implies probe hit; probe is pure" ~count:500
    QCheck.(make Gen.(list_size (int_bound 64) (int_bound 1_000_000)))
    (fun addrs ->
      let c = Cache.create ~size_bytes:1024 ~line_bytes:64 () in
      List.for_all
        (fun addr ->
          ignore (Cache.access c addr);
          let p1 = Cache.probe c addr in
          let p2 = Cache.probe c addr in
          p1 && p1 = p2)
        addrs)

let memory_roundtrip =
  QCheck.Test.make ~name:"memory: word roundtrip through bytes" ~count:500
    QCheck.(make Gen.(pair (int_bound 4000) int))
    (fun (addr, v) ->
      let m = Memory.create ~size:8192 () in
      Memory.write_word m addr v;
      let w = Memory.read_word m addr in
      let b0 = Memory.read_byte_u m addr
      and b1 = Memory.read_byte_u m (addr + 1)
      and b2 = Memory.read_byte_u m (addr + 2)
      and b3 = Memory.read_byte_u m (addr + 3) in
      w = Alu.norm v
      && Alu.norm (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)) = w)

let alu_compare_consistency =
  QCheck.Test.make ~name:"alu: set-compare ops agree with eval_cond" ~count:500
    QCheck.(make Gen.(pair int int))
    (fun (a, b) ->
      (Alu.eval Insn.Slt a b = 1) = Alu.eval_cond Insn.Lt a b
      && (Alu.eval Insn.Sle a b = 1) = Alu.eval_cond Insn.Le a b
      && (Alu.eval Insn.Seq a b = 1) = Alu.eval_cond Insn.Eq a b
      && (Alu.eval Insn.Sne a b = 1) = Alu.eval_cond Insn.Ne a b)

(* --- timing-model structural bounds ------------------------------------ *)

let mechanisms =
  [ Config.No_early
  ; Config.Table_only { entries = 64; compiler_filtered = true }
  ; Config.Calc_only { bric_entries = 8 }
  ; Config.Dual { table_entries = 256; selection = Config.Compiler_directed }
  ; Config.Dual { table_entries = 256; selection = Config.Hardware_selected } ]

let test_pipeline_bounds () =
  let w = Suite.find "PGP Encode" in
  let program = Compile.compile w.Workload.source in
  List.iter
    (fun mech ->
      let cfg = Config.with_mechanism mech Config.default in
      let stats, output = Pipeline.simulate cfg program in
      let name = Config.mechanism_name mech in
      (* the machine cannot beat its issue width *)
      check_bool (name ^ ": cycles >= insns/width") true
        (stats.Pipeline.cycles * cfg.Config.issue_width >= stats.Pipeline.instructions);
      (* memory operations cannot beat the port count *)
      check_bool (name ^ ": cycles >= memops/ports") true
        (stats.Pipeline.cycles * cfg.Config.mem_ports
        >= stats.Pipeline.loads + stats.Pipeline.stores);
      (* successes never exceed attempts *)
      check_bool (name ^ ": table successes bounded") true
        (stats.Pipeline.table_successes <= stats.Pipeline.table_attempts);
      check_bool (name ^ ": calc successes bounded") true
        (stats.Pipeline.calc_successes <= stats.Pipeline.calc_attempts);
      (* load class counts decompose the loads *)
      check_bool (name ^ ": load classes partition") true
        (stats.Pipeline.loads_n + stats.Pipeline.loads_p + stats.Pipeline.loads_e
        = stats.Pipeline.loads);
      (* architectural behaviour never depends on the timing config *)
      (match w.Workload.expected_output with
      | Some expected ->
        Alcotest.(check string) (name ^ ": output invariant") expected output
      | None -> ()))
    mechanisms

let test_compilation_deterministic () =
  let w = Suite.find "RASTA" in
  let p1 = Compile.compile w.Workload.source in
  let p2 = Compile.compile w.Workload.source in
  Alcotest.(check int) "same code size" (Elag_isa.Program.length p1)
    (Elag_isa.Program.length p2);
  let out p = Elag_sim.Emulator.output (Elag_sim.Emulator.run_program p) in
  Alcotest.(check string) "same behaviour" (out p1) (out p2)

let suite =
  [ Alcotest.test_case "pipeline bounds" `Quick test_pipeline_bounds
  ; Alcotest.test_case "deterministic compilation" `Quick test_compilation_deterministic ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [ lexer_never_crashes
      ; parser_never_crashes
      ; sema_never_crashes
      ; cache_invariants
      ; memory_roundtrip
      ; alu_compare_consistency ]
