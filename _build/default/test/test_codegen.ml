(* Code-generation tests: register-allocation correctness under
   pressure (spilling), calling convention, frame behaviour under deep
   recursion, and properties of the emitted program. *)

module Ir = Elag_ir.Ir
module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Program = Elag_isa.Program
module Regalloc = Elag_codegen.Regalloc
module Compile = Elag_harness.Compile
module Emulator = Elag_sim.Emulator

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run src =
  let program = Compile.compile src in
  Emulator.output (Emulator.run_program ~max_insns:50_000_000 program)

(* Register pressure: a computation keeping ~60 values live at once
   must spill and still compute correctly at every optimization
   level. *)
let spill_stress_src =
  let n = 60 in
  let decls =
    String.concat " "
      (List.init n (fun i -> Printf.sprintf "int v%d = %d * g + %d;" i (i + 1) i))
  in
  let sum = String.concat " + " (List.init n (fun i -> Printf.sprintf "v%d" i)) in
  Printf.sprintf
    "int g; int main() { g = 3; %s g = 0; /* keep all alive past a clobber */ %s \
     print_int(%s); return 0; }"
    decls
    "if (g) { print_int(0); }"
    sum

let spill_expected =
  (* sum of (i+1)*3 + i for i in 0..59 *)
  let v = List.init 60 (fun i -> ((i + 1) * 3) + i) in
  Printf.sprintf "%d\n" (List.fold_left ( + ) 0 v)

let test_spill_stress () =
  Alcotest.(check string) "spilled computation correct" spill_expected
    (run spill_stress_src)

let test_regalloc_spills_under_pressure () =
  (* a function with more simultaneously-live vregs than registers *)
  let n = 80 in
  let f =
    { Ir.name = "f"; params = []; blocks = []; slots = []
    ; next_vreg = n + 1; next_label = 0 }
  in
  let defs = List.init n (fun i -> Ir.Bin (Ir.Add, i, Ir.Imm i, Ir.Imm 1)) in
  (* one instruction using all of them pairwise keeps them live *)
  let uses =
    List.init (n - 1) (fun i -> Ir.Bin (Ir.Add, n, Ir.Reg i, Ir.Reg (i + 1)))
  in
  f.Ir.blocks <-
    [ { Ir.label = "entry"; insts = defs @ List.rev uses; term = Ir.Ret (Some (Ir.Reg n)) } ];
  let result = Regalloc.allocate f in
  check_bool "spills happened" true (result.Regalloc.spill_count > 0);
  (* every vreg got a location *)
  List.iteri
    (fun i _ ->
      match result.Regalloc.location i with
      | Regalloc.In_reg r -> check_bool "valid register" true (Reg.is_valid r)
      | Regalloc.Spilled s -> check_bool "valid slot" true (s >= 0))
    (List.init n Fun.id)

let test_call_crossing_values_survive () =
  (* values live across calls must come back intact (callee-saved or
     spilled) even when many are live *)
  let src =
    "int id(int x) { return x; } \
     int main() { \
       int a = 11; int b = 22; int c = 33; int d = 44; int e = 55; \
       int r1 = id(1); int r2 = id(2); int r3 = id(3); \
       print_int(a + b + c + d + e + r1 + r2 + r3); return 0; }"
  in
  (* keep id out-of-line so calls really happen *)
  let options = { Compile.default_options with inline_threshold = 0 } in
  let program = Compile.compile ~options src in
  let out = Emulator.output (Emulator.run_program program) in
  Alcotest.(check string) "values survive calls" "171\n" out

let test_deep_recursion_frames () =
  (* thousands of live frames: stack discipline and ra save/restore *)
  let src =
    "int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); } \
     int main() { print_int(depth(5000)); return 0; }"
  in
  Alcotest.(check string) "deep recursion" "5000\n" (run src)

let test_load_specs_survive_codegen () =
  (* classification decisions made on the IR must appear verbatim in
     the emitted program *)
  let src =
    Elag_workloads.Runtime.with_prelude
      "struct n { int v; struct n *next; }; \
       int tab[256]; \
       int main() { \
         struct n *h = (struct n*)0; int i; int s = 0; \
         for (i = 0; i < 64; i++) { \
           struct n *c = (struct n*)alloc_node(sizeof(struct n)); \
           c->v = i; c->next = h; h = c; } \
         for (i = 0; i < 256; i++) { s = s + tab[i]; } \
         while (h) { s = s + h->v; h = h->next; } \
         print_int(s); return 0; }"
  in
  let program = Compile.compile src in
  let count spec =
    List.length
      (List.filter
         (fun (_, insn) -> Insn.load_spec insn = Some spec)
         (Program.static_loads program))
  in
  check_bool "program has ld_p loads" true (count Insn.Ld_p >= 1);
  check_bool "program has ld_e loads" true (count Insn.Ld_e >= 1);
  (* classification must not affect program output *)
  Alcotest.(check string) "self-check output" "2016\n"
    (Emulator.output (Emulator.run_program program))

let test_emitted_program_shape () =
  let program = Compile.compile "int main() { return 0; }" in
  (* _start is the entry and the program halts *)
  check "entry at zero" 0 (Program.entry program);
  let has_halt = ref false in
  for pc = 0 to Program.length program - 1 do
    if Program.insn program pc = Insn.Halt then has_halt := true
  done;
  check_bool "program halts" true !has_halt

let suite =
  [ Alcotest.test_case "spill stress" `Quick test_spill_stress
  ; Alcotest.test_case "regalloc under pressure" `Quick test_regalloc_spills_under_pressure
  ; Alcotest.test_case "call-crossing values" `Quick test_call_crossing_values_survive
  ; Alcotest.test_case "deep recursion" `Quick test_deep_recursion_frames
  ; Alcotest.test_case "load specs survive" `Quick test_load_specs_survive_codegen
  ; Alcotest.test_case "program shape" `Quick test_emitted_program_shape ]
