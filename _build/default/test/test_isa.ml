(* Unit and property tests for the ISA layer: 32-bit ALU semantics,
   registers, instruction metadata, data layout and program assembly. *)

module Insn = Elag_isa.Insn
module Alu = Elag_isa.Alu
module Reg = Elag_isa.Reg
module Layout = Elag_isa.Layout
module Program = Elag_isa.Program

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- ALU -------------------------------------------------------------- *)

let test_norm_range () =
  check "positive" 5 (Alu.norm 5);
  check "negative" (-5) (Alu.norm (-5));
  check "wrap positive" (-2147483648) (Alu.norm 0x80000000);
  check "wrap max" (-1) (Alu.norm 0xFFFFFFFF);
  check "int_min stays" (-2147483648) (Alu.norm (-2147483648))

let test_add_wraps () =
  check "max+1 wraps" (-2147483648) (Alu.eval Insn.Add 2147483647 1);
  check "min-1 wraps" 2147483647 (Alu.eval Insn.Sub (-2147483648) 1)

let test_mul_wraps () =
  check "big multiply wraps"
    (Alu.norm (2654435761 * 3))
    (Alu.eval Insn.Mul (Alu.norm 2654435761) 3)

let test_div_semantics () =
  check "truncates toward zero" (-2) (Alu.eval Insn.Div (-7) 3);
  check "rem sign follows dividend" (-1) (Alu.eval Insn.Rem (-7) 3);
  check "div by zero is zero" 0 (Alu.eval Insn.Div 42 0);
  check "rem by zero is zero" 0 (Alu.eval Insn.Rem 42 0)

let test_shifts () =
  check "sll" 40 (Alu.eval Insn.Sll 5 3);
  check "sll count masked" 5 (Alu.eval Insn.Sll 5 32);
  check "srl logical" 0x7FFFFFFF (Alu.eval Insn.Srl (-1) 1);
  check "sra arithmetic" (-1) (Alu.eval Insn.Sra (-1) 1);
  check "sra of -8" (-2) (Alu.eval Insn.Sra (-8) 2)

let test_compare_ops () =
  check "slt true" 1 (Alu.eval Insn.Slt (-1) 0);
  check "slt false" 0 (Alu.eval Insn.Slt 0 (-1));
  check "sle equal" 1 (Alu.eval Insn.Sle 7 7);
  check "seq" 1 (Alu.eval Insn.Seq 3 3);
  check "sne" 1 (Alu.eval Insn.Sne 3 4)

let test_eval_cond () =
  check_bool "lt signed" true (Alu.eval_cond Insn.Lt (-1) 0);
  check_bool "ge" true (Alu.eval_cond Insn.Ge 0 0);
  check_bool "gt" false (Alu.eval_cond Insn.Gt 0 0);
  check_bool "ne after wrap" false (Alu.eval_cond Insn.Ne 0xFFFFFFFF (-1))

let alu_props =
  let open QCheck in
  [ Test.make ~name:"norm is idempotent" ~count:500 (int_bound 0x3FFFFFFF)
      (fun x -> Alu.norm (Alu.norm x) = Alu.norm x)
  ; Test.make ~name:"add commutes" ~count:500 (pair int int)
      (fun (a, b) -> Alu.eval Insn.Add a b = Alu.eval Insn.Add b a)
  ; Test.make ~name:"x - x = 0" ~count:500 int
      (fun x -> Alu.eval Insn.Sub x x = 0)
  ; Test.make ~name:"and/or de-morgan on 32 bits" ~count:500 (pair int int)
      (fun (a, b) ->
        Alu.eval Insn.Xor (Alu.eval Insn.And a b) (Alu.eval Insn.Or a b)
        = Alu.eval Insn.Xor (Alu.norm a) (Alu.norm b))
  ; Test.make ~name:"result always in 32-bit range" ~count:500
      (triple (int_range 0 14) int int)
      (fun (op_idx, a, b) ->
        let ops =
          [| Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Rem; Insn.And
           ; Insn.Or; Insn.Xor; Insn.Sll; Insn.Srl; Insn.Sra; Insn.Slt
           ; Insn.Sle; Insn.Seq; Insn.Sne |]
        in
        let r = Alu.eval ops.(op_idx) a b in
        r >= -2147483648 && r <= 2147483647) ]

(* --- registers --------------------------------------------------------- *)

let test_register_roles () =
  check "count" 64 Reg.count;
  check_bool "zero valid" true (Reg.is_valid Reg.zero);
  check_bool "out of range" false (Reg.is_valid 64);
  Alcotest.(check string) "zero name" "zero" (Reg.name Reg.zero);
  Alcotest.(check string) "sp name" "sp" (Reg.name Reg.sp);
  check_bool "scratches distinct" true
    (Reg.scratch0 <> Reg.scratch1 && Reg.scratch1 <> Reg.scratch2)

let test_register_ranges_disjoint () =
  let ranges =
    [ (Reg.arg_first, Reg.arg_last)
    ; (Reg.tmp_first, Reg.tmp_last)
    ; (Reg.saved_first, Reg.saved_last) ]
  in
  List.iteri
    (fun i (lo1, hi1) ->
      List.iteri
        (fun j (lo2, hi2) ->
          if i < j then check_bool "ranges disjoint" true (hi1 < lo2 || hi2 < lo1))
        ranges)
    ranges;
  List.iter
    (fun s ->
      List.iter
        (fun (lo, hi) -> check_bool "scratch outside pools" true (s < lo || s > hi))
        ranges)
    [ Reg.scratch0; Reg.scratch1; Reg.scratch2 ]

(* --- instruction metadata ---------------------------------------------- *)

let test_uses_defs () =
  let load =
    Insn.Load
      { spec = Insn.Ld_n; size = Insn.Word; sign = Insn.Signed; dst = 5
      ; addr = Insn.Base_index (6, 7) }
  in
  Alcotest.(check (list int)) "load uses" [ 6; 7 ] (Insn.uses load);
  Alcotest.(check (list int)) "load defs" [ 5 ] (Insn.defs load);
  let store = Insn.Store { size = Insn.Byte; src = 8; addr = Insn.Base_offset (9, 4) } in
  Alcotest.(check (list int)) "store uses" [ 8; 9 ] (Insn.uses store);
  Alcotest.(check (list int)) "store defs" [] (Insn.defs store);
  let alu = Insn.Alu { op = Insn.Add; dst = 1; src1 = 0; src2 = Insn.R 0 } in
  Alcotest.(check (list int)) "zero reg never a use" [] (Insn.uses alu)

let test_zero_def_dropped () =
  let li = Insn.Li { dst = Reg.zero; imm = 42 } in
  Alcotest.(check (list int)) "write to zero dropped" [] (Insn.defs li)

let test_load_spec_helpers () =
  let load =
    Insn.Load
      { spec = Insn.Ld_n; size = Insn.Word; sign = Insn.Signed; dst = 1
      ; addr = Insn.Absolute 0x1000 }
  in
  Alcotest.(check bool) "is_load" true (Insn.is_load load);
  (match Insn.load_spec (Insn.with_load_spec Insn.Ld_p load) with
  | Some Insn.Ld_p -> ()
  | _ -> Alcotest.fail "with_load_spec did not apply");
  check_bool "non-load untouched" true
    (Insn.with_load_spec Insn.Ld_e Insn.Nop = Insn.Nop)

(* --- layout ------------------------------------------------------------- *)

let test_layout_alignment () =
  let l = Layout.create () in
  let a = Layout.add l ~label:"a" ~align:1 ~init:(Layout.Bytes "xyz") in
  let b = Layout.add l ~label:"b" ~align:4 ~init:(Layout.Words [ 1; 2 ]) in
  check "first at base" Layout.default_base a;
  check "aligned up" 0 (b mod 4);
  check_bool "no overlap" true (b >= a + 3);
  check "lookup" b (Layout.address l "b");
  check_bool "heap after data" true (Layout.heap_base l >= b + 8);
  check "heap aligned" 0 (Layout.heap_base l mod 16)

let test_layout_duplicate_rejected () =
  let l = Layout.create () in
  ignore (Layout.add l ~label:"x" ~align:4 ~init:(Layout.Zeros 4));
  Alcotest.check_raises "duplicate label" (Invalid_argument "Layout.add: duplicate label x")
    (fun () -> ignore (Layout.add l ~label:"x" ~align:4 ~init:(Layout.Zeros 4)))

let test_layout_image_little_endian () =
  let l = Layout.create () in
  ignore (Layout.add l ~label:"w" ~align:4 ~init:(Layout.Words [ 0x11223344 ]));
  match Layout.image l with
  | [ (_, bytes) ] ->
    Alcotest.(check string) "little endian" "\x44\x33\x22\x11" bytes
  | _ -> Alcotest.fail "expected one image entry"

(* --- program assembly ---------------------------------------------------- *)

let test_assemble_resolves_targets () =
  let layout = Layout.create () in
  let items =
    [ Program.Label "_start"
    ; Program.Insn (Insn.Jump "end")
    ; Program.Label "mid"
    ; Program.Insn Insn.Nop
    ; Program.Label "end"
    ; Program.Insn Insn.Halt ]
  in
  let p = Program.assemble ~layout items in
  check "length" 3 (Program.length p);
  check "entry" 0 (Program.entry p);
  check "jump target" 2 (Program.target p 0);
  check "no target" (-1) (Program.target p 1);
  check "symbol" 1 (Program.symbol p "mid")

let test_assemble_unknown_label () =
  let layout = Layout.create () in
  let items = [ Program.Label "_start"; Program.Insn (Insn.Jump "nowhere") ] in
  Alcotest.check_raises "unknown label" (Program.Unknown_label "nowhere") (fun () ->
      ignore (Program.assemble ~layout items))

let test_static_loads_and_map () =
  let layout = Layout.create () in
  let load spec =
    Insn.Load
      { spec; size = Insn.Word; sign = Insn.Signed; dst = 1
      ; addr = Insn.Absolute 0x1000 }
  in
  let items =
    [ Program.Label "_start"
    ; Program.Insn (load Insn.Ld_n)
    ; Program.Insn Insn.Nop
    ; Program.Insn (load Insn.Ld_n)
    ; Program.Insn Insn.Halt ]
  in
  let p = Program.assemble ~layout items in
  check "two static loads" 2 (List.length (Program.static_loads p));
  let p' =
    Program.map_insns
      (fun pc insn -> if pc = 0 then Insn.with_load_spec Insn.Ld_p insn else insn)
      p
  in
  (match Insn.load_spec (Program.insn p' 0) with
  | Some Insn.Ld_p -> ()
  | _ -> Alcotest.fail "map_insns did not rewrite");
  (* original program unchanged *)
  match Insn.load_spec (Program.insn p 0) with
  | Some Insn.Ld_n -> ()
  | _ -> Alcotest.fail "map_insns mutated the original"

let suite =
  [ Alcotest.test_case "alu: norm range" `Quick test_norm_range
  ; Alcotest.test_case "alu: add wraps" `Quick test_add_wraps
  ; Alcotest.test_case "alu: mul wraps" `Quick test_mul_wraps
  ; Alcotest.test_case "alu: division" `Quick test_div_semantics
  ; Alcotest.test_case "alu: shifts" `Quick test_shifts
  ; Alcotest.test_case "alu: compares" `Quick test_compare_ops
  ; Alcotest.test_case "alu: conditions" `Quick test_eval_cond
  ; Alcotest.test_case "reg: roles" `Quick test_register_roles
  ; Alcotest.test_case "reg: pools disjoint" `Quick test_register_ranges_disjoint
  ; Alcotest.test_case "insn: uses/defs" `Quick test_uses_defs
  ; Alcotest.test_case "insn: zero def dropped" `Quick test_zero_def_dropped
  ; Alcotest.test_case "insn: load spec helpers" `Quick test_load_spec_helpers
  ; Alcotest.test_case "layout: alignment" `Quick test_layout_alignment
  ; Alcotest.test_case "layout: duplicates" `Quick test_layout_duplicate_rejected
  ; Alcotest.test_case "layout: little endian" `Quick test_layout_image_little_endian
  ; Alcotest.test_case "program: assembly" `Quick test_assemble_resolves_targets
  ; Alcotest.test_case "program: unknown label" `Quick test_assemble_unknown_label
  ; Alcotest.test_case "program: static loads" `Quick test_static_loads_and_map ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) alu_props
