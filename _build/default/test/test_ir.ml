(* Tests for the IR analyses: CFG construction, dominators, natural
   loops and liveness, over hand-built functions. *)

module Ir = Elag_ir.Ir
module Cfg = Elag_ir.Cfg
module Dominators = Elag_ir.Dominators
module Loops = Elag_ir.Loops
module Liveness = Elag_ir.Liveness
module Insn = Elag_isa.Insn

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mkfunc blocks =
  { Ir.name = "f"; params = []; blocks; slots = []; next_vreg = 100; next_label = 0 }

let block label insts term = { Ir.label; insts; term }

(* A diamond:  entry -> (then | else) -> exit *)
let diamond () =
  mkfunc
    [ block "entry" []
        (Ir.Br { cond = Insn.Eq; src1 = Ir.Reg 0; src2 = Ir.Imm 0
               ; ifso = "then"; ifnot = "else" })
    ; block "then" [] (Ir.Jmp "exit")
    ; block "else" [] (Ir.Jmp "exit")
    ; block "exit" [] (Ir.Ret None) ]

(* entry -> head <-> body, head -> exit  (a while loop) *)
let while_loop ?(body_insts = []) ?(head_insts = []) () =
  mkfunc
    [ block "entry" [ Ir.Mov (1, Ir.Imm 0) ] (Ir.Jmp "head")
    ; block "head" head_insts
        (Ir.Br { cond = Insn.Lt; src1 = Ir.Reg 1; src2 = Ir.Imm 10
               ; ifso = "body"; ifnot = "exit" })
    ; block "body" (body_insts @ [ Ir.Bin (Ir.Add, 1, Ir.Reg 1, Ir.Imm 1) ])
        (Ir.Jmp "head")
    ; block "exit" [] (Ir.Ret (Some (Ir.Reg 1))) ]

let test_cfg_edges () =
  let cfg = Cfg.of_func (diamond ()) in
  Alcotest.(check (list string)) "entry succs" [ "then"; "else" ] (Cfg.succs cfg "entry");
  Alcotest.(check (list string)) "exit preds (sorted)" [ "else"; "then" ]
    (List.sort compare (Cfg.preds cfg "exit"));
  check "rpo covers all" 4 (List.length cfg.Cfg.rpo);
  Alcotest.(check string) "rpo starts at entry" "entry" (List.hd cfg.Cfg.rpo)

let test_cfg_unreachable () =
  let f =
    mkfunc
      [ block "entry" [] (Ir.Ret None)
      ; block "island" [] (Ir.Jmp "entry") ]
  in
  let cfg = Cfg.of_func f in
  check_bool "island unreachable" false (Cfg.reachable cfg "island");
  check "one unreachable" 1 (List.length (Cfg.unreachable_blocks cfg))

let test_dominators_diamond () =
  let cfg = Cfg.of_func (diamond ()) in
  let dom = Dominators.compute cfg in
  check_bool "entry dominates all" true (Dominators.dominates dom "entry" "exit");
  check_bool "then does not dominate exit" false (Dominators.dominates dom "then" "exit");
  check_bool "self-domination" true (Dominators.dominates dom "then" "then");
  Alcotest.(check (option string)) "idom of exit" (Some "entry")
    (Dominators.idom dom "exit")

let test_loop_detection () =
  let cfg = Cfg.of_func (while_loop ()) in
  let dom = Dominators.compute cfg in
  let loops = Loops.compute cfg dom in
  check "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check string) "header" "head" l.Loops.header;
  check_bool "body in loop" true (Loops.mem l "body");
  check_bool "entry not in loop" false (Loops.mem l "entry");
  check_bool "exit not in loop" false (Loops.mem l "exit");
  Alcotest.(check (list string)) "latch" [ "body" ] l.Loops.back_edges;
  check "depth" 1 l.Loops.depth

let test_nested_loops_inner_first () =
  let f =
    mkfunc
      [ block "entry" [] (Ir.Jmp "oh")
      ; block "oh" []
          (Ir.Br { cond = Insn.Lt; src1 = Ir.Reg 1; src2 = Ir.Imm 10
                 ; ifso = "ih"; ifnot = "exit" })
      ; block "ih" []
          (Ir.Br { cond = Insn.Lt; src1 = Ir.Reg 2; src2 = Ir.Imm 10
                 ; ifso = "ib"; ifnot = "ol" })
      ; block "ib" [] (Ir.Jmp "ih")
      ; block "ol" [ Ir.Bin (Ir.Add, 1, Ir.Reg 1, Ir.Imm 1) ] (Ir.Jmp "oh")
      ; block "exit" [] (Ir.Ret None) ]
  in
  let cfg = Cfg.of_func f in
  let loops = Loops.compute cfg (Dominators.compute cfg) in
  check "two loops" 2 (List.length loops);
  let first = List.hd loops in
  Alcotest.(check string) "inner first" "ih" first.Loops.header;
  check "inner depth 2" 2 first.Loops.depth;
  (* the innermost loop containing the inner body is the inner loop *)
  match Loops.innermost_containing loops "ib" with
  | Some l -> Alcotest.(check string) "innermost of ib" "ih" l.Loops.header
  | None -> Alcotest.fail "ib should be in a loop"

let test_liveness () =
  (* v1 is the loop counter: live through the loop, dead after the
     Ret consumes it; v2 is defined and used only inside the body. *)
  let f =
    while_loop
      ~body_insts:[ Ir.Bin (Ir.Mul, 2, Ir.Reg 1, Ir.Imm 3)
                  ; Ir.Store { size = Insn.Word; src = Ir.Reg 2
                             ; addr = Ir.Abs 4096 } ]
      ()
  in
  let cfg = Cfg.of_func f in
  let live = Liveness.compute cfg in
  let module VS = Liveness.VS in
  check_bool "counter live into head" true (VS.mem 1 (Liveness.live_in live "head"));
  check_bool "counter live out of body" true (VS.mem 1 (Liveness.live_out live "body"));
  check_bool "temp not live into head" false (VS.mem 2 (Liveness.live_in live "head"));
  check_bool "temp not live out of body" false (VS.mem 2 (Liveness.live_out live "body"));
  check_bool "nothing live into entry" true
    (VS.is_empty (Liveness.live_in live "entry"))

let test_inst_metadata () =
  let load =
    Ir.Load { spec = Insn.Ld_n; size = Insn.Word; sign = Insn.Signed; dst = 3
            ; addr = Ir.Base_index (1, 2) }
  in
  Alcotest.(check (list int)) "load uses" [ 1; 2 ] (Ir.inst_uses load);
  Alcotest.(check (list int)) "load defs" [ 3 ] (Ir.inst_defs load);
  let call = Ir.Call { dst = Some 5; callee = "f"; args = [ Ir.Reg 1; Ir.Imm 2 ] } in
  Alcotest.(check (list int)) "call uses" [ 1 ] (Ir.inst_uses call);
  Alcotest.(check (list int)) "call defs" [ 5 ] (Ir.inst_defs call);
  check_bool "store has side effect" true
    (Ir.has_side_effect (Ir.Store { size = Insn.Word; src = Ir.Imm 0; addr = Ir.Abs 0 }));
  check_bool "bin is pure" false (Ir.has_side_effect (Ir.Bin (Ir.Add, 1, Ir.Imm 1, Ir.Imm 2)))

let test_abs_sym_addressing () =
  let addr = Ir.Abs_sym ("glob", 8) in
  Alcotest.(check (list int)) "no registers" [] (Ir.address_vregs addr);
  let mapped = Ir.map_address (fun v -> v + 1) addr in
  check_bool "map preserves symbolic" true (mapped = addr)

let suite =
  [ Alcotest.test_case "cfg: edges and rpo" `Quick test_cfg_edges
  ; Alcotest.test_case "cfg: unreachable" `Quick test_cfg_unreachable
  ; Alcotest.test_case "dominators: diamond" `Quick test_dominators_diamond
  ; Alcotest.test_case "loops: while" `Quick test_loop_detection
  ; Alcotest.test_case "loops: nested inner-first" `Quick test_nested_loops_inner_first
  ; Alcotest.test_case "liveness: loop counter" `Quick test_liveness
  ; Alcotest.test_case "ir: inst metadata" `Quick test_inst_metadata
  ; Alcotest.test_case "ir: abs_sym" `Quick test_abs_sym_addressing ]
