(* Tests for the prediction structures: the Figure 3 stride state
   machine, the direct-mapped address table, the ideal per-PC
   predictor, the BRIC, R_addr and the BTB. *)

module Stride_entry = Elag_predict.Stride_entry
module Addr_table = Elag_predict.Addr_table
module Ideal = Elag_predict.Ideal
module Bric = Elag_predict.Bric
module Raddr = Elag_predict.Raddr
module Btb = Elag_predict.Btb

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- stride entry state machine (paper Figure 3) ----------------------- *)

(* Feed a list of addresses; return the per-access correctness list. *)
let drive addrs =
  match addrs with
  | [] -> []
  | first :: rest ->
    let e = Stride_entry.allocate first in
    (* the allocation consumes the first address; it cannot be correct *)
    List.map (fun ca -> Stride_entry.update e ca) rest

let test_constant_address () =
  (* Replace sets PA=CA, ST=0: constant addresses predict immediately. *)
  Alcotest.(check (list bool)) "constant stream"
    [ true; true; true ]
    (drive [ 100; 100; 100; 100 ])

let test_stride_learning () =
  (* 100,104,108,112,...: first access allocates; 104 mismatches
     (New_Stride), 108 verifies the stride, 112 onward predict. *)
  Alcotest.(check (list bool)) "stride warmup"
    [ false; false; true; true; true ]
    (drive [ 100; 104; 108; 112; 116; 120 ])

let test_stride_change_relearns () =
  (* the relearned stride only pays off one access later: the update
     at 36 verifies the new stride but its own prediction was stale *)
  Alcotest.(check (list bool)) "stride change"
    [ false; false; true; false; false; false; true ]
    (drive [ 0; 4; 8; 12; 20; 28; 36; 44 ])

let test_figure3_transitions () =
  let e = Stride_entry.allocate 100 in
  (* functioning, PA=100, ST=0 *)
  check_bool "correct keeps functioning" true (Stride_entry.update e 100);
  check "pa advances by st" 100 (Stride_entry.predicted_address e);
  check_bool "mismatch enters learning" false (Stride_entry.update e 104);
  (* learning: PA=104, ST=4, STC=0 *)
  check "pa tracks ca in learning" 104 (Stride_entry.predicted_address e);
  check_bool "verified stride" false (Stride_entry.update e 108);
  (* functioning again: PA=108+4 *)
  check "pa = ca + st" 112 (Stride_entry.predicted_address e);
  check_bool "now predicting" true (Stride_entry.update e 112)

let test_random_addresses_rarely_predict () =
  let rng = Random.State.make [| 42 |] in
  let addrs = List.init 200 (fun _ -> Random.State.int rng 1_000_000) in
  let correct = List.filter (fun c -> c) (drive addrs) in
  check_bool "random stream mostly unpredicted" true (List.length correct < 10)

(* --- address table ------------------------------------------------------ *)

let test_table_miss_then_hit () =
  let t = Addr_table.create 16 in
  check_bool "cold probe misses" true (Addr_table.probe t 3 = None);
  ignore (Addr_table.update t 3 100);
  (match Addr_table.probe t 3 with
  | Some 100 -> ()
  | _ -> Alcotest.fail "expected PA=100 after allocation");
  ignore (Addr_table.update t 3 100);
  ignore (Addr_table.update t 3 100);
  match Addr_table.peek t 3 with
  | Some 100 -> ()
  | _ -> Alcotest.fail "constant address should keep predicting"

let test_table_conflict_eviction () =
  let t = Addr_table.create 16 in
  ignore (Addr_table.update t 5 100);
  ignore (Addr_table.update t 21 200); (* same index: 21 mod 16 = 5 *)
  check_bool "evicted" true (Addr_table.probe t 5 = None);
  check_bool "new resident" true (Addr_table.probe t 21 <> None)

let test_table_strided_load () =
  let t = Addr_table.create 64 in
  let correct = ref 0 in
  for i = 0 to 19 do
    (match Addr_table.peek t 7 with
    | Some pa when pa = 1000 + (i * 8) -> incr correct
    | _ -> ());
    ignore (Addr_table.update t 7 (1000 + (i * 8)))
  done;
  (* predictions correct from the 4th access on *)
  check "strided predictions" 17 !correct

let test_peek_is_pure () =
  let t = Addr_table.create 8 in
  ignore (Addr_table.update t 1 500);
  let before = Addr_table.stats t in
  ignore (Addr_table.peek t 1);
  ignore (Addr_table.peek t 1);
  let after = Addr_table.stats t in
  check "peek does not count probes" before.Addr_table.st_probes
    after.Addr_table.st_probes

(* --- ideal predictor ----------------------------------------------------- *)

let test_ideal_rates () =
  let t = Ideal.create () in
  (* strided load at pc 10: 20 executions *)
  for i = 0 to 19 do
    Ideal.observe t ~pc:10 ~ca:(i * 4)
  done;
  (* constant load at pc 11 *)
  for _ = 1 to 10 do
    Ideal.observe t ~pc:11 ~ca:999
  done;
  (match Ideal.rate t 10 with
  | Some r -> check_bool "strided rate ~0.85" true (r > 0.8 && r < 0.95)
  | None -> Alcotest.fail "no rate");
  (match Ideal.rate t 11 with
  | Some r -> check_bool "constant rate 0.9" true (r >= 0.9)
  | None -> Alcotest.fail "no rate");
  check "executions tracked" 20 (Ideal.executions t 10);
  check_bool "unknown pc" true (Ideal.rate t 99 = None)

let test_ideal_aggregate () =
  let t = Ideal.create () in
  for i = 0 to 9 do
    Ideal.observe t ~pc:1 ~ca:(i * 4);
    Ideal.observe t ~pc:2 ~ca:(i * 123456 mod 7919)
  done;
  match Ideal.aggregate_rate t [ 1; 2 ] with
  | Some r ->
    let r1 = Option.get (Ideal.rate t 1) and r2 = Option.get (Ideal.rate t 2) in
    Alcotest.(check (float 0.0001)) "aggregate is weighted mean" ((r1 +. r2) /. 2.) r
  | None -> Alcotest.fail "no aggregate"

(* --- BRIC ---------------------------------------------------------------- *)

let test_bric_lru () =
  let b = Bric.create 2 in
  check_bool "cold miss" false (Bric.probe b ~cycle:10 5);
  check_bool "hit after allocate" true (Bric.probe b ~cycle:11 5);
  check_bool "second reg" false (Bric.probe b ~cycle:12 6);
  check_bool "refresh 5" true (Bric.probe b ~cycle:13 5);
  check_bool "third evicts lru (6)" false (Bric.probe b ~cycle:14 7);
  (* use pure peeks for the eviction checks: probing would reallocate *)
  check_bool "6 was evicted" false (Bric.peek b ~cycle:15 6);
  check_bool "5 survived" true (Bric.peek b ~cycle:16 5)

let test_bric_allocation_delay () =
  let b = Bric.create 4 in
  ignore (Bric.probe b ~cycle:10 3);
  (* value not usable in the same cycle it was allocated *)
  check_bool "peek same cycle" false (Bric.peek b ~cycle:10 3);
  check_bool "peek next cycle" true (Bric.peek b ~cycle:11 3)

(* --- R_addr ---------------------------------------------------------------- *)

let test_raddr_binding () =
  let r = Raddr.create () in
  check_bool "unbound" false (Raddr.probe r ~cycle:5 9);
  Raddr.bind r ~cycle:5 9;
  check_bool "not valid same cycle after switch" false (Raddr.peek r ~cycle:5 9);
  check_bool "valid next cycle" true (Raddr.peek r ~cycle:6 9);
  (* rebinding to the same register is free *)
  Raddr.bind r ~cycle:8 9;
  check_bool "same-reg rebind keeps validity" true (Raddr.peek r ~cycle:8 9);
  (* switching invalidates *)
  Raddr.bind r ~cycle:9 4;
  check_bool "switch invalidates" false (Raddr.peek r ~cycle:9 4);
  check_bool "old binding gone" false (Raddr.peek r ~cycle:10 9);
  check_bool "new binding valid" true (Raddr.peek r ~cycle:10 4)

(* --- BTB ---------------------------------------------------------------- *)

let test_btb_learns_taken () =
  let b = Btb.create 64 in
  (* first taken branch mispredicts (cold), then predicts *)
  check_bool "cold mispredict" false (Btb.update b 10 ~taken:true ~target:50);
  check_bool "second correct" true (Btb.update b 10 ~taken:true ~target:50);
  let p = Btb.predict b 10 in
  check_bool "predicts taken" true p.Btb.pred_taken;
  check "predicts target" 50 p.Btb.pred_target

let test_btb_counter_hysteresis () =
  let b = Btb.create 64 in
  ignore (Btb.update b 10 ~taken:true ~target:50);  (* allocate, counter 2 *)
  ignore (Btb.update b 10 ~taken:true ~target:50);  (* counter 3 *)
  (* one not-taken: mispredicts but stays predicted-taken (counter 2) *)
  check_bool "flip mispredicts" false (Btb.update b 10 ~taken:false ~target:11);
  check_bool "still predicts taken" true (Btb.predict b 10).Btb.pred_taken;
  ignore (Btb.update b 10 ~taken:false ~target:11);
  check_bool "two not-taken flip prediction" false (Btb.predict b 10).Btb.pred_taken

let test_btb_not_taken_never_allocates () =
  let b = Btb.create 64 in
  check_bool "not-taken correct cold" true (Btb.update b 10 ~taken:false ~target:11);
  check_bool "still cold" false (Btb.predict b 10).Btb.pred_taken

let test_btb_wrong_target_counts () =
  let b = Btb.create 64 in
  ignore (Btb.update b 10 ~taken:true ~target:50);
  (* indirect jump changes target: direction right, target wrong *)
  check_bool "target mismatch mispredicts" false
    (Btb.update b 10 ~taken:true ~target:60)

let stride_props =
  let open QCheck in
  [ Test.make ~name:"figure-3 machine converges on any constant stride"
      ~count:100
      (pair (int_range 1 512) (int_range 0 100000))
      (fun (stride, start) ->
        let e = Stride_entry.allocate start in
        (* warm up: three accesses establish the stride *)
        ignore (Stride_entry.update e (start + stride));
        ignore (Stride_entry.update e (start + (2 * stride)));
        (* all subsequent accesses predicted *)
        List.for_all
          (fun i -> Stride_entry.update e (start + (i * stride)))
          [ 3; 4; 5; 6; 7; 8 ]) ]

let suite =
  [ Alcotest.test_case "stride: constant" `Quick test_constant_address
  ; Alcotest.test_case "stride: learning" `Quick test_stride_learning
  ; Alcotest.test_case "stride: relearn" `Quick test_stride_change_relearns
  ; Alcotest.test_case "stride: figure-3 transitions" `Quick test_figure3_transitions
  ; Alcotest.test_case "stride: random noise" `Quick test_random_addresses_rarely_predict
  ; Alcotest.test_case "table: miss/hit" `Quick test_table_miss_then_hit
  ; Alcotest.test_case "table: conflict" `Quick test_table_conflict_eviction
  ; Alcotest.test_case "table: strided" `Quick test_table_strided_load
  ; Alcotest.test_case "table: peek pure" `Quick test_peek_is_pure
  ; Alcotest.test_case "ideal: rates" `Quick test_ideal_rates
  ; Alcotest.test_case "ideal: aggregate" `Quick test_ideal_aggregate
  ; Alcotest.test_case "bric: lru" `Quick test_bric_lru
  ; Alcotest.test_case "bric: allocation delay" `Quick test_bric_allocation_delay
  ; Alcotest.test_case "raddr: binding" `Quick test_raddr_binding
  ; Alcotest.test_case "btb: learns" `Quick test_btb_learns_taken
  ; Alcotest.test_case "btb: hysteresis" `Quick test_btb_counter_hysteresis
  ; Alcotest.test_case "btb: not-taken" `Quick test_btb_not_taken_never_allocates
  ; Alcotest.test_case "btb: wrong target" `Quick test_btb_wrong_target_counts ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) stride_props
