(* Workload-suite tests: every kernel compiles, terminates, and
   reproduces its pinned output; suites have the documented sizes and
   each workload exercises enough dynamic loads to be a meaningful
   benchmark. *)

module Compile = Elag_harness.Compile
module Emulator = Elag_sim.Emulator
module Workload = Elag_workloads.Workload
module Suite = Elag_workloads.Suite

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_suite_sizes () =
  check "12 SPEC-like workloads" 12 (List.length Suite.spec);
  check "13 MediaBench-like workloads" 13 (List.length Suite.media);
  check "25 total" 25 (List.length Suite.all)

let test_names_unique () =
  let names = List.map (fun (w : Workload.t) -> w.Workload.name) Suite.all in
  check "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  let w = Suite.find "147.vortex" in
  Alcotest.(check string) "found" "147.vortex" w.Workload.name;
  check_bool "unknown raises" true
    (try ignore (Suite.find "nope"); false with Invalid_argument _ -> true)

let test_all_have_expected_output () =
  List.iter
    (fun (w : Workload.t) ->
      check_bool (w.Workload.name ^ " has pinned output") true
        (w.Workload.expected_output <> None))
    Suite.all

(* One test case per workload: compile, run, compare output. *)
let workload_case (w : Workload.t) =
  Alcotest.test_case w.Workload.name `Slow (fun () ->
      let program = Compile.compile w.Workload.source in
      let emu = Emulator.run_program ~max_insns:200_000_000 program in
      (match w.Workload.expected_output with
      | Some expected ->
        Alcotest.(check string) "output matches pinned" expected (Emulator.output emu)
      | None -> Alcotest.fail "no pinned output");
      (* meaningful size: at least 100k dynamic instructions *)
      check_bool "non-trivial dynamic size" true (Emulator.retired emu > 100_000))

(* Classification must not change architectural behaviour: the
   no-classification binary produces identical output. *)
let test_classification_is_transparent () =
  let w = Suite.find "072.sc" in
  let out_of classification =
    let options = { Compile.default_options with classification } in
    let program = Compile.compile ~options w.Workload.source in
    Emulator.output (Emulator.run_program program)
  in
  Alcotest.(check string) "same output either way"
    (out_of Compile.Heuristics) (out_of Compile.No_classification)

let suite =
  [ Alcotest.test_case "suite sizes" `Quick test_suite_sizes
  ; Alcotest.test_case "names unique" `Quick test_names_unique
  ; Alcotest.test_case "find" `Quick test_find
  ; Alcotest.test_case "outputs pinned" `Quick test_all_have_expected_output
  ; Alcotest.test_case "classification transparent" `Quick
      test_classification_is_transparent ]
  @ List.map workload_case Suite.all
