(* Front-end unit tests: lexer tokens, parser shapes and precedence,
   semantic analysis (types, errors, address-taken marking). *)

module Lexer = Elag_minic.Lexer
module Parser = Elag_minic.Parser
module Ast = Elag_minic.Ast
module Sema = Elag_minic.Sema
module Typed = Elag_minic.Typed
module Structs = Elag_minic.Structs

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- lexer ---------------------------------------------------------- *)

let tokens src = List.map (fun t -> t.Lexer.token) (Lexer.tokenize src)

let test_lexer_basics () =
  (match tokens "int x = 42;" with
  | [ Lexer.KW_INT; Lexer.IDENT "x"; Lexer.EQ; Lexer.INT_LIT 42; Lexer.SEMI; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "basic declaration tokens");
  (match tokens "0x1F" with
  | [ Lexer.INT_LIT 31; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "hex literal");
  match tokens "'a' '\\n' \"hi\\n\"" with
  | [ Lexer.CHAR_LIT 'a'; Lexer.CHAR_LIT '\n'; Lexer.STR_LIT "hi\n"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "char and string literals"

let test_lexer_operators () =
  match tokens "a<<=b" with
  | [ Lexer.IDENT "a"; Lexer.SHL; Lexer.EQ; Lexer.IDENT "b"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "maximal munch"

let test_lexer_comments () =
  check "line comment" 2 (List.length (tokens "x // comment\n"));
  check "block comment" 2 (List.length (tokens "/* a /  * b */ x"))

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\n\nc" in
  let lines = List.map (fun t -> t.Lexer.line) toks in
  Alcotest.(check (list int)) "line tracking" [ 1; 2; 4; 4 ] lines

let test_lexer_errors () =
  Alcotest.check_raises "bad char" (Lexer.Error ("unexpected character '@'", 1))
    (fun () -> ignore (Lexer.tokenize "@"));
  check_bool "unterminated string raises" true
    (try ignore (Lexer.tokenize "\"abc"); false with Lexer.Error _ -> true)

(* --- parser --------------------------------------------------------- *)

let parse_expr_of src =
  (* wrap in a function returning the expression *)
  match Parser.parse (Printf.sprintf "int main() { return %s; }" src) with
  | [ Ast.Dfunc { body = [ { sdesc = Ast.Sreturn (Some e); _ } ]; _ } ] -> e
  | _ -> Alcotest.fail "unexpected parse shape"

let rec expr_to_string (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int_lit n -> string_of_int n
  | Ast.Var v -> v
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "(%s%s%s)" (expr_to_string a) (Ast.binop_name op) (expr_to_string b)
  | Ast.Unop (op, a) -> Printf.sprintf "(%s%s)" (Ast.unop_name op) (expr_to_string a)
  | Ast.Assign (a, b) -> Printf.sprintf "(%s=%s)" (expr_to_string a) (expr_to_string b)
  | Ast.Cond (c, t, f) ->
    Printf.sprintf "(%s?%s:%s)" (expr_to_string c) (expr_to_string t) (expr_to_string f)
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)
  | Ast.Deref a -> Printf.sprintf "(*%s)" (expr_to_string a)
  | Ast.Addr_of a -> Printf.sprintf "(&%s)" (expr_to_string a)
  | Ast.Field (a, f) -> Printf.sprintf "%s.%s" (expr_to_string a) f
  | Ast.Arrow (a, f) -> Printf.sprintf "%s->%s" (expr_to_string a) f
  | Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat "," (List.map expr_to_string args))
  | _ -> "?"

let check_parse src expected =
  Alcotest.(check string) src expected (expr_to_string (parse_expr_of src))

let test_precedence () =
  check_parse "1 + 2 * 3" "(1+(2*3))";
  check_parse "1 * 2 + 3" "((1*2)+3)";
  check_parse "1 << 2 + 3" "(1<<(2+3))";
  check_parse "1 < 2 == 3 < 4" "((1<2)==(3<4))";
  check_parse "1 & 2 | 3 ^ 4" "((1&2)|(3^4))";
  check_parse "a && b || c" "((a&&b)||c)";
  check_parse "1 - 2 - 3" "((1-2)-3)";
  check_parse "a = b = c" "(a=(b=c))"

let test_unary_and_postfix () =
  check_parse "-a + b" "((-a)+b)";
  check_parse "!a && b" "((!a)&&b)";
  check_parse "*p + 1" "((*p)+1)";
  check_parse "&a[1]" "(&a[1])";
  check_parse "a[1][2]" "a[1][2]";
  check_parse "p->x" "p->x";
  check_parse "a.b.c" "a.b.c"

let test_sugar () =
  (* compound assignment and increments desugar to plain assignments *)
  check_parse "a += 2" "(a=(a+2))";
  check_parse "a++" "(a=(a+1))";
  check_parse "--a" "(a=(a-1))";
  check_parse "a ? b : c" "(a?b:c)"

let test_array_dims () =
  match Parser.parse "int m[4 * 8 + 2];" with
  | [ Ast.Dglobal { global_ty = Ast.Tarray (Ast.Tint, 34); _ } ] -> ()
  | _ -> Alcotest.fail "constant-expression dimension"

let test_struct_and_params () =
  let prog =
    Parser.parse
      "struct p { int x; int y; };\n\
       int f(struct p *q, int n) { return q->x + n; }\n\
       int main() { return 0; }"
  in
  check "three declarations" 3 (List.length prog);
  match prog with
  | Ast.Dstruct { fields; _ } :: Ast.Dfunc { params; _ } :: _ ->
    check "two fields" 2 (List.length fields);
    check "two params" 2 (List.length params)
  | _ -> Alcotest.fail "unexpected shape"

let test_parser_errors () =
  let fails src = try ignore (Parser.parse src); false with Parser.Error _ -> true in
  check_bool "missing semicolon" true (fails "int main() { return 0 }");
  check_bool "unbalanced paren" true (fails "int main() { return (1; }");
  check_bool "bad toplevel" true (fails "42;")

(* --- sema ------------------------------------------------------------ *)

let infer src = Sema.check (Parser.parse src)

let sema_fails src =
  try ignore (infer src); false with Sema.Error _ -> true

let test_sema_accepts_valid () =
  let p =
    infer
      "struct node { int v; struct node *next; };\n\
       int g;\n\
       int add(int a, int b) { return a + b; }\n\
       int main() { struct node n; n.v = add(g, 2); return n.v; }"
  in
  check "two functions" 2 (List.length p.Typed.funcs)

let test_sema_rejects () =
  check_bool "unknown variable" true (sema_fails "int main() { return y; }");
  check_bool "unknown function" true (sema_fails "int main() { return f(); }");
  check_bool "arity mismatch" true
    (sema_fails "int f(int a) { return a; } int main() { return f(); }");
  check_bool "assign to rvalue" true (sema_fails "int main() { 1 = 2; return 0; }");
  check_bool "deref of int" true (sema_fails "int main() { int x; return *x; }");
  check_bool "unknown field" true
    (sema_fails "struct s { int a; }; int main() { struct s v; return v.b; }");
  check_bool "break outside loop" true (sema_fails "int main() { break; return 0; }");
  check_bool "duplicate local" true
    (sema_fails "int main() { int x; int x; return 0; }");
  check_bool "missing main" true (sema_fails "int f() { return 0; }");
  check_bool "void variable" true (sema_fails "int main() { void v; return 0; }")

let test_sema_addr_taken () =
  let p =
    infer
      "int main() { int a; int b; int *p; p = &a; b = a; return *p + b; }"
  in
  let main = List.hd p.Typed.funcs in
  let local name =
    List.find (fun (l : Typed.local) -> l.Typed.local_name = name) main.Typed.locals
  in
  check_bool "a is address-taken" true (local "a").Typed.addr_taken;
  check_bool "b is not" false (local "b").Typed.addr_taken;
  check_bool "p is not" false (local "p").Typed.addr_taken

let test_sema_array_decay () =
  (* arrays decay to pointers as arguments and in arithmetic *)
  let p =
    infer
      "int sum(int *v, int n) { return v[n-1]; }\n\
       int main() { int a[4]; a[0] = 1; return sum(a, 4); }"
  in
  check "compiled" 2 (List.length p.Typed.funcs)

let test_sema_string_interning () =
  let p =
    infer "int main() { char *a; char *b; a = \"x\"; b = \"x\"; return 0; }"
  in
  check "same literal interned once" 1 (List.length p.Typed.strings)

let test_struct_layout () =
  let t = Structs.create () in
  Structs.define t
    { Ast.struct_name = "mix"
    ; fields = [ (Ast.Tchar, "c"); (Ast.Tint, "i"); (Ast.Tchar, "d") ]
    ; struct_line = 1 };
  check "char at 0" 0 (Structs.field t ~struct_name:"mix" ~field_name:"c").Structs.offset;
  check "int aligned to 4" 4 (Structs.field t ~struct_name:"mix" ~field_name:"i").Structs.offset;
  check "trailing char" 8 (Structs.field t ~struct_name:"mix" ~field_name:"d").Structs.offset;
  check "size rounded to align" 12 (Structs.size_of t (Ast.Tstruct "mix"));
  check "array of structs" 36 (Structs.size_of t (Ast.Tarray (Ast.Tstruct "mix", 3)))

let suite =
  [ Alcotest.test_case "lexer: basics" `Quick test_lexer_basics
  ; Alcotest.test_case "lexer: operators" `Quick test_lexer_operators
  ; Alcotest.test_case "lexer: comments" `Quick test_lexer_comments
  ; Alcotest.test_case "lexer: lines" `Quick test_lexer_line_numbers
  ; Alcotest.test_case "lexer: errors" `Quick test_lexer_errors
  ; Alcotest.test_case "parser: precedence" `Quick test_precedence
  ; Alcotest.test_case "parser: unary/postfix" `Quick test_unary_and_postfix
  ; Alcotest.test_case "parser: sugar" `Quick test_sugar
  ; Alcotest.test_case "parser: array dims" `Quick test_array_dims
  ; Alcotest.test_case "parser: structs/params" `Quick test_struct_and_params
  ; Alcotest.test_case "parser: errors" `Quick test_parser_errors
  ; Alcotest.test_case "sema: accepts valid" `Quick test_sema_accepts_valid
  ; Alcotest.test_case "sema: rejects invalid" `Quick test_sema_rejects
  ; Alcotest.test_case "sema: address taken" `Quick test_sema_addr_taken
  ; Alcotest.test_case "sema: array decay" `Quick test_sema_array_decay
  ; Alcotest.test_case "sema: string interning" `Quick test_sema_string_interning
  ; Alcotest.test_case "sema: struct layout" `Quick test_struct_layout ]
