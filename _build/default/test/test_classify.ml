(* Tests for the compiler-directed load classification (paper
   Section 4), including direct reproductions of the Figure 4
   examples. *)

module Ir = Elag_ir.Ir
module Insn = Elag_isa.Insn
module Classify = Elag_core.Classify
module Parser = Elag_minic.Parser
module Sema = Elag_minic.Sema
module Lower = Elag_ir.Lower
module Opt = Elag_opt.Driver

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mkfunc blocks =
  { Ir.name = "f"; params = []; blocks; slots = []; next_vreg = 100; next_label = 0 }

let block label insts term = { Ir.label; insts; term }

let load ?(spec = Insn.Ld_n) dst addr =
  Ir.Load { spec; size = Insn.Word; sign = Insn.Signed; dst; addr }

let spec_counts (f : Ir.func) =
  List.fold_left
    (fun (n, p, e) inst ->
      match inst with
      | Ir.Load { spec = Insn.Ld_n; _ } -> (n + 1, p, e)
      | Ir.Load { spec = Insn.Ld_p; _ } -> (n, p + 1, e)
      | Ir.Load { spec = Insn.Ld_e; _ } -> (n, p, e + 1)
      | _ -> (n, p, e))
    (0, 0, 0)
    (List.concat_map (fun (b : Ir.block) -> b.Ir.insts) f.Ir.blocks)

let spec_of_load (f : Ir.func) ~block_label ~index =
  let b = Ir.find_block f block_label in
  match List.nth b.Ir.insts index with
  | Ir.Load { spec; _ } -> spec
  | _ -> Alcotest.fail "expected a load"

let check_spec name expected actual =
  Alcotest.(check string) name
    (Fmt.str "%a" Insn.pp_load_spec expected)
    (Fmt.str "%a" Insn.pp_load_spec actual)

(* --- Figure 4(a)/(b): the for loop ------------------------------------ *)
(* for (i=0; i<N; i++) { .. = arr1[ind[i]]; .. = arr2[i]; }
     op1  ld_p r4, r17(0)   <- ind[i], pointer-IV over ind
     op3  ld_n r6, r19(r5)  <- arr1[r4<<2]: index is load-derived
     op4  ld_p r7, r18(0)   <- arr2[i] *)
let test_figure4_for_loop () =
  let v_ind_ptr = 17 and v_arr2_ptr = 18 and v_arr1 = 19 in
  let v_i = 1 and v4 = 4 and v5 = 5 and v6 = 6 and v7 = 7 in
  let f =
    mkfunc
      [ block "entry"
          [ Ir.Mov (v_i, Ir.Imm 0)
          ; Ir.Global_addr (v_ind_ptr, "ind")
          ; Ir.Global_addr (v_arr2_ptr, "arr2")
          ; Ir.Global_addr (v_arr1, "arr1") ]
          (Ir.Jmp "loop")
      ; block "loop"
          [ load v4 (Ir.Base (v_ind_ptr, 0))        (* op1: ind walk *)
          ; Ir.Bin (Ir.Sll, v5, Ir.Reg v4, Ir.Imm 2) (* op2 *)
          ; load v6 (Ir.Base_index (v_arr1, v5))    (* op3: arr1[ind[i]] *)
          ; load v7 (Ir.Base (v_arr2_ptr, 0))       (* op4: arr2 walk *)
          ; Ir.Bin (Ir.Add, v_i, Ir.Reg v_i, Ir.Imm 1)
          ; Ir.Bin (Ir.Add, v_arr2_ptr, Ir.Reg v_arr2_ptr, Ir.Imm 4)
          ; Ir.Bin (Ir.Add, v_ind_ptr, Ir.Reg v_ind_ptr, Ir.Imm 4) ]
          (Ir.Br { cond = Insn.Lt; src1 = Ir.Reg v_i; src2 = Ir.Imm 100
                 ; ifso = "loop"; ifnot = "exit" })
      ; block "exit" [] (Ir.Ret None) ]
  in
  Classify.run_func f;
  check_spec "op1 (ind[i]) is ld_p" Insn.Ld_p (spec_of_load f ~block_label:"loop" ~index:0);
  check_spec "op3 (arr1[ind[i]]) is ld_n" Insn.Ld_n (spec_of_load f ~block_label:"loop" ~index:2);
  check_spec "op4 (arr2[i]) is ld_p" Insn.Ld_p (spec_of_load f ~block_label:"loop" ~index:3)

(* --- Figure 4(c)/(d): the pointer-chasing while loop -------------------- *)
(* while (p) { ..=p->f1; ..=p->f2; p=p->next; }
   op11..op13 all base r2, register+offset: the largest group -> ld_e *)
let test_figure4_while_loop () =
  let v_p = 2 and v3 = 3 and v4 = 4 in
  let f =
    mkfunc
      [ block "entry" [] (Ir.Jmp "head")
      ; block "head" []
          (Ir.Br { cond = Insn.Ne; src1 = Ir.Reg v_p; src2 = Ir.Imm 0
                 ; ifso = "body"; ifnot = "exit" })
      ; block "body"
          [ load v3 (Ir.Base (v_p, 0))   (* op11: p->f1 *)
          ; load v4 (Ir.Base (v_p, 4))   (* op12: p->f2 *)
          ; load v_p (Ir.Base (v_p, 8))  (* op13: p = p->next *) ]
          (Ir.Jmp "head")
      ; block "exit" [] (Ir.Ret None) ]
  in
  Classify.run_func f;
  check_spec "op11 is ld_e" Insn.Ld_e (spec_of_load f ~block_label:"body" ~index:0);
  check_spec "op12 is ld_e" Insn.Ld_e (spec_of_load f ~block_label:"body" ~index:1);
  check_spec "op13 is ld_e" Insn.Ld_e (spec_of_load f ~block_label:"body" ~index:2)

(* Load-dependent loads in a smaller base group are ld_n, not ld_e. *)
let test_smaller_group_gets_ld_n () =
  let v_p = 2 and v_q = 3 in
  let f =
    mkfunc
      [ block "entry" [] (Ir.Jmp "head")
      ; block "head" []
          (Ir.Br { cond = Insn.Ne; src1 = Ir.Reg v_p; src2 = Ir.Imm 0
                 ; ifso = "body"; ifnot = "exit" })
      ; block "body"
          [ load 4 (Ir.Base (v_p, 0))
          ; load 5 (Ir.Base (v_p, 4))
          ; load 6 (Ir.Base (v_q, 0))   (* lone load off q *)
          ; load v_p (Ir.Base (v_p, 8))
          ; load v_q (Ir.Base (v_q, 4)) ]
          (Ir.Jmp "head")
      ; block "exit" [] (Ir.Ret None) ]
  in
  Classify.run_func f;
  check_spec "p group wins ld_e" Insn.Ld_e (spec_of_load f ~block_label:"body" ~index:0);
  check_spec "q group is ld_n" Insn.Ld_n (spec_of_load f ~block_label:"body" ~index:2);
  check_spec "q chain is ld_n" Insn.Ld_n (spec_of_load f ~block_label:"body" ~index:4)

(* --- acyclic heuristics -------------------------------------------------- *)

let test_acyclic_absolute_is_ld_p () =
  let f =
    mkfunc
      [ block "entry"
          [ load 1 (Ir.Abs_sym ("glob", 0))
          ; load 2 (Ir.Abs 4096)
          ; load 3 (Ir.Base (1, 0))
          ; load 4 (Ir.Base (1, 4))
          ; load 5 (Ir.Base (2, 0)) ]
          (Ir.Ret None) ]
  in
  Classify.run_func f;
  check_spec "symbolic absolute -> ld_p" Insn.Ld_p (spec_of_load f ~block_label:"entry" ~index:0);
  check_spec "numeric absolute -> ld_p" Insn.Ld_p (spec_of_load f ~block_label:"entry" ~index:1);
  check_spec "largest base group -> ld_e" Insn.Ld_e (spec_of_load f ~block_label:"entry" ~index:2);
  check_spec "same group -> ld_e" Insn.Ld_e (spec_of_load f ~block_label:"entry" ~index:3);
  check_spec "other base -> ld_n" Insn.Ld_n (spec_of_load f ~block_label:"entry" ~index:4)

(* Call results are treated as load-derived. *)
let test_call_result_is_load_derived () =
  let f =
    mkfunc
      [ block "entry" [] (Ir.Jmp "head")
      ; block "head" []
          (Ir.Br { cond = Insn.Ne; src1 = Ir.Reg 9; src2 = Ir.Imm 0
                 ; ifso = "body"; ifnot = "exit" })
      ; block "body"
          [ Ir.Call { dst = Some 1; callee = "next"; args = [] }
          ; load 2 (Ir.Base (1, 0))
          ; Ir.Bin (Ir.Add, 9, Ir.Reg 9, Ir.Imm (-1)) ]
          (Ir.Jmp "head")
      ; block "exit" [] (Ir.Ret None) ]
  in
  Classify.run_func f;
  (* load off a call result is load-dependent; as the only (largest)
     reg+offset group it becomes ld_e *)
  check_spec "load off call result" Insn.Ld_e (spec_of_load f ~block_label:"body" ~index:1)

let test_clear_resets_everything () =
  let f =
    mkfunc
      [ block "entry"
          [ load ~spec:Insn.Ld_p 1 (Ir.Abs 4096)
          ; load ~spec:Insn.Ld_e 2 (Ir.Base (1, 0)) ]
          (Ir.Ret None) ]
  in
  Classify.clear_func f;
  let n, p, e = spec_counts f in
  check "all ld_n" 2 n;
  check "no ld_p" 0 p;
  check "no ld_e" 0 e

(* --- end-to-end classification of compiled MiniC ------------------------ *)

let compile_classified src =
  let ir = Lower.lower_program (Sema.check (Parser.parse src)) in
  ignore (Opt.optimize ir);
  Classify.run ir;
  ir

let test_pointer_loop_end_to_end () =
  let ir =
    compile_classified
      "struct node { int v; struct node *next; }; \
       struct node *head; \
       int main() { struct node *p = head; int s = 0; \
       while (p) { s = s + p->v; p = p->next; } return s; }"
  in
  let main = List.find (fun (f : Ir.func) -> f.Ir.name = "main") ir.Ir.funcs in
  let _, _, e = spec_counts main in
  check_bool "pointer loop produces ld_e loads" true (e >= 2)

let test_array_loop_end_to_end () =
  let ir =
    compile_classified
      "int tab[128]; \
       int main() { int i; int s = 0; \
       for (i = 0; i < 128; i++) { s = s + tab[i]; } return s; }"
  in
  let main = List.find (fun (f : Ir.func) -> f.Ir.name = "main") ir.Ir.funcs in
  let _, p, _ = spec_counts main in
  check_bool "array loop produces ld_p loads" true (p >= 1)

let suite =
  [ Alcotest.test_case "figure 4a/4b for loop" `Quick test_figure4_for_loop
  ; Alcotest.test_case "figure 4c/4d while loop" `Quick test_figure4_while_loop
  ; Alcotest.test_case "smaller group -> ld_n" `Quick test_smaller_group_gets_ld_n
  ; Alcotest.test_case "acyclic rules" `Quick test_acyclic_absolute_is_ld_p
  ; Alcotest.test_case "call results load-derived" `Quick test_call_result_is_load_derived
  ; Alcotest.test_case "clear resets" `Quick test_clear_resets_everything
  ; Alcotest.test_case "pointer loop end-to-end" `Quick test_pointer_loop_end_to_end
  ; Alcotest.test_case "array loop end-to-end" `Quick test_array_loop_end_to_end ]
