test/test_predict.ml: Alcotest Elag_predict List Option QCheck QCheck_alcotest Random Test
