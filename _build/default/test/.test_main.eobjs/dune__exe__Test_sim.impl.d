test/test_sim.ml: Alcotest Elag_harness Elag_isa Elag_sim Elag_workloads Fun List
