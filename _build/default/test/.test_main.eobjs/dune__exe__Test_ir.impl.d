test/test_ir.ml: Alcotest Elag_ir Elag_isa List
