test/test_main.ml: Alcotest Test_classify Test_codegen Test_harness Test_ir Test_isa Test_lang Test_minic Test_opt Test_predict Test_properties Test_sim Test_workloads
