test/test_properties.ml: Alcotest Array Elag_harness Elag_isa Elag_minic Elag_sim Elag_workloads Gen List QCheck QCheck_alcotest String
