test/test_minic.ml: Alcotest Elag_minic List Printf String
