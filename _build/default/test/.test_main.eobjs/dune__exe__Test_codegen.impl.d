test/test_codegen.ml: Alcotest Elag_codegen Elag_harness Elag_ir Elag_isa Elag_sim Elag_workloads Fun List Printf String
