test/test_classify.ml: Alcotest Elag_core Elag_ir Elag_isa Elag_minic Elag_opt Fmt List
