test/test_isa.ml: Alcotest Array Elag_isa List QCheck QCheck_alcotest Test
