test/test_workloads.ml: Alcotest Elag_harness Elag_sim Elag_workloads List
