test/test_harness.ml: Alcotest Elag_harness Elag_isa Elag_sim Elag_workloads List
