test/test_lang.ml: Alcotest Elag_harness Elag_opt Elag_sim Elag_workloads List Printf
