test/test_opt.ml: Alcotest Elag_ir Elag_isa Elag_minic Elag_opt Hashtbl List Option QCheck QCheck_alcotest
