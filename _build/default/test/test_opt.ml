(* Optimizer tests: each pass is checked for the specific
   transformation it must perform (on IR produced from MiniC sources),
   and a qcheck property validates that local optimization preserves
   straight-line evaluation semantics on random programs. *)

module Ir = Elag_ir.Ir
module Insn = Elag_isa.Insn
module Alu = Elag_isa.Alu
module Parser = Elag_minic.Parser
module Sema = Elag_minic.Sema
module Lower = Elag_ir.Lower
module Opt = Elag_opt.Driver

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ir_of ?(optimize = true) src =
  let ir = Lower.lower_program (Sema.check (Parser.parse src)) in
  if optimize then ignore (Opt.optimize ir);
  ir

let func ir name =
  List.find (fun (f : Ir.func) -> f.Ir.name = name) ir.Ir.funcs

let all_insts (f : Ir.func) =
  List.concat_map (fun (b : Ir.block) -> b.Ir.insts) f.Ir.blocks

let count_insts pred f = List.length (List.filter pred (all_insts f))

let is_load = function Ir.Load _ -> true | _ -> false
let is_mul = function Ir.Bin (Ir.Mul, _, _, _) -> true | _ -> false

(* --- constant folding / propagation ------------------------------------ *)

let test_constant_folding () =
  let ir = ir_of "int main() { int a = 6; int b = 7; return a * b + 1; }" in
  let main = func ir "main" in
  (* everything folds to a single returned constant *)
  (match (Ir.entry_block main).Ir.term with
  | Ir.Ret (Some (Ir.Imm 43)) -> ()
  | Ir.Ret _ -> Alcotest.fail "return not folded to 43"
  | _ -> ());
  check "no remaining arithmetic" 0
    (count_insts (function Ir.Bin _ -> true | _ -> false) main)

let test_branch_folding_removes_dead_arm () =
  let ir =
    ir_of
      "int main() { int x; if (1 < 2) { x = 10; } else { x = 20; } return x; }"
  in
  let main = func ir "main" in
  check "single block after folding" 1 (List.length main.Ir.blocks);
  match (Ir.entry_block main).Ir.term with
  | Ir.Ret (Some (Ir.Imm 10)) -> ()
  | _ -> Alcotest.fail "dead branch arm survived"

let test_redundant_load_elimination () =
  (* two loads of g with no intervening store: one survives *)
  let ir =
    ir_of "int g; int use(int a, int b) { return a + b; } \
           int main() { return use(g, g); }"
  in
  check "one load of g" 1 (count_insts is_load (func ir "main"))

let test_store_to_load_forwarding () =
  let ir =
    ir_of "int g; int main() { g = 42; return g; }"
  in
  let main = func ir "main" in
  check "no load after store" 0 (count_insts is_load main);
  match (Ir.entry_block main).Ir.term with
  | Ir.Ret (Some (Ir.Imm 42)) -> ()
  | _ -> Alcotest.fail "store value not forwarded"

(* --- dead code ----------------------------------------------------------- *)

let test_dce_removes_unused () =
  let ir = ir_of "int main() { int unused = 5 * 13; return 1; }" in
  check "no insts remain" 0 (List.length (all_insts (func ir "main")))

let test_dce_keeps_stores_and_calls () =
  let ir =
    ir_of "int g; void f() { g = g + 1; } int main() { f(); return 0; }"
  in
  (* the call must survive even though its (absent) result is unused; after
     inlining it may have become the store itself *)
  let main = func ir "main" in
  let effects =
    count_insts (function Ir.Store _ | Ir.Call _ -> true | _ -> false) main
  in
  check_bool "side effect survives" true (effects >= 1)

(* --- inlining ------------------------------------------------------------- *)

let test_inlining_small_function () =
  let ir =
    ir_of
      "int sq(int x) { return x * x; } \
       int main() { int i; int s = 0; for (i = 0; i < 10; i++) { s = s + sq(i); } \
       return s; }"
  in
  check "no calls left in main" 0
    (count_insts (function Ir.Call _ -> true | _ -> false) (func ir "main"))

let test_recursive_not_inlined () =
  let ir =
    ir_of "int f(int n) { if (n < 1) return 0; return n + f(n - 1); } \
           int main() { return f(5); }"
  in
  check_bool "recursive call survives in f" true
    (count_insts (function Ir.Call _ -> true | _ -> false) (func ir "f") >= 1)

(* --- loop optimizations ---------------------------------------------------- *)

let test_licm_hoists_invariant () =
  let ir =
    ir_of
      "int a; int b; \
       int main() { int i; int s = 0; \
       for (i = 0; i < 100; i++) { s = s + a * b; } return s; }"
  in
  let main = func ir "main" in
  let cfg = Elag_ir.Cfg.of_func main in
  let dom = Elag_ir.Dominators.compute cfg in
  let loops = Elag_ir.Loops.compute cfg dom in
  check "loop present" 1 (List.length loops);
  let loop = List.hd loops in
  let in_loop_muls =
    List.length
      (List.concat_map
         (fun (b : Ir.block) ->
           if Elag_ir.Loops.mem loop b.Ir.label then List.filter is_mul b.Ir.insts
           else [])
         main.Ir.blocks)
  in
  check "multiply hoisted out of loop" 0 in_loop_muls

let test_strength_reduction_removes_mul () =
  let ir =
    ir_of
      "int acc; \
       int main() { int i; int s = 0; \
       for (i = 0; i < 50; i++) { s = s + i * 12; } acc = s; return s; }"
  in
  let main = func ir "main" in
  let cfg = Elag_ir.Cfg.of_func main in
  let dom = Elag_ir.Dominators.compute cfg in
  let loops = Elag_ir.Loops.compute cfg dom in
  let loop = List.hd loops in
  let in_loop_muls =
    List.length
      (List.concat_map
         (fun (b : Ir.block) ->
           if Elag_ir.Loops.mem loop b.Ir.label then List.filter is_mul b.Ir.insts
           else [])
         main.Ir.blocks)
  in
  check "loop multiply strength-reduced" 0 in_loop_muls

let test_addr_promote_makes_reg_offset () =
  (* an array sweep must end up with register+offset (pointer) loads,
     the Figure 4b code shape *)
  let ir =
    ir_of
      "int tab[64]; \
       int main() { int i; int s = 0; \
       for (i = 0; i < 64; i++) { s = s + tab[i]; } return s; }"
  in
  let main = func ir "main" in
  let reg_reg_loads =
    count_insts
      (function Ir.Load { addr = Ir.Base_index _; _ } -> true | _ -> false)
      main
  in
  let reg_offset_loads =
    count_insts
      (function Ir.Load { addr = Ir.Base _; _ } -> true | _ -> false)
      main
  in
  check "no reg+reg loads remain" 0 reg_reg_loads;
  check_bool "pointer loads present" true (reg_offset_loads >= 1)

let test_unroll_multiplies_static_loads () =
  let src =
    "int tab[64]; \
     int main() { int i; int s = 0; \
     for (i = 0; i < 64; i++) { s = s + tab[i]; } return s; }"
  in
  let ir4 = Lower.lower_program (Sema.check (Parser.parse src)) in
  ignore (Opt.optimize ~unroll_factor:4 ir4);
  let ir1 = Lower.lower_program (Sema.check (Parser.parse src)) in
  ignore (Opt.optimize ~unroll_factor:0 ir1);
  let loads ir = count_insts is_load (func ir "main") in
  check "unrolled 4x" (4 * loads ir1) (loads ir4)

(* --- interprocedural purity ------------------------------------------------- *)

let test_purity_summaries () =
  let ir =
    ir_of ~optimize:false
      "int g;        int pure_math(int x) { return x * x + 1; }        int reads_mem(int i) { return g + i; }        void writes_mem(int v) { g = v; }        int chained(int x) { return reads_mem(x) + 1; }        int main() { writes_mem(pure_math(chained(2))); return g; }"
  in
  let t = Elag_opt.Purity.analyze ir in
  let s name = Elag_opt.Purity.find t name in
  check_bool "pure_math does not write" false (s "pure_math").Elag_opt.Purity.writes_memory;
  check_bool "pure_math returns arithmetic" false (s "pure_math").Elag_opt.Purity.returns_loaded;
  check_bool "reads_mem does not write" false (s "reads_mem").Elag_opt.Purity.writes_memory;
  check_bool "reads_mem returns loaded" true (s "reads_mem").Elag_opt.Purity.returns_loaded;
  check_bool "writes_mem writes" true (s "writes_mem").Elag_opt.Purity.writes_memory;
  check_bool "main transitively writes" true (s "main").Elag_opt.Purity.writes_memory;
  check_bool "chained propagates loaded return" true (s "chained").Elag_opt.Purity.returns_loaded;
  check_bool "unknown callee conservative" true
    (Elag_opt.Purity.find t "nope").Elag_opt.Purity.writes_memory;
  check_bool "builtin harmless" false
    (Elag_opt.Purity.find t "print_int").Elag_opt.Purity.writes_memory

let test_licm_hoists_load_past_pure_call () =
  (* with summaries, the loop-invariant load of [g] hoists even though
     the loop calls a (store-free) function too large to inline *)
  let src =
    "int g;      int noise(int x) {        int a = x; int i;        for (i = 0; i < 4; i++) { a = a * 3 + i; a = a ^ (a >> 2);          a = a + i * 7; a = a - (a >> 3); a = a | 1; a = a * 5;          a = a ^ 9; a = a + 2; a = a * 3; a = a - 4; a = a ^ 5; }        return a; }      int main() { int i; int s = 0;        for (i = 0; i < 50; i++) { s = s + g + noise(i); } return s; }"
  in
  let ir = ir_of ~optimize:false src in
  ignore (Elag_opt.Inline.run ~threshold:10 ir);  (* keep noise out-of-line *)
  let main = func ir "main" in
  let fix () = for _ = 1 to 8 do
    ignore (Elag_opt.Simplify_cfg.run main);
    ignore (Elag_opt.Collapse_movs.run main);
    ignore (Elag_opt.Local_opt.run main);
    ignore (Elag_opt.Global_prop.run main);
    ignore (Elag_opt.Dce.run main)
  done in
  fix ();
  (* without summaries: the call blocks hoisting *)
  ignore (Elag_opt.Licm.run main);
  fix ();
  let loads_in_loop () =
    let cfg = Elag_ir.Cfg.of_func main in
    let dom = Elag_ir.Dominators.compute cfg in
    match Elag_ir.Loops.compute cfg dom with
    | loop :: _ ->
      List.length
        (List.concat_map
           (fun (b : Ir.block) ->
             if Elag_ir.Loops.mem loop b.Ir.label then List.filter is_load b.Ir.insts
             else [])
           main.Ir.blocks)
    | [] -> -1
  in
  check_bool "load still in loop without summaries" true (loads_in_loop () >= 1);
  let summaries = Elag_opt.Purity.analyze ir in
  ignore (Elag_opt.Licm.run ~summaries main);
  fix ();
  check "load hoisted with summaries" 0 (loads_in_loop ())

(* --- semantics preservation (property) ------------------------------------- *)

(* A tiny interpreter for straight-line instruction lists. *)
let interp_block insts term =
  let regs = Hashtbl.create 16 in
  let get = function Ir.Reg v -> Option.value (Hashtbl.find_opt regs v) ~default:0
                   | Ir.Imm n -> n in
  List.iter
    (fun inst ->
      match inst with
      | Ir.Bin (op, d, a, b) ->
        Hashtbl.replace regs d (Alu.eval (Ir.alu_of_binop op) (get a) (get b))
      | Ir.Mov (d, a) -> Hashtbl.replace regs d (get a)
      | _ -> ())
    insts;
  match term with
  | Ir.Ret (Some op) -> get op
  | _ -> 0

let random_straightline =
  let open QCheck.Gen in
  let op = oneofl [ Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor; Ir.Sll; Ir.Slt ] in
  let operand used =
    if used = 0 then map (fun n -> Ir.Imm n) (int_range (-64) 64)
    else
      frequency
        [ (2, map (fun v -> Ir.Reg (v mod used)) (int_range 0 (used - 1)))
        ; (1, map (fun n -> Ir.Imm n) (int_range (-64) 64)) ]
  in
  let rec gen_insts used n =
    if n = 0 then return []
    else
      op >>= fun o ->
      operand used >>= fun a ->
      operand used >>= fun b ->
      gen_insts (used + 1) (n - 1) >>= fun rest ->
      return (Ir.Bin (o, used, a, b) :: rest)
  in
  int_range 1 20 >>= fun n ->
  gen_insts 0 n >>= fun insts ->
  int_range 0 (n - 1) >>= fun ret ->
  return (insts, Ir.Ret (Some (Ir.Reg ret)))

let local_opt_preserves_semantics =
  QCheck.Test.make ~name:"local_opt preserves straight-line semantics" ~count:300
    (QCheck.make random_straightline)
    (fun (insts, term) ->
      let before = interp_block insts term in
      let b = { Ir.label = "b"; insts; term } in
      let f =
        { Ir.name = "g"; params = []; blocks = [ b ]
        ; slots = []; next_vreg = 100; next_label = 0 }
      in
      ignore (Elag_opt.Local_opt.run f);
      let b' = Ir.entry_block f in
      interp_block b'.Ir.insts b'.Ir.term = before)

let dce_never_changes_output =
  QCheck.Test.make ~name:"dce preserves straight-line semantics" ~count:300
    (QCheck.make random_straightline)
    (fun (insts, term) ->
      let before = interp_block insts term in
      let b = { Ir.label = "b"; insts; term } in
      let f =
        { Ir.name = "g"; params = []; blocks = [ b ]
        ; slots = []; next_vreg = 100; next_label = 0 }
      in
      ignore (Elag_opt.Dce.run f);
      let b' = Ir.entry_block f in
      interp_block b'.Ir.insts b'.Ir.term = before)

let suite =
  [ Alcotest.test_case "const folding" `Quick test_constant_folding
  ; Alcotest.test_case "branch folding" `Quick test_branch_folding_removes_dead_arm
  ; Alcotest.test_case "redundant load elim" `Quick test_redundant_load_elimination
  ; Alcotest.test_case "store-to-load forwarding" `Quick test_store_to_load_forwarding
  ; Alcotest.test_case "dce removes dead" `Quick test_dce_removes_unused
  ; Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_stores_and_calls
  ; Alcotest.test_case "inlining" `Quick test_inlining_small_function
  ; Alcotest.test_case "recursion not inlined" `Quick test_recursive_not_inlined
  ; Alcotest.test_case "licm hoists" `Quick test_licm_hoists_invariant
  ; Alcotest.test_case "strength reduction" `Quick test_strength_reduction_removes_mul
  ; Alcotest.test_case "pointer-iv formation (fig 4b)" `Quick
      test_addr_promote_makes_reg_offset
  ; Alcotest.test_case "unrolling" `Quick test_unroll_multiplies_static_loads
  ; Alcotest.test_case "purity summaries" `Quick test_purity_summaries
  ; Alcotest.test_case "licm past pure calls" `Quick test_licm_hoists_load_past_pure_call ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [ local_opt_preserves_semantics; dce_never_changes_output ]
