(* End-to-end language tests: compile MiniC programs through the full
   pipeline (front end, optimizer, classifier, code generator) and
   check the emulator's output.  Every program is run at all three
   optimization levels, so these double as semantics-preservation
   tests for the optimizer. *)

module Compile = Elag_harness.Compile
module Emulator = Elag_sim.Emulator
module Driver = Elag_opt.Driver

let run_at level src =
  let options = { Compile.default_options with opt_level = level } in
  let program = Compile.compile ~options src in
  let emu = Emulator.run_program ~max_insns:50_000_000 program in
  Emulator.output emu

let check_program name src expected =
  List.iter
    (fun (level, tag) ->
      Alcotest.(check string)
        (Printf.sprintf "%s at %s" name tag)
        expected (run_at level src))
    [ (Driver.O0, "O0"); (Driver.O1, "O1"); (Driver.O2, "O2") ]

let t name src expected =
  Alcotest.test_case name `Quick (fun () -> check_program name src expected)

(* like [t], with the workload runtime prelude (alloc, rand) prepended *)
let tr name src expected =
  Alcotest.test_case name `Quick (fun () ->
      check_program name (Elag_workloads.Runtime.with_prelude src) expected)

let suite =
  [ t "arithmetic"
      "int main() { print_int(2 + 3 * 4 - 6 / 2); return 0; }"
      "11\n"
  ; t "division truncates toward zero"
      "int main() { print_int((0 - 7) / 2); print_int((0 - 7) % 2); return 0; }"
      "-3\n-1\n"
  ; t "32-bit overflow wraps"
      "int main() { int x = 2147483647; print_int(x + 1); return 0; }"
      "-2147483648\n"
  ; t "bitwise and shifts"
      "int main() { print_int((0xF0 | 0x0F) ^ 0xFF); print_int(1 << 10); \
       print_int((0-8) >> 1); return 0; }"
      "0\n1024\n-4\n"
  ; t "comparison chain"
      "int main() { print_int(1 < 2); print_int(2 <= 1); print_int(3 == 3); \
       print_int(3 != 3); return 0; }"
      "1\n0\n1\n0\n"
  ; t "while loop"
      "int main() { int i = 0; int s = 0; while (i < 10) { s = s + i; i = i + 1; } \
       print_int(s); return 0; }"
      "45\n"
  ; t "for with break and continue"
      "int main() { int i; int s = 0; for (i = 0; i < 100; i++) { \
       if (i % 2 == 0) { continue; } if (i > 10) { break; } s = s + i; } \
       print_int(s); return 0; }"
      "25\n"
  ; t "do-while runs once"
      "int main() { int n = 0; do { n = n + 1; } while (n < 0); print_int(n); return 0; }"
      "1\n"
  ; t "nested loops"
      "int main() { int i; int j; int s = 0; for (i = 0; i < 5; i++) \
       for (j = 0; j < 5; j++) s = s + i * j; print_int(s); return 0; }"
      "100\n"
  ; t "short circuit evaluation"
      "int g; int side(int v) { g = g + 1; return v; } \
       int main() { g = 0; if (side(0) && side(1)) { g = g + 100; } \
       if (side(1) || side(1)) { g = g + 1000; } print_int(g); return 0; }"
      "1002\n"
  ; t "ternary"
      "int main() { int a = 5; print_int(a > 3 ? a * 2 : a - 1); return 0; }"
      "10\n"
  ; t "global arrays with initializers"
      "int tab[5] = {10, 20, 30, 40, 50}; \
       int main() { int i; int s = 0; for (i = 0; i < 5; i++) s = s + tab[i]; \
       print_int(s); print_int(tab[2]); return 0; }"
      "150\n30\n"
  ; t "negative initializers"
      "int tab[3] = {-1, -2, -3}; int g = -7; \
       int main() { print_int(tab[0] + tab[1] + tab[2] + g); return 0; }"
      "-13\n"
  ; t "local arrays"
      "int main() { int a[8]; int i; for (i = 0; i < 8; i++) a[i] = i * i; \
       print_int(a[7]); return 0; }"
      "49\n"
  ; t "2-D arrays"
      "int m[3][4]; int main() { int r; int c; \
       for (r = 0; r < 3; r++) for (c = 0; c < 4; c++) m[r][c] = r * 10 + c; \
       print_int(m[2][3]); print_int(m[0][1]); return 0; }"
      "23\n1\n"
  ; t "char arrays and strings"
      "char msg[6] = \"hello\"; \
       int main() { int i; for (i = 0; i < 5; i++) print_char(msg[i]); \
       print_char(10); print_int(msg[0]); return 0; }"
      "hello\n104\n"
  ; t "string literals"
      "int len(char *s) { int n = 0; while (s[n]) n = n + 1; return n; } \
       int main() { print_int(len(\"early address\")); return 0; }"
      "13\n"
  ; t "byte stores truncate"
      "char b[4]; int main() { b[0] = 300; print_int(b[0]); return 0; }"
      "44\n"
  ; t "pointers and address-of"
      "int main() { int x = 5; int *p = &x; *p = *p + 37; print_int(x); return 0; }"
      "42\n"
  ; t "pointer arithmetic"
      "int a[4] = {1, 2, 3, 4}; \
       int main() { int *p = a; p = p + 2; print_int(*p); print_int(*(p - 1)); \
       print_int(p - a); return 0; }"
      "3\n2\n2\n"
  ; t "pointer to pointer"
      "int main() { int x = 7; int *p = &x; int **q = &p; **q = 9; \
       print_int(x); return 0; }"
      "9\n"
  ; t "structs"
      "struct point { int x; int y; }; \
       int main() { struct point p; p.x = 3; p.y = 4; \
       print_int(p.x * p.x + p.y * p.y); return 0; }"
      "25\n"
  ; t "struct pointers and arrow"
      "struct point { int x; int y; }; \
       int main() { struct point p; struct point *q = &p; q->x = 11; q->y = 31; \
       print_int(q->x + p.y); return 0; }"
      "42\n"
  ; t "nested struct fields"
      "struct inner { int v; }; struct outer { int pad; struct inner in; }; \
       int main() { struct outer o; o.in.v = 77; print_int(o.in.v); return 0; }"
      "77\n"
  ; tr "linked list on the heap"
      "struct cell { int v; struct cell *next; }; \
       int main() { struct cell *head = (struct cell*)0; int i; \
       for (i = 0; i < 5; i++) { \
         struct cell *c = (struct cell*)alloc(sizeof(struct cell)); \
         c->v = i; c->next = head; head = c; } \
       int s = 0; while (head) { s = s * 10 + head->v; head = head->next; } \
       print_int(s); return 0; }"
      "43210\n"
  ; t "recursion"
      "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } \
       int main() { print_int(fib(15)); return 0; }"
      "610\n"
  ; t "mutual recursion"
      "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); } \
       int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); } \
       int main() { print_int(is_even(10)); print_int(is_odd(10)); return 0; }"
      "1\n0\n"
  ; t "many arguments"
      "int sum8(int a, int b, int c, int d, int e, int f, int g, int h) { \
       return a + b + c + d + e + f + g + h; } \
       int main() { print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); return 0; }"
      "36\n"
  ; t "globals persist across calls"
      "int counter; void tick() { counter = counter + 1; } \
       int main() { int i; for (i = 0; i < 7; i++) tick(); \
       print_int(counter); return 0; }"
      "7\n"
  ; t "casts between int and pointer"
      "int g = 123; int main() { int addr = (int)&g; int *p = (int*)addr; \
       print_int(*p); return 0; }"
      "123\n"
  ; t "sizeof"
      "struct s { int a; char b; }; \
       int main() { print_int(sizeof(int)); print_int(sizeof(char)); \
       print_int(sizeof(struct s)); print_int(sizeof(int*)); return 0; }"
      "4\n1\n8\n4\n"
  ; t "exit builtin stops execution"
      "int main() { print_int(1); exit(0); print_int(2); return 0; }"
      "1\n"
  ; t "assignment as expression value"
      "int main() { int a; int b; a = (b = 21) * 2; print_int(a + b); return 0; }"
      "63\n"
  ; t "logical not and bitwise not"
      "int main() { print_int(!5); print_int(!0); print_int(~0); return 0; }"
      "0\n1\n-1\n"
  ; t "shift by variable amounts"
      "int main() { int i; int v = 1; int s = 0; \
       for (i = 0; i < 8; i++) { s = s + (v << i); } print_int(s); return 0; }"
      "255\n"
  ; t "while with assignment condition"
      "int src[5] = {3, 1, 4, 1, 0}; \
       int main() { int i = 0; int v; int s = 0; \
       while ((v = src[i]) != 0) { s = s * 10 + v; i = i + 1; } \
       print_int(s); return 0; }"
      "3141\n"
  ; t "chars compare and convert"
      "int main() { char c = 'z'; print_int(c > 'a'); print_int(c - 'a'); \
       print_int('0' + 7); return 0; }"
      "1\n25\n55\n"
  ; t "struct array of structs"
      "struct p { int x; int y; }; struct p pts[3]; \
       int main() { int i; for (i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; } \
       print_int(pts[2].x + pts[2].y); return 0; }"
      "6\n"
  ; t "pointer into struct array"
      "struct p { int x; int y; }; struct p pts[3]; \
       int main() { struct p *q = &pts[1]; q->x = 9; q->y = 8; \
       print_int(pts[1].x * 10 + pts[1].y); return 0; }"
      "98\n"
  ; t "nested loop break only inner"
      "int main() { int i; int j; int s = 0; \
       for (i = 0; i < 3; i++) { for (j = 0; j < 10; j++) { \
       if (j == 2) { break; } s = s + 1; } } print_int(s); return 0; }"
      "6\n"
  ; t "sizeof array type"
      "int main() { print_int(sizeof(int[10])); print_int(sizeof(char[3])); return 0; }"
      "40\n3\n"
  ; t "dead code after return is harmless"
      "int main() { print_int(1); return 0; print_int(2); return 9; }"
      "1\n"
  ; t "void function early return"
      "int g; void f(int x) { if (x < 0) { return; } g = x; } \
       int main() { f(0 - 5); f(7); print_int(g); return 0; }"
      "7\n" ]
