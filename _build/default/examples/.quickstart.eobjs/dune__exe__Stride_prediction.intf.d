examples/stride_prediction.mli:
