examples/embedded_media.ml: Elag_harness Elag_sim Elag_workloads Fmt List Option
