examples/quickstart.ml: Elag_harness Elag_isa Elag_sim Elag_workloads Fmt List
