examples/pointer_chasing.mli:
