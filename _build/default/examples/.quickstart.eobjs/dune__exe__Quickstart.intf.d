examples/quickstart.mli:
