examples/pipeline_trace.ml: Array Elag_isa Elag_sim Fmt Fun List String
