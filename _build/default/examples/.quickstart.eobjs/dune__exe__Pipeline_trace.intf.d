examples/pipeline_trace.mli:
