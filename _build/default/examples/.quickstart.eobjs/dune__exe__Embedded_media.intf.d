examples/embedded_media.mli:
