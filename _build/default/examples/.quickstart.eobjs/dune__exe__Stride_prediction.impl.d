examples/stride_prediction.ml: Elag_harness Elag_predict Elag_sim Elag_workloads Fmt List
