examples/pointer_chasing.ml: Elag_harness Elag_isa Elag_sim Elag_workloads Fmt List
