(* Pipeline visualization: renders the paper's Figure 1 scenarios as
   cycle-by-cycle issue traces, showing the one-cycle load-use stall
   disappearing under ld_e and halving under ld_p.

   Run with:  dune exec examples/pipeline_trace.exe *)

module Insn = Elag_isa.Insn
module Layout = Elag_isa.Layout
module Program = Elag_isa.Program
module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Emulator = Elag_sim.Emulator

(* The Figure 1d while-loop over a scrambled ring: p->f1, p->f2,
   p = p->next. *)
let ring_program spec =
  let nodes = 8 in
  (* permuted ring so the chain is not stride-predictable *)
  let order = [| 0; 5; 2; 7; 1; 6; 3; 4 |] in
  let next_of = Array.make nodes 0 in
  Array.iteri (fun i n -> next_of.(n) <- order.((i + 1) mod nodes)) order;
  let node_words i = [ i * 10; i * 10 + 1; Layout.default_base + (12 * next_of.(i)) ] in
  let layout = Layout.create () in
  ignore
    (Layout.add layout ~label:"ring" ~align:4
       ~init:(Layout.Words (List.concat_map node_words (List.init nodes Fun.id))));
  let load dst off =
    Insn.Load
      { spec; size = Insn.Word; sign = Insn.Signed; dst
      ; addr = Insn.Base_offset (10, off) }
  in
  Program.assemble ~layout
    [ Program.Label "_start"
    ; Program.Insn (Insn.Li { dst = 10; imm = Layout.default_base })
    ; Program.Insn (Insn.Li { dst = 12; imm = 0 })
    ; Program.Insn (Insn.Li { dst = 13; imm = 0 })
    ; Program.Label "loop"
    ; Program.Insn (load 14 0)                                   (* p->f1 *)
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 13; src1 = 13; src2 = Insn.R 14 })
    ; Program.Insn (load 15 4)                                   (* p->f2 *)
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 13; src1 = 13; src2 = Insn.R 15 })
    ; Program.Insn (load 10 8)                                   (* p = p->next *)
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 12; src1 = 12; src2 = Insn.I 1 })
    ; Program.Insn (Insn.Branch { cond = Insn.Lt; src1 = 12; src2 = Insn.I 40; target = "loop" })
    ; Program.Insn Insn.Halt ]

type event = { pc : int; insn : Insn.t; cycle : int; latency : int }

let trace mechanism program ~skip ~count =
  let cfg = Config.with_mechanism mechanism Config.default in
  let t = Pipeline.create cfg in
  let events = ref [] in
  Pipeline.set_tracer t (fun pc insn cycle latency ->
      events := { pc; insn; cycle; latency } :: !events);
  ignore (Emulator.run_program ~observer:(Pipeline.observer t) program);
  let all = List.rev !events in
  (List.filteri (fun i _ -> i >= skip && i < skip + count) all,
   (Pipeline.stats t).Pipeline.cycles)

let render name events =
  Fmt.pr "@.%s@." name;
  match events with
  | [] -> ()
  | first :: _ ->
    let base = first.cycle in
    List.iter
      (fun e ->
        let col = e.cycle - base in
        Fmt.pr "  cycle %2d %s%-28s" col (String.make (min col 30) ' ')
          (Fmt.str "%a" Insn.pp e.insn);
        (match e.insn with
        | Insn.Load _ -> Fmt.pr "  (result after %d cycle%s)" e.latency
                           (if e.latency = 1 then "" else "s")
        | _ -> ());
        Fmt.pr "@.")
      events

let () =
  Fmt.pr
    "Figure 1d pipeline traces: two field loads and a pointer chase per@.\
     iteration, steady state (iteration 20 of 40).@.";
  (* one loop iteration = 7 instructions; skip into steady state *)
  let skip = 3 + (7 * 20) in
  let normal_events, normal_cycles =
    trace Config.No_early (ring_program Insn.Ld_n) ~skip ~count:7
  in
  render "normal loads (ld_n): the loop pays the load-use stalls" normal_events;
  let dual = Config.Dual { table_entries = 256; selection = Config.Compiler_directed } in
  let early_events, early_cycles = trace dual (ring_program Insn.Ld_e) ~skip ~count:7 in
  render "early-calculated loads (ld_e through R_addr)" early_events;
  Fmt.pr "@.total: %d cycles with ld_n, %d with ld_e (%.2fx)@." normal_cycles
    early_cycles
    (float_of_int normal_cycles /. float_of_int early_cycles);
  Fmt.pr
    "@.The field loads (offsets 0 and 4) hit R_addr bound to the chain@.\
     register and forward with zero latency.  The chase itself (offset 8)@.\
     still has a true data recurrence - its address IS the previous@.\
     load's data - but the dedicated R_addr adder + early cache access@.\
     shortens each hop from issue+EXE+MEM to adder+cache.@."
