(* Table-based address prediction deep dive: drives the Figure 3
   state machine directly, then shows the table capturing a strided
   kernel (the paper's Figure 1c / Figure 4a case) and the effect of
   table size under contention.

   Run with:  dune exec examples/stride_prediction.exe *)

module Stride_entry = Elag_predict.Stride_entry
module Addr_table = Elag_predict.Addr_table
module Compile = Elag_harness.Compile
module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline

let () =
  (* 1. The Figure 3 state machine on a strided address stream. *)
  Fmt.pr "Figure 3 state machine on addresses 100, 108, 116, ...:@.";
  let e = Stride_entry.allocate 100 in
  List.iter
    (fun ca ->
      let predicted = Stride_entry.predicted_address e in
      let correct = Stride_entry.update e ca in
      Fmt.pr "  access %d: predicted %d -> %s@." ca predicted
        (if correct then "CORRECT" else "wrong"))
    [ 108; 116; 124; 132; 140 ];

  (* 2. A matrix kernel dominated by strided loads: the prediction
        table captures nearly every access after warmup. *)
  let source =
    Elag_workloads.Runtime.with_prelude
      {|
int a[128 * 128];
int b[128];

int main() {
  int r;
  int c;
  int round;
  int sum = 0;
  for (r = 0; r < 128; r++) {
    for (c = 0; c < 128; c++) {
      a[r * 128 + c] = r + c;
    }
    b[r] = r;
  }
  for (round = 0; round < 20; round++) {
    for (r = 0; r < 128; r++) {
      int acc = 0;
      for (c = 0; c < 128; c++) {
        acc = acc + a[r * 128 + c] * b[c];
      }
      sum = (sum + acc) % 1000003;
    }
  }
  print_int(sum);
  return 0;
}
|}
  in
  let program = Compile.compile source in
  Fmt.pr "@.Strided kernel under table-based prediction:@.";
  let base =
    (fst (Pipeline.simulate (Config.with_mechanism Config.No_early Config.default) program))
      .Pipeline.cycles
  in
  List.iter
    (fun entries ->
      let cfg =
        Config.with_mechanism
          (Config.Table_only { entries; compiler_filtered = true })
          Config.default
      in
      let stats, _ = Pipeline.simulate cfg program in
      Fmt.pr
        "  %4d entries: %d/%d speculative accesses correct, speedup %.2fx@."
        entries stats.Pipeline.table_successes stats.Pipeline.table_attempts
        (float_of_int base /. float_of_int stats.Pipeline.cycles))
    [ 16; 64; 256 ];
  Fmt.pr
    "@.The same kernel's loads would defeat the early-calculation path:@.\
     their base registers are rewritten every iteration (Figure 1c),@.\
     which is why the compiler routes them to the table instead.@."
