(* Quickstart: compile a MiniC program with the paper's compiler
   heuristics, inspect the load classification, and measure the
   speedup from compiler-directed early load-address generation.

   Run with:  dune exec examples/quickstart.exe *)

module Compile = Elag_harness.Compile
module Program = Elag_isa.Program
module Insn = Elag_isa.Insn
module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Emulator = Elag_sim.Emulator

(* A program mixing the paper's two target patterns: a strided array
   walk (table prediction) and a pointer chase (early calculation). *)
let source =
  Elag_workloads.Runtime.with_prelude
    {|
struct node { int value; struct node *next; };

int table[2048];

struct node *build(int n) {
  struct node *head = (struct node*)0;
  int i;
  for (i = 0; i < n; i++) {
    struct node *c = (struct node*)alloc_node(sizeof(struct node));
    c->value = i;
    c->next = head;
    head = c;
  }
  return head;
}

int main() {
  int i;
  int round;
  int sum = 0;
  struct node *list = build(500);
  for (i = 0; i < 2048; i++) {
    table[i] = i * 3;
  }
  for (round = 0; round < 50; round++) {
    struct node *p = list;
    for (i = 0; i < 2048; i++) {
      sum = (sum + table[i]) & 0xFFFFF;       /* strided: ld_p */
    }
    while (p) {
      sum = (sum + p->value) & 0xFFFFF;       /* pointer chase: ld_e */
      p = p->next;
    }
  }
  print_int(sum);
  return 0;
}
|}

let () =
  (* 1. Compile: parse -> type-check -> optimize -> classify -> emit. *)
  let program = Compile.compile source in
  Fmt.pr "Compiled to %d EPA-32 instructions.@." (Program.length program);

  (* 2. Look at how the compiler classified the static loads. *)
  let count spec =
    List.length
      (List.filter
         (fun (_, insn) -> Insn.load_spec insn = Some spec)
         (Program.static_loads program))
  in
  Fmt.pr "Static loads: %d ld_n, %d ld_p, %d ld_e.@."
    (count Insn.Ld_n) (count Insn.Ld_p) (count Insn.Ld_e);

  (* 3. Check the program actually runs. *)
  let emu = Emulator.run_program program in
  Fmt.pr "Program output: %s" (Emulator.output emu);
  Fmt.pr "Dynamic instructions: %d@." (Emulator.retired emu);

  (* 4. Time it on the paper's machine, with and without the dual-path
        early address generation hardware. *)
  let cycles mechanism =
    let cfg = Config.with_mechanism mechanism Config.default in
    let stats, _ = Pipeline.simulate cfg program in
    stats.Pipeline.cycles
  in
  let base = cycles Config.No_early in
  let dual =
    cycles (Config.Dual { table_entries = 256; selection = Config.Compiler_directed })
  in
  Fmt.pr "Baseline: %d cycles.  Compiler-directed dual-path: %d cycles.@." base dual;
  Fmt.pr "Speedup: %.2fx@." (float_of_int base /. float_of_int dual)
