(* Pointer-chasing deep dive: reproduces the paper's Figure 1d
   scenario and shows why the early-calculation path (ld_e through
   R_addr) is the right mechanism for it while the prediction table is
   not.

   Run with:  dune exec examples/pointer_chasing.exe *)

module Compile = Elag_harness.Compile
module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Profile = Elag_harness.Profile
module Program = Elag_isa.Program
module Insn = Elag_isa.Insn

(* The paper's while-loop: three loads off the same base register,
   walking a scrambled (allocation-order-randomized) list so that
   addresses are NOT stride-predictable. *)
let source =
  Elag_workloads.Runtime.with_prelude
    {|
struct rec_t { int f1; int f2; struct rec_t *next; };

int main() {
  struct rec_t *head = (struct rec_t*)0;
  int i;
  int round;
  int sum = 0;
  for (i = 0; i < 2000; i++) {
    struct rec_t *r = (struct rec_t*)alloc_node(sizeof(struct rec_t));
    r->f1 = i;
    r->f2 = i * 7;
    r->next = head;
    head = r;
  }
  for (round = 0; round < 100; round++) {
    struct rec_t *p = head;
    while (p) {
      sum = (sum + p->f1 + p->f2) % 1000003;
      p = p->next;
    }
  }
  print_int(sum);
  return 0;
}
|}

let () =
  let program = Compile.compile source in

  (* The compiler classifies the three loop loads ld_e (the paper's
     op11/op12/op13). *)
  let ld_e_loads =
    List.filter
      (fun (_, insn) -> Insn.load_spec insn = Some Insn.Ld_e)
      (Program.static_loads program)
  in
  Fmt.pr "ld_e loads after classification: %d@." (List.length ld_e_loads);

  (* Address profiling confirms these loads are NOT stride-predictable:
     the table would be useless (and polluted) if they were allocated
     into it. *)
  let prof = Profile.collect program in
  List.iteri
    (fun i (pc, _) ->
      if i < 3 then
        match Profile.rate prof pc with
        | Some r ->
          Fmt.pr "  ld_e load at pc %d: stride-prediction rate %.1f%% over %d runs@."
            pc (100. *. r) (Profile.executions prof pc)
        | None -> ())
    ld_e_loads;

  (* Compare mechanisms on this workload. *)
  let cycles mechanism =
    let cfg = Config.with_mechanism mechanism Config.default in
    (fst (Pipeline.simulate cfg program)).Pipeline.cycles
  in
  let base = cycles Config.No_early in
  let report name mech =
    let c = cycles mech in
    Fmt.pr "%-28s %8d cycles  speedup %.2fx@." name c
      (float_of_int base /. float_of_int c)
  in
  Fmt.pr "baseline                     %8d cycles@." base;
  report "table-only (256 entries)"
    (Config.Table_only { entries = 256; compiler_filtered = false });
  report "calc-only (16-entry BRIC)" (Config.Calc_only { bric_entries = 16 });
  report "dual, hardware-selected"
    (Config.Dual { table_entries = 256; selection = Config.Hardware_selected });
  report "dual, compiler-directed"
    (Config.Dual { table_entries = 256; selection = Config.Compiler_directed });
  Fmt.pr
    "@.The table path cannot capture these loads (irregular addresses);@.\
     the single compiler-managed R_addr register captures all three.@."
