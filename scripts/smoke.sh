#!/bin/sh
# One-command smoke check: build, run the full test suite, regenerate a
# paper table, and emit one machine-readable report (validating that the
# telemetry path works end to end).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== bench: table2 =="
dune exec bench/main.exe table2

echo "== report: PGP Encode / baseline =="
dune exec bin/elag_sim_run.exe -- "PGP Encode" baseline --report json

echo "== engine: parallel sweep (-j 2) =="
dune exec bin/elag_sim_run.exe -- --all -j 2

echo "== verify: lint + fault-injection smoke =="
dune exec bin/elag_experiments.exe -- verify-smoke

echo "== fuzz: bounded differential campaign (-j 2) =="
dune exec bin/elag_experiments.exe -- fuzz --seed 42 --iters 25 -j 2

echo "smoke: OK"
