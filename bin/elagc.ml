(* elagc — the MiniC -> EPA-32 compiler driver.

   Compiles a MiniC source file with the paper's optimization pipeline
   and load-classification heuristics, then (optionally) prints the IR
   or assembly, runs the program, or times it under a machine
   configuration.

     elagc prog.mc                 compile and print classification summary
     elagc -emit-ir prog.mc        print the optimized IR
     elagc -emit-asm prog.mc       print the assembled program
     elagc -run prog.mc            execute and print program output
     elagc -lint prog.mc           static EPA-32 verification of the artifact
     elagc -time dual-cc prog.mc   cycle-accurate timing under a mechanism
     elagc -O0|-O1|-O2             optimization level (default -O2)
     elagc -no-classify            leave every load ld_n
     elagc -profile prog.mc        profile, reclassify, and re-time *)

module Compile = Elag_harness.Compile
module Profile = Elag_harness.Profile
module Program = Elag_isa.Program
module Insn = Elag_isa.Insn
module Opt = Elag_opt.Driver
module Config = Elag_sim.Config
module Lint = Elag_verify.Lint
module Diag = Elag_verify.Diag
module Pipeline = Elag_sim.Pipeline
module Emulator = Elag_sim.Emulator

type action = Summarize | Emit_ir | Emit_asm | Run | Lint | Time of string | Profile_run

let usage () =
  prerr_endline
    "usage: elagc [-O0|-O1|-O2] [-no-classify] \
     [-emit-ir|-emit-asm|-run|-lint|-time MECH|-profile] FILE.mc";
  prerr_endline
    "  mechanisms: baseline, table-N, table-N-cc, calc-N, dual-hw, dual-cc";
  exit 1

let mechanism_of_string s =
  let starts p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let suffix p = String.sub s (String.length p) (String.length s - String.length p) in
  match s with
  | "baseline" -> Config.No_early
  | "dual-hw" -> Config.Dual { table_entries = 256; selection = Config.Hardware_selected }
  | "dual-cc" -> Config.Dual { table_entries = 256; selection = Config.Compiler_directed }
  | _ when starts "table-" ->
    let rest = suffix "table-" in
    (match String.split_on_char '-' rest with
    | [ n ] -> Config.Table_only { entries = int_of_string n; compiler_filtered = false }
    | [ n; "cc" ] -> Config.Table_only { entries = int_of_string n; compiler_filtered = true }
    | _ -> usage ())
  | _ when starts "calc-" -> Config.Calc_only { bric_entries = int_of_string (suffix "calc-") }
  | _ -> usage ()

let summarize program =
  let loads = Program.static_loads program in
  let count spec =
    List.length (List.filter (fun (_, i) -> Insn.load_spec i = Some spec) loads)
  in
  Fmt.pr "%d instructions, %d static loads: %d ld_n, %d ld_p, %d ld_e@."
    (Program.length program) (List.length loads) (count Insn.Ld_n)
    (count Insn.Ld_p) (count Insn.Ld_e)

let print_stats (stats : Pipeline.stats) =
  Fmt.pr "cycles:            %d@." stats.Pipeline.cycles;
  Fmt.pr "instructions:      %d (IPC %.2f)@." stats.Pipeline.instructions
    (float_of_int stats.Pipeline.instructions /. float_of_int (max 1 stats.Pipeline.cycles));
  Fmt.pr "loads:             %d (n=%d p=%d e=%d), avg latency %.2f@."
    stats.Pipeline.loads stats.Pipeline.loads_n stats.Pipeline.loads_p
    stats.Pipeline.loads_e
    (float_of_int stats.Pipeline.load_latency_sum
    /. float_of_int (max 1 stats.Pipeline.loads));
  Fmt.pr "speculation:       table %d/%d, calc %d/%d, wasted %d@."
    stats.Pipeline.table_successes stats.Pipeline.table_attempts
    stats.Pipeline.calc_successes stats.Pipeline.calc_attempts
    stats.Pipeline.wasted_spec;
  Fmt.pr "caches:            %d D-misses, %d I-misses; BTB mispredicts %d@."
    stats.Pipeline.dcache_misses stats.Pipeline.icache_misses
    stats.Pipeline.btb_mispredicts

let () =
  let action = ref Summarize in
  let level = ref Opt.O2 in
  let classify = ref true in
  let file = ref None in
  let rec parse = function
    | [] -> ()
    | "-O0" :: rest -> level := Opt.O0; parse rest
    | "-O1" :: rest -> level := Opt.O1; parse rest
    | "-O2" :: rest -> level := Opt.O2; parse rest
    | "-no-classify" :: rest -> classify := false; parse rest
    | "-emit-ir" :: rest -> action := Emit_ir; parse rest
    | "-emit-asm" :: rest -> action := Emit_asm; parse rest
    | "-run" :: rest -> action := Run; parse rest
    | ("-lint" | "--lint") :: rest -> action := Lint; parse rest
    | "-time" :: mech :: rest -> action := Time mech; parse rest
    | "-profile" :: rest -> action := Profile_run; parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
      file := Some arg; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let source =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    (* workload runtime (alloc, rand) is always available *)
    Elag_workloads.Runtime.with_prelude s
  in
  let options =
    { Compile.opt_level = !level
    ; classification = (if !classify then Compile.Heuristics else Compile.No_classification)
    ; inline_threshold = Elag_opt.Inline.default_threshold }
  in
  Diag.guard "elagc" @@ fun () ->
  try
    match !action with
    | Summarize -> summarize (Compile.compile ~options source)
    | Emit_ir -> Fmt.pr "%a@." Elag_ir.Ir.pp_program (Compile.to_ir ~options source)
    | Emit_asm -> Fmt.pr "%a@." Program.pp (Compile.compile ~options source)
    | Run ->
      let emu = Emulator.run_program (Compile.compile ~options source) in
      print_string (Emulator.output emu);
      Fmt.pr "[%d instructions retired]@." (Emulator.retired emu)
    | Lint ->
      let report = Lint.check (Compile.compile ~options source) in
      Fmt.pr "@[<v>%a@]@." Lint.pp report;
      if not (Lint.ok report) then exit 1
    | Time mech ->
      let program = Compile.compile ~options source in
      let cfg = Config.with_mechanism (mechanism_of_string mech) Config.default in
      let stats, _ = Pipeline.simulate cfg program in
      print_stats stats
    | Profile_run ->
      let program = Compile.compile ~options source in
      let prof = Profile.collect program in
      let reclassified = Profile.reclassify prof program in
      Fmt.pr "before profiling: ";
      summarize program;
      Fmt.pr "after profiling:  ";
      summarize reclassified;
      let time p mech =
        let cfg = Config.with_mechanism mech Config.default in
        (fst (Pipeline.simulate cfg p)).Pipeline.cycles
      in
      let dual = Config.Dual { table_entries = 256; selection = Config.Compiler_directed } in
      let base = time program Config.No_early in
      Fmt.pr "baseline %d cycles; dual-cc %.3fx; dual-cc+profile %.3fx@." base
        (float_of_int base /. float_of_int (time program dual))
        (float_of_int base /. float_of_int (time reclassified dual))
  with
  | Compile.Error msg -> prerr_endline ("elagc: " ^ msg); exit 1
  | Sys_error msg -> prerr_endline ("elagc: " ^ msg); exit 1
