(* Regenerate every table and figure from the paper's evaluation
   section on the parallel experiment engine.  Usage:

     elag_experiments [-j N] [artifact]
       artifact: table2 | fig5a | fig5b | fig5c | table3 | table4 | all
       -j N:     worker domains (default: Domain.recommended_domain_count) *)

module Engine = Elag_engine.Engine
module Experiments = Elag_engine.Experiments
module Pool = Elag_engine.Pool

let usage () =
  prerr_endline "usage: elag_experiments [-j N] [table2|fig5a|fig5b|fig5c|table3|table4|all]";
  exit 1

let () =
  let jobs = ref (Pool.default_jobs ()) in
  let artifact = ref "all" in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest ->
      (jobs := match int_of_string_opt n with Some n when n > 0 -> n | _ -> usage ());
      parse rest
    | [ "-j" ] -> usage ()
    | arg :: rest ->
      artifact := arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let engine = Engine.create ~jobs:!jobs () in
  match !artifact with
  | "table2" -> Experiments.print_table2 engine
  | "fig5a" -> Experiments.print_fig5a engine
  | "fig5b" -> Experiments.print_fig5b engine
  | "fig5c" -> Experiments.print_fig5c engine
  | "table3" -> Experiments.print_table3 engine
  | "table4" -> Experiments.print_table4 engine
  | "all" -> Experiments.run_all engine
  | other ->
    prerr_endline ("unknown artifact: " ^ other);
    usage ()
