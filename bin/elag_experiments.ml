(* Regenerate every table and figure from the paper's evaluation
   section on the parallel experiment engine.  Usage:

     elag_experiments [-j N] [artifact]
       artifact: table2 | fig5a | fig5b | fig5c | table3 | table4 | all
               | lint | faults | verify-smoke | verify
       -j N:     worker domains (default: Domain.recommended_domain_count)

   The verification artifacts run the robustness suites instead of the
   paper tables: [lint] statically checks every compiled workload,
   [faults] runs the curated predictor fault-injection matrix,
   [verify-smoke] the CI subset of it plus lint, and [verify] all
   three suites including the whole-suite differential oracle.  Each
   prints per-item lines and exits 1 if anything fails. *)

module Engine = Elag_engine.Engine
module Experiments = Elag_engine.Experiments
module Verification = Elag_engine.Verification
module Pool = Elag_engine.Pool
module Fault = Elag_verify.Fault
module Lint = Elag_verify.Lint
module Oracle = Elag_verify.Oracle
module Diag = Elag_verify.Diag

let usage () =
  prerr_endline
    "usage: elag_experiments [-j N] [table2|fig5a|fig5b|fig5c|table3|table4|all\
     |lint|faults|verify-smoke|verify]";
  exit 1

(* Each suite prints one line per item and returns whether it was
   all-green, so [verify] can run everything before the exit code. *)
let lint_suite engine =
  let results = Verification.run_lint_suite engine in
  List.iter
    (fun (name, r) -> Fmt.pr "%-16s @[<v>%a@]@." name Lint.pp r)
    results;
  List.for_all (fun (_, r) -> Lint.ok r) results

let fault_suite ?entries engine =
  let results = Verification.run_fault_suite ?entries engine in
  List.iter
    (fun ((e : Verification.entry), o) ->
      Fmt.pr "%-13s %a@." e.Verification.mechanism Fault.pp_outcome o)
    results;
  let ok = List.for_all (fun (_, o) -> Fault.outcome_ok o) results in
  Fmt.pr "fault suite: %d plans, %s@." (List.length results)
    (if ok then "all ok" else "FAILURES");
  ok

let oracle_suite engine =
  let results = Verification.run_oracle_suite engine in
  List.iter
    (fun (name, r) -> Fmt.pr "%-16s @[<v>%a@]@." name Oracle.pp r)
    results;
  List.for_all (fun (_, r) -> Oracle.ok r) results

let finish ok = if not ok then exit 1

let () =
  Diag.guard "elag_experiments" @@ fun () ->
  let jobs = ref (Pool.default_jobs ()) in
  let artifact = ref "all" in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest ->
      (jobs := match int_of_string_opt n with Some n when n > 0 -> n | _ -> usage ());
      parse rest
    | [ "-j" ] -> usage ()
    | arg :: rest ->
      artifact := arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let engine = Engine.create ~jobs:!jobs () in
  match !artifact with
  | "table2" -> Experiments.print_table2 engine
  | "fig5a" -> Experiments.print_fig5a engine
  | "fig5b" -> Experiments.print_fig5b engine
  | "fig5c" -> Experiments.print_fig5c engine
  | "table3" -> Experiments.print_table3 engine
  | "table4" -> Experiments.print_table4 engine
  | "all" -> Experiments.run_all engine
  | "lint" -> finish (lint_suite engine)
  | "faults" -> finish (fault_suite engine)
  | "verify-smoke" ->
    let lint_ok = lint_suite engine in
    let fault_ok =
      fault_suite ~entries:Verification.fault_smoke engine
    in
    finish (lint_ok && fault_ok)
  | "verify" ->
    let lint_ok = lint_suite engine in
    let fault_ok = fault_suite engine in
    let oracle_ok = oracle_suite engine in
    finish (lint_ok && fault_ok && oracle_ok)
  | other ->
    prerr_endline ("unknown artifact: " ^ other);
    usage ()
