(* Regenerate every table and figure from the paper's evaluation
   section on the parallel experiment engine.  Usage:

     elag_experiments [-j N] [artifact]
       artifact: table2 | fig5a | fig5b | fig5c | table3 | table4 | all
               | lint | faults | verify-smoke | verify | fuzz
       -j N:     worker domains (default: Domain.recommended_domain_count)

   The verification artifacts run the robustness suites instead of the
   paper tables: [lint] statically checks every compiled workload,
   [faults] runs the curated predictor fault-injection matrix,
   [verify-smoke] the CI subset of it plus lint, and [verify] all
   three suites including the whole-suite differential oracle.  Each
   prints per-item lines and exits 1 if anything fails.

   [fuzz] runs a differential fuzzing campaign (random lint-clean
   EPA-32 programs and random MiniC sources through every mechanism
   preset under the oracle, with seeded fault plans layered on) on the
   supervised pool and prints a deterministic JSON summary — byte-
   identical at every -j.  Fuzz flags:

     --seed S        master campaign seed (default 0)
     --iters N       iteration count (default 100)
     --budget-ms M   stop scheduling new work after M ms of wall clock
     --timeout-ms M  per-iteration budget; hung iterations report
                     Job_timeout instead of wedging a worker
     --retries N     crash retries per iteration (timeouts never retry)
     --corpus DIR    persist shrunk minimal repros under DIR
     --mutation NAME plant a reference mutation (guarded test hook
                     proving detection; see corpus docs) *)

module Engine = Elag_engine.Engine
module Experiments = Elag_engine.Experiments
module Verification = Elag_engine.Verification
module Pool = Elag_engine.Pool
module Fault = Elag_verify.Fault
module Lint = Elag_verify.Lint
module Oracle = Elag_verify.Oracle
module Diag = Elag_verify.Diag
module Campaign = Elag_fuzz.Campaign
module Gen = Elag_fuzz.Gen
module Json = Elag_telemetry.Json

let usage () =
  prerr_endline
    "usage: elag_experiments [-j N] [table2|fig5a|fig5b|fig5c|table3|table4|all\
     |lint|faults|verify-smoke|verify|fuzz]\n\
     fuzz flags: [--seed S] [--iters N] [--budget-ms M] [--timeout-ms M]\n\
    \            [--retries N] [--corpus DIR] [--mutation NAME]";
  exit 1

(* Each suite prints one line per item and returns whether it was
   all-green, so [verify] can run everything before the exit code. *)
let lint_suite engine =
  let results = Verification.run_lint_suite engine in
  List.iter
    (fun (name, r) -> Fmt.pr "%-16s @[<v>%a@]@." name Lint.pp r)
    results;
  List.for_all (fun (_, r) -> Lint.ok r) results

let fault_suite ?entries engine =
  let results = Verification.run_fault_suite ?entries engine in
  List.iter
    (fun ((e : Verification.entry), o) ->
      Fmt.pr "%-13s %a@." e.Verification.mechanism Fault.pp_outcome o)
    results;
  let ok = List.for_all (fun (_, o) -> Fault.outcome_ok o) results in
  Fmt.pr "fault suite: %d plans, %s@." (List.length results)
    (if ok then "all ok" else "FAILURES");
  ok

let oracle_suite engine =
  let results = Verification.run_oracle_suite engine in
  List.iter
    (fun (name, r) -> Fmt.pr "%-16s @[<v>%a@]@." name Oracle.pp r)
    results;
  List.for_all (fun (_, r) -> Oracle.ok r) results

let finish ok = if not ok then exit 1

(* The campaign summary is the artifact: deterministic JSON on stdout,
   exit 1 on any finding or job failure so CI can gate on it. *)
let fuzz_campaign ~jobs ~seed ~iters ~budget_ms ~timeout_ms ~retries
    ~corpus_dir ~mutation =
  (match mutation with
  | Some m when not (List.mem m Gen.mutation_names) ->
    Printf.eprintf "unknown mutation %s\nknown mutations: %s\n" m
      (String.concat " " Gen.mutation_names);
    usage ()
  | _ -> ());
  let config =
    { Campaign.default with
      seed
    ; iters
    ; mutation
    ; timeout_ms
    ; retries
    ; corpus_dir }
  in
  let summary = Campaign.run ~jobs ?budget_ms config in
  print_endline (Json.to_string ~pretty:true (Campaign.summary_json summary));
  finish (Campaign.ok summary)

let () =
  Diag.guard "elag_experiments" @@ fun () ->
  let jobs = ref (Pool.default_jobs ()) in
  let artifact = ref "all" in
  let seed = ref 0
  and iters = ref 100
  and budget_ms = ref None
  and timeout_ms = ref None
  and retries = ref 0
  and corpus_dir = ref None
  and mutation = ref None in
  let int_arg n = match int_of_string_opt n with
    | Some n when n >= 0 -> n
    | _ -> usage ()
  in
  let pos_arg n = match int_of_string_opt n with
    | Some n when n > 0 -> n
    | _ -> usage ()
  in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest ->
      (jobs := match int_of_string_opt n with Some n when n > 0 -> n | _ -> usage ());
      parse rest
    | "--seed" :: n :: rest -> seed := int_arg n; parse rest
    | "--iters" :: n :: rest -> iters := int_arg n; parse rest
    | "--budget-ms" :: n :: rest -> budget_ms := Some (pos_arg n); parse rest
    | "--timeout-ms" :: n :: rest -> timeout_ms := Some (pos_arg n); parse rest
    | "--retries" :: n :: rest -> retries := int_arg n; parse rest
    | "--corpus" :: dir :: rest -> corpus_dir := Some dir; parse rest
    | "--mutation" :: name :: rest -> mutation := Some name; parse rest
    | [ ("-j" | "--seed" | "--iters" | "--budget-ms" | "--timeout-ms"
        | "--retries" | "--corpus" | "--mutation") ] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      usage ()
    | arg :: rest ->
      artifact := arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !artifact = "fuzz" then
    fuzz_campaign ~jobs:!jobs ~seed:!seed ~iters:!iters ~budget_ms:!budget_ms
      ~timeout_ms:!timeout_ms ~retries:!retries ~corpus_dir:!corpus_dir
      ~mutation:!mutation
  else begin
  let engine = Engine.create ~jobs:!jobs () in
  match !artifact with
  | "table2" -> Experiments.print_table2 engine
  | "fig5a" -> Experiments.print_fig5a engine
  | "fig5b" -> Experiments.print_fig5b engine
  | "fig5c" -> Experiments.print_fig5c engine
  | "table3" -> Experiments.print_table3 engine
  | "table4" -> Experiments.print_table4 engine
  | "all" -> Experiments.run_all engine
  | "lint" -> finish (lint_suite engine)
  | "faults" -> finish (fault_suite engine)
  | "verify-smoke" ->
    let lint_ok = lint_suite engine in
    let fault_ok =
      fault_suite ~entries:Verification.fault_smoke engine
    in
    finish (lint_ok && fault_ok)
  | "verify" ->
    let lint_ok = lint_suite engine in
    let fault_ok = fault_suite engine in
    let oracle_ok = oracle_suite engine in
    finish (lint_ok && fault_ok && oracle_ok)
  | other ->
    prerr_endline ("unknown artifact: " ^ other);
    usage ()
  end
