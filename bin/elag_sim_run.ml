(* Run one workload (or all) under the emulator and, optionally, a
   timing configuration.  Usage:

     elag_sim_run                       — emulate every workload, print stats
     elag_sim_run --all                 — same, explicitly
     elag_sim_run --all <mechanism>     — time every workload under one
                                          mechanism on the parallel engine
     elag_sim_run <name>                — emulate one workload
     elag_sim_run <name> <mechanism>    — time it (mechanisms: baseline,
                                          table-N[-hw|-cc], calc-N,
                                          dual-hw, dual-cc, dual-N-hw|-cc)

   Multi-workload modes fan out over -j N worker domains (default:
   Domain.recommended_domain_count); output order is always the suite
   order, independent of -j.

   Telemetry flags (timed runs only):

     --report json|csv   emit the full machine-readable report (config
                         provenance, stall-cause breakdown, per-load-site
                         table) to stdout instead of the text summary
     --trace FILE        write a Chrome trace_event file (load it in
                         about:tracing or https://ui.perfetto.dev)
     --max-insns N       stop after N retired instructions; reports and
                         traces then cover that window (recommended when
                         tracing: one event per instruction adds up)

   Verification (single timed runs):

     --oracle            run the differential oracle: the timing pipeline
                         and a reference emulator consume the retire
                         stream in lockstep and every (pc, insn, address,
                         branch) event must agree; exit 1 on divergence
     --fault TARGET      run a seeded fault-injection plan against the
                         workload under the given mechanism and check the
                         architectural invariants (targets: see usage
                         text; optional :N parameter, e.g.
                         table-scramble:17); exit 1 on violation
     --seed N            seed for --fault plans (default 0)
     --timeout-ms N      wall-clock budget for the run, polled once per
                         retired instruction; exceeding it exits 2 with
                         a one-line job-timeout diagnostic

   Timed runs lint the compiled program first (wild control targets,
   illegal registers, ld_e binding rules, data bounds) and exit 2 with
   a one-line diagnostic when the artifact is malformed. *)

module Compile = Elag_harness.Compile
module Pipeline = Elag_sim.Pipeline
module Report = Elag_sim.Report
module Config = Elag_sim.Config
module Emulator = Elag_sim.Emulator
module Workload = Elag_workloads.Workload
module Suite = Elag_workloads.Suite
module Json = Elag_telemetry.Json
module Trace = Elag_telemetry.Trace
module Insn = Elag_isa.Insn
module Engine = Elag_engine.Engine
module Pool = Elag_engine.Pool
module Lint = Elag_verify.Lint
module Oracle = Elag_verify.Oracle
module Diag = Elag_verify.Diag
module Fault = Elag_verify.Fault
module Deadline = Elag_verify.Deadline

let usage () =
  prerr_endline
    "usage: elag_sim_run [--all] [workload [mechanism]] [-j N] [--report json|csv] [--trace FILE] [--max-insns N] [--oracle]\n\
    \       [--fault TARGET] [--seed N] [--timeout-ms N]";
  Printf.eprintf "fault targets: %s\n%!" (String.concat " " Fault.target_names);
  exit 1

(* Unknown-name errors print the full vocabulary instead of dying with
   a bare exception. *)
let mechanism_of_string s =
  match Config.Mechanism.of_string s with
  | Some m -> m
  | None ->
    Printf.eprintf
      "unknown mechanism %s\nknown mechanisms: %s\n(also accepted: table-N, calc-N, dual-N-hw, dual-N-cc)\n"
      s
      (String.concat " " (List.map Config.Mechanism.to_string Config.Mechanism.all));
    usage ()

let find_workload name =
  try Suite.find name
  with Invalid_argument _ ->
    Printf.eprintf "unknown workload %s\nknown workloads: %s\n" name
      (String.concat ", "
         (List.map (fun (w : Workload.t) -> w.Workload.name) Suite.all));
    usage ()

let emulate_one ~timeout_ms (w : Workload.t) =
  let t0 = Unix.gettimeofday () in
  let program = Compile.compile w.Workload.source in
  let t1 = Unix.gettimeofday () in
  let deadline = Deadline.opt timeout_ms in
  let emu = Emulator.create program in
  Emulator.run ~observer:(Deadline.observer deadline) emu;
  let t2 = Unix.gettimeofday () in
  Printf.sprintf "%-16s  insns=%9d  compile=%.2fs run=%.2fs  output=%s"
    w.Workload.name (Emulator.retired emu) (t1 -. t0) (t2 -. t1)
    (String.concat "," (String.split_on_char '\n' (String.trim (Emulator.output emu))))

(* Emulate every workload on the pool; lines print in suite order once
   all work is done, so output is identical at every -j. *)
let emulate_all ~jobs ~timeout_ms =
  List.iter print_endline
    (Pool.map_list ~jobs (emulate_one ~timeout_ms) Suite.all)

(* Time every workload under one mechanism through the engine.  The
   baselines the speedup column needs are scheduled as pool jobs too,
   so the printing loop below runs entirely out of cache. *)
let time_all ~jobs mech =
  let engine = Engine.create ~jobs () in
  let sweep =
    List.concat_map
      (fun w -> [ Engine.Job.make w Config.No_early; Engine.Job.make w mech ])
      Suite.all
  in
  ignore (Engine.run_jobs engine sweep);
  Printf.printf "%-16s %12s %12s %8s %9s\n" "workload" "cycles" "insns" "IPC"
    "speedup";
  List.iter
    (fun (w : Workload.t) ->
      let s = Engine.simulate engine w mech in
      Printf.printf "%-16s %12d %12d %8.2f %9.3f\n" w.Workload.name
        s.Pipeline.cycles s.Pipeline.instructions
        (float_of_int s.Pipeline.instructions /. float_of_int (max 1 s.Pipeline.cycles))
        (Engine.speedup engine w mech))
    Suite.all

(* Map each instruction class to its own about:tracing thread row so
   loads, stores, branches and ALU traffic read as separate lanes. *)
let trace_lane insn =
  if Insn.is_load insn then (1, "loads")
  else if Insn.is_store insn then (2, "stores")
  else if Insn.is_control insn then (3, "control")
  else (0, "alu")

let install_trace t =
  let tr = Trace.create () in
  List.iter
    (fun (tid, name) -> Trace.set_thread_name tr ~tid name)
    [ (0, "alu"); (1, "loads"); (2, "stores"); (3, "control") ];
  Pipeline.set_tracer t (fun pc insn cycle latency ->
      let tid, _ = trace_lane insn in
      Trace.complete tr
        ~name:(Fmt.str "%a" Insn.pp insn)
        ~cat:(snd (trace_lane insn))
        ~ts:cycle ~dur:latency ~tid
        ~args:[ ("pc", Json.Int pc); ("latency", Json.Int latency) ]
        ());
  tr

let print_text_summary (w : Workload.t) mech (stats : Pipeline.stats) t output =
  Printf.printf "%s under %s:\n" w.Workload.name (Config.mechanism_name mech);
  Printf.printf "  cycles=%d insns=%d IPC=%.2f\n" stats.Pipeline.cycles
    stats.Pipeline.instructions
    (float_of_int stats.Pipeline.instructions /. float_of_int stats.Pipeline.cycles);
  Printf.printf "  loads=%d (n=%d p=%d e=%d) stores=%d\n" stats.Pipeline.loads
    stats.Pipeline.loads_n stats.Pipeline.loads_p stats.Pipeline.loads_e
    stats.Pipeline.stores;
  Printf.printf "  spec: table %d/%d calc %d/%d wasted=%d\n"
    stats.Pipeline.table_successes stats.Pipeline.table_attempts
    stats.Pipeline.calc_successes stats.Pipeline.calc_attempts
    stats.Pipeline.wasted_spec;
  Printf.printf "  avg load latency=%.2f dmiss=%d imiss=%d btb_miss=%d\n"
    (float_of_int stats.Pipeline.load_latency_sum /. float_of_int (max 1 stats.Pipeline.loads))
    stats.Pipeline.dcache_misses stats.Pipeline.icache_misses
    stats.Pipeline.btb_mispredicts;
  Printf.printf "  stalls: busy=%d %s\n" (Pipeline.busy_cycles t)
    (String.concat " "
       (List.map
          (fun (cause, n) ->
            Printf.sprintf "%s=%d" (Elag_telemetry.Stall.name cause) n)
          (Pipeline.stall_breakdown t)));
  Printf.printf "  output=%s\n"
    (String.concat "," (String.split_on_char '\n' (String.trim output)))

let oracle_one (w : Workload.t) mech ~max_insns ~timeout_ms =
  let program = Compile.compile w.Workload.source in
  Lint.enforce program;
  let cfg = Config.with_mechanism mech Config.default in
  let r =
    Oracle.run ?max_insns ~deadline:(Deadline.opt timeout_ms) cfg program
  in
  Fmt.pr "%s under %s: @[<v>%a@]@." w.Workload.name
    (Config.mechanism_name mech) Oracle.pp r;
  if not (Oracle.ok r) then exit 1

(* Seeded fault plan against one (workload, mechanism): baseline run,
   corrupt the predictor state on a retire-count schedule derived from
   the baseline's length, and hold the architectural invariants. *)
let fault_one (w : Workload.t) mech target ~seed ~max_insns ~timeout_ms =
  let program = Compile.compile w.Workload.source in
  Lint.enforce program;
  let cfg = Config.with_mechanism mech Config.default in
  let deadline = Deadline.opt timeout_ms in
  let base = Fault.baseline ?max_insns ~deadline cfg program in
  let retired = max 1 base.Fault.base_retired in
  let plan =
    { Fault.name = Fmt.str "cli-%a" Fault.pp_target target
    ; seed
    ; first = 1 + (retired / 3)
    ; period = Some (max 1 (retired / 5))
    ; target }
  in
  let outcome = Fault.run_plan ?max_insns ~deadline ~baseline:base cfg program plan in
  Fmt.pr "%s under %s: %a@." w.Workload.name (Config.mechanism_name mech)
    Fault.pp_outcome outcome;
  if not (Fault.outcome_ok outcome) then exit 1

let time_one (w : Workload.t) mech ~report ~trace_file ~max_insns ~timeout_ms =
  let program = Compile.compile w.Workload.source in
  Lint.enforce program;
  let cfg = Config.with_mechanism mech Config.default in
  let t = Pipeline.create cfg in
  let tr = Option.map (fun _ -> install_trace t) trace_file in
  let emu = Emulator.create program in
  let deadline = Deadline.opt timeout_ms in
  let pipe_obs = Pipeline.observer t in
  let obs pc insn eff taken next_pc =
    Deadline.check deadline;
    pipe_obs pc insn eff taken next_pc
  in
  (* a user-bounded run is a measurement window, not a runaway loop *)
  (try Emulator.run ~observer:obs ?max_insns emu
   with Emulator.Runaway _ when max_insns <> None -> ());
  let output = Emulator.output emu in
  let stats = Pipeline.stats t in
  (match (trace_file, tr) with
  | Some file, Some tr ->
    let oc = open_out file in
    Trace.write tr oc;
    close_out oc;
    Printf.eprintf "wrote %d trace events to %s\n%!" (Trace.events tr) file
  | _ -> ());
  let meta = [ ("workload", Json.String w.Workload.name) ] in
  match report with
  | Some `Json -> print_endline (Json.to_string ~pretty:true (Report.to_json ~meta t))
  | Some `Csv ->
    print_string (Report.to_csv ~meta:[ ("workload", w.Workload.name) ] t)
  | None -> print_text_summary w mech stats t output

let () =
  Diag.guard "elag_sim_run" @@ fun () ->
  let report = ref None
  and trace_file = ref None
  and max_insns = ref None
  and jobs = ref (Pool.default_jobs ())
  and all = ref false
  and oracle = ref false
  and fault = ref None
  and seed = ref 0
  and timeout_ms = ref None
  and positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--report" :: fmt :: rest ->
      (report :=
         match fmt with
         | "json" -> Some `Json
         | "csv" -> Some `Csv
         | _ -> usage ());
      parse rest
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse rest
    | "--max-insns" :: n :: rest ->
      (max_insns :=
         match int_of_string_opt n with Some n when n > 0 -> Some n | _ -> usage ());
      parse rest
    | "-j" :: n :: rest ->
      (jobs := match int_of_string_opt n with Some n when n > 0 -> n | _ -> usage ());
      parse rest
    | "--all" :: rest ->
      all := true;
      parse rest
    | "--oracle" :: rest ->
      oracle := true;
      parse rest
    | "--fault" :: name :: rest ->
      (fault :=
         match Fault.target_of_string name with
         | Some t -> Some t
         | None ->
           Printf.eprintf "unknown fault target %s\n" name;
           usage ());
      parse rest
    | "--seed" :: n :: rest ->
      (seed := match int_of_string_opt n with Some n when n >= 0 -> n | _ -> usage ());
      parse rest
    | "--timeout-ms" :: n :: rest ->
      (timeout_ms :=
         match int_of_string_opt n with Some n when n > 0 -> Some n | _ -> usage ());
      parse rest
    | ("--report" | "--trace" | "--max-insns" | "-j" | "--fault" | "--seed"
      | "--timeout-ms") :: [] -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let timeout_ms = !timeout_ms in
  match (!all, !oracle, !fault, List.rev !positional, !report, !trace_file) with
  | true, false, None, [], None, None -> emulate_all ~jobs:!jobs ~timeout_ms
  | true, false, None, [ mech ], None, None ->
    time_all ~jobs:!jobs (mechanism_of_string mech)
  | false, false, None, [], None, None -> emulate_all ~jobs:!jobs ~timeout_ms
  | false, false, None, [ name ], None, None ->
    emulate_one ~timeout_ms (find_workload name) |> print_endline
  | false, true, None, [ name; mech ], None, None ->
    oracle_one (find_workload name) (mechanism_of_string mech)
      ~max_insns:!max_insns ~timeout_ms
  | false, false, Some target, [ name; mech ], None, None ->
    fault_one (find_workload name) (mechanism_of_string mech) target
      ~seed:!seed ~max_insns:!max_insns ~timeout_ms
  | false, false, None, [ name; mech ], report, trace_file ->
    time_one (find_workload name) (mechanism_of_string mech) ~report ~trace_file
      ~max_insns:!max_insns ~timeout_ms
  | _ -> usage ()
