(* Verification-layer tests: the seeded PRNG, the differential oracle
   (self-agreement and deliberate divergence), the fault-injection
   smoke matrix, the EPA-32 lint on both compiled and hand-broken
   programs, the structured lowering errors, and the shared CLI
   diagnostics. *)

module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Layout = Elag_isa.Layout
module Program = Elag_isa.Program
module Memory = Elag_sim.Memory
module Emulator = Elag_sim.Emulator
module Config = Elag_sim.Config
module Xorshift = Elag_verify.Xorshift
module Deadline = Elag_verify.Deadline
module Oracle = Elag_verify.Oracle
module Fault = Elag_verify.Fault
module Lint = Elag_verify.Lint
module Diag = Elag_verify.Diag
module Lower = Elag_ir.Lower
module Ast = Elag_minic.Ast
module Typed = Elag_minic.Typed
module Structs = Elag_minic.Structs
module Engine = Elag_engine.Engine
module Verification = Elag_engine.Verification
module Suite = Elag_workloads.Suite

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One engine for the workload-backed tests, so the compiled programs
   and fault-free baselines are shared across cases. *)
let engine = lazy (Engine.create ~jobs:1 ())

let asm ?(data = []) items =
  let layout = Layout.create () in
  List.iter
    (fun (label, init) -> ignore (Layout.add layout ~label ~align:4 ~init))
    data;
  Program.assemble ~layout (Program.Label "_start" :: items)

(* --- xorshift ------------------------------------------------------------- *)

let test_xorshift_deterministic () =
  let a = Xorshift.create 42 and b = Xorshift.create 42 in
  for i = 0 to 99 do
    check (Printf.sprintf "draw %d" i) (Xorshift.next a) (Xorshift.next b)
  done;
  let c = Xorshift.create 43 in
  let differs = ref false in
  for _ = 1 to 5 do
    if Xorshift.next a <> Xorshift.next c then differs := true
  done;
  check_bool "different seeds diverge" true !differs;
  (* seed 0 must still be a usable generator *)
  let z = Xorshift.create 0 in
  let v1 = Xorshift.next z in
  let v2 = Xorshift.next z in
  check_bool "seed 0 productive" true (v1 > 0 && v2 > 0 && v1 <> v2)

let test_xorshift_bounds () =
  let t = Xorshift.create 7 in
  for _ = 1 to 1000 do
    let v = Xorshift.int t 10 in
    check_bool "in [0,10)" true (v >= 0 && v < 10);
    check_bool "raw positive" true (Xorshift.next t >= 0)
  done;
  Alcotest.check_raises "n=0 rejected" (Invalid_argument "Xorshift.int")
    (fun () -> ignore (Xorshift.int t 0))

let test_xorshift_zero_state_remapped () =
  (* the all-zero internal state is a fixed point of the xorshift
     transition; create must remap it, and the folded stream must
     never collapse to a constant *)
  let z = Xorshift.create 0 in
  let draws = List.init 16 (fun _ -> Xorshift.next z) in
  check_bool "seed 0 stream varies" true
    (List.sort_uniq compare draws |> List.length > 8);
  check_bool "seed 0 positive draws" true (List.for_all (fun v -> v >= 0) draws)

let test_xorshift_split_independent () =
  (* a child stream must be (a) deterministic and (b) unperturbed by
     further draws from the parent, so campaign sub-streams never
     depend on evaluation order *)
  let p1 = Xorshift.create 42 in
  let c1 = Xorshift.split p1 in
  let child_draws = List.init 8 (fun _ -> Xorshift.next c1) in
  let p2 = Xorshift.create 42 in
  let c2 = Xorshift.split p2 in
  for _ = 1 to 100 do
    ignore (Xorshift.next p2)
  done;
  check_bool "child stream independent of parent draws" true
    (child_draws = List.init 8 (fun _ -> Xorshift.next c2));
  let parent = Xorshift.create 42 in
  let child = Xorshift.split parent in
  let differs = ref false in
  for _ = 1 to 8 do
    if Xorshift.next parent <> Xorshift.next child then differs := true
  done;
  check_bool "child stream differs from parent stream" true !differs

(* --- deadline ------------------------------------------------------------- *)

let test_deadline_never_and_opt () =
  let d = Deadline.never in
  for _ = 1 to 10_000 do
    Deadline.check d
  done;
  check_bool "never expires" false (Deadline.expired Deadline.never);
  (* opt None = never; opt (Some ms) = started budget *)
  for _ = 1 to 10_000 do
    Deadline.check (Deadline.opt None)
  done;
  Alcotest.check_raises "non-positive budget rejected"
    (Invalid_argument "Deadline.start") (fun () ->
      ignore (Deadline.start ~timeout_ms:0))

let test_deadline_expires () =
  let d = Deadline.start ~timeout_ms:5 in
  Unix.sleepf 0.02;
  let raised = ref None in
  (try
     (* the clock is sampled every 1024 checks, so spin well past one
        sampling window *)
     for _ = 1 to 100_000 do
       Deadline.check d
     done
   with Deadline.Job_timeout { timeout_ms } -> raised := Some timeout_ms);
  check "raises Job_timeout with its budget" 5
    (Option.value !raised ~default:(-1))

(* --- fault target parsing -------------------------------------------------- *)

let test_fault_target_of_string () =
  let t s = Fault.target_of_string s in
  check_bool "table-scramble:17" true
    (t "table-scramble:17" = Some (Fault.Table_scramble { slot = 17 }));
  check_bool "table-pa default slot" true
    (t "table-pa" = Some (Fault.Table_pa { slot = 0 }));
  check_bool "bric-delay default cycles" true
    (t "bric-delay" = Some (Fault.Bric_delay { cycles = 8 }));
  check_bool "raddr-unbind" true (t "raddr-unbind" = Some Fault.Raddr_unbind);
  check_bool "btb-target:3" true
    (t "btb-target:3" = Some (Fault.Btb_target { slot = 3 }));
  check_bool "unknown rejected" true (t "nonsense" = None);
  (* every advertised name parses back *)
  List.iter
    (fun name ->
      check_bool (name ^ " parses") true (Fault.target_of_string name <> None))
    Fault.target_names

(* --- oracle --------------------------------------------------------------- *)

let print_n n =
  [ Program.Insn (Insn.Li { dst = Reg.arg_first; imm = n })
  ; Program.Insn (Insn.Syscall Insn.Print_int)
  ; Program.Insn Insn.Halt ]

let test_oracle_self_agreement () =
  let p = asm (print_n 7) in
  let r = Oracle.run Config.default p in
  check_bool "ok" true (Oracle.ok r);
  check "compared all retires" 3 r.Oracle.compared;
  check_bool "outputs match" true r.Oracle.outputs_match;
  check_bool "cycles counted" true (r.Oracle.subject_cycles > 0)

let test_oracle_detects_divergence () =
  (* Same shape, different immediate: first event already disagrees. *)
  let subject = asm (print_n 1) and reference = asm (print_n 2) in
  let r = Oracle.run ~reference Config.default subject in
  check_bool "not ok" false (Oracle.ok r);
  match r.Oracle.divergence with
  | None -> Alcotest.fail "expected a divergence"
  | Some d ->
    check "diverges at retire 0" 0 d.Oracle.div_index;
    check_bool "reference event present" true (d.Oracle.div_reference <> None);
    check_bool "outputs differ" false r.Oracle.outputs_match

let test_oracle_recent_ring_bounded () =
  (* Agree for 6 nops, then diverge; keep=3 must cap the context. *)
  let nops = List.init 6 (fun _ -> Program.Insn Insn.Nop) in
  let subject = asm (nops @ print_n 1)
  and reference = asm (nops @ print_n 2) in
  let r = Oracle.run ~keep:3 ~reference Config.default subject in
  match r.Oracle.divergence with
  | None -> Alcotest.fail "expected a divergence"
  | Some d ->
    check "diverges after the prefix" 6 d.Oracle.div_index;
    check "ring bounded by keep" 3 (List.length d.Oracle.div_recent);
    (* oldest-first: the last ring entry is the retire just before *)
    (match List.rev d.Oracle.div_recent with
    | last :: _ -> check "ring ends at index 5" 5 last.Oracle.ev_index
    | [] -> Alcotest.fail "ring empty")

let test_oracle_on_workload () =
  let e = Lazy.force engine in
  let w = Suite.find "PGP Decode" in
  let p = Engine.program e w in
  let cfg =
    { Config.default with
      Config.mechanism = Config.Mechanism.of_string_exn "dual-cc" }
  in
  let r = Oracle.run cfg p in
  check_bool "workload oracle green" true (Oracle.ok r);
  check_bool "nontrivial stream" true (r.Oracle.compared > 100_000)

(* --- fault injection ------------------------------------------------------ *)

let test_fault_smoke_matrix () =
  let e = Lazy.force engine in
  let results =
    Verification.run_fault_suite ~entries:Verification.fault_smoke e
  in
  check_bool "smoke set nonempty" true (List.length results >= 7);
  List.iter
    (fun ((entry : Verification.entry), o) ->
      let name = entry.Verification.plan.Fault.name in
      check_bool (name ^ " invariants hold") true (Fault.outcome_ok o);
      check_bool (name ^ " landed") true (o.Fault.injections > 0))
    results

let test_fault_plan_deterministic () =
  let e = Lazy.force engine in
  match Verification.fault_smoke with
  | [] -> Alcotest.fail "empty smoke set"
  | (entry : Verification.entry) :: _ ->
    let w = Suite.find entry.Verification.workload in
    let cfg =
      { Config.default with
        Config.mechanism =
          Config.Mechanism.of_string_exn entry.Verification.mechanism }
    in
    let p = Engine.program e w in
    let base = Fault.baseline cfg p in
    let o1 = Fault.run_plan ~baseline:base cfg p entry.Verification.plan in
    let o2 = Fault.run_plan ~baseline:base cfg p entry.Verification.plan in
    check "injections reproduce" o1.Fault.injections o2.Fault.injections;
    check "cycles reproduce" o1.Fault.faulted_cycles o2.Fault.faulted_cycles

(* --- lint ----------------------------------------------------------------- *)

let test_lint_accepts_compiled () =
  let e = Lazy.force engine in
  List.iter
    (fun name ->
      let r = Lint.check (Engine.program e (Suite.find name)) in
      check_bool (name ^ " lint green") true (Lint.ok r);
      check_bool (name ^ " checked insns") true (r.Lint.checked > 0))
    [ "PGP Decode"; "147.vortex" ]

let rules r = List.map (fun i -> i.Lint.rule) r.Lint.issues

let test_lint_control_target () =
  (* a label at the very end resolves to code_len — outside the code *)
  let p = asm [ Program.Insn (Insn.Jump "end"); Program.Label "end" ] in
  let r = Lint.check p in
  check_bool "flagged" true (List.mem "control-target" (rules r))

let test_lint_register_invalid () =
  let p =
    asm
      [ Program.Insn (Insn.Alu { op = Insn.Add; dst = 70; src1 = 1; src2 = Insn.I 0 })
      ; Program.Insn Insn.Halt ]
  in
  check_bool "flagged" true (List.mem "register-invalid" (rules (Lint.check p)))

let test_lint_ld_e_binding () =
  let load addr =
    Program.Insn
      (Insn.Load
         { spec = Insn.Ld_e; size = Insn.Word; sign = Insn.Signed; dst = 10
         ; addr })
  in
  let absolute = asm [ load (Insn.Absolute 128); Program.Insn Insn.Halt ] in
  check_bool "absolute ld_e flagged" true
    (List.mem "ld_e-binding" (rules (Lint.check absolute)));
  let zero_base =
    asm [ load (Insn.Base_offset (Reg.zero, 8)); Program.Insn Insn.Halt ]
  in
  check_bool "r0-based ld_e flagged" true
    (List.mem "ld_e-binding" (rules (Lint.check zero_base)));
  let legal =
    asm
      [ Program.Insn (Insn.Li { dst = 10; imm = Layout.default_base })
      ; load (Insn.Base_offset (10, 0)); Program.Insn Insn.Halt ]
  in
  check_bool "legal ld_e accepted" true (Lint.ok (Lint.check legal))

let test_lint_absolute_bounds () =
  let p =
    asm
      [ Program.Insn
          (Insn.Load
             { spec = Insn.Ld_n; size = Insn.Word; sign = Insn.Signed
             ; dst = 10; addr = Insn.Absolute 100_000 })
      ; Program.Insn Insn.Halt ]
  in
  check_bool "flagged under a 4K memory" true
    (List.mem "absolute-bounds" (rules (Lint.check ~memory_size:4096 p)))

let test_lint_enforce_raises () =
  let p = asm [ Program.Insn (Insn.Jump "end"); Program.Label "end" ] in
  check_bool "enforce raises Rejected" true
    (try
       Lint.enforce p;
       false
     with Lint.Rejected r -> not (Lint.ok r))

(* --- structured lowering errors ------------------------------------------- *)

let test_lower_error_structured () =
  let f =
    { Typed.name = "broken"; return_ty = Ast.Tvoid; params = []; locals = []
    ; body = [ Typed.Sbreak ] }
  in
  let prog =
    { Typed.structs = Structs.create (); globals = []; strings = []
    ; funcs = [ f ] }
  in
  check_bool "Lower.Error carries context" true
    (try
       ignore (Lower.lower_program prog);
       false
     with Lower.Error { ctx; msg } ->
       ctx = "function broken" && msg = "break outside of any loop")

(* --- CLI diagnostics ------------------------------------------------------- *)

let test_diag_describe () =
  let some e = Diag.describe e <> None in
  check_bool "runaway" true (some (Emulator.Runaway 5));
  check_bool "bad jump" true (some (Emulator.Bad_jump { pc = 9; retired = 3 }));
  check_bool "memory fault" true (some (Memory.Fault 123));
  check_bool "lint rejection" true
    (some (Lint.Rejected { Lint.checked = 1; issues = [ { Lint.pc = Some 0; rule = "r"; detail = "d" } ] }));
  check_bool "other exceptions pass through" true
    (Diag.describe (Failure "x") = None)

(* One case per diagnostic class: the guard must map the exception to
   a single-line message through the failure hook (the default hook
   prints that line and exits 2 — the ?fail injection is how the
   mapping is testable in-process). *)
let test_diag_guard_classes () =
  let lint_reject =
    Lint.Rejected
      { Lint.checked = 1
      ; issues = [ { Lint.pc = Some 0; rule = "r"; detail = "d" } ] }
  in
  List.iter
    (fun (name, exn) ->
      let captured = ref None in
      Diag.guard ~fail:(fun line -> captured := Some line) "test" (fun () ->
          raise exn);
      match !captured with
      | None -> Alcotest.fail (name ^ ": guard did not intercept")
      | Some line ->
        check_bool (name ^ ": non-empty single line") true
          (line <> "" && not (String.contains line '\n')))
    [ ("runaway", Emulator.Runaway 400_000_000)
    ; ("bad jump", Emulator.Bad_jump { pc = 7; retired = 41 })
    ; ("memory fault", Memory.Fault 0x7FFF_FFFF)
    ; ("lint rejection", lint_reject)
    ; ("job timeout", Deadline.Job_timeout { timeout_ms = 250 }) ];
  (* unrelated exceptions must keep their identity through the guard *)
  Alcotest.check_raises "unknown exceptions re-raised" (Failure "x")
    (fun () -> Diag.guard ~fail:(fun _ -> ()) "test" (fun () -> failwith "x"))

let suite =
  [ Alcotest.test_case "xorshift: deterministic" `Quick test_xorshift_deterministic
  ; Alcotest.test_case "xorshift: bounds" `Quick test_xorshift_bounds
  ; Alcotest.test_case "xorshift: zero state remapped" `Quick
      test_xorshift_zero_state_remapped
  ; Alcotest.test_case "xorshift: split independent" `Quick
      test_xorshift_split_independent
  ; Alcotest.test_case "deadline: never/opt" `Quick test_deadline_never_and_opt
  ; Alcotest.test_case "deadline: expires" `Quick test_deadline_expires
  ; Alcotest.test_case "fault: target parsing" `Quick
      test_fault_target_of_string
  ; Alcotest.test_case "oracle: self agreement" `Quick test_oracle_self_agreement
  ; Alcotest.test_case "oracle: detects divergence" `Quick
      test_oracle_detects_divergence
  ; Alcotest.test_case "oracle: recent ring bounded" `Quick
      test_oracle_recent_ring_bounded
  ; Alcotest.test_case "oracle: workload green" `Quick test_oracle_on_workload
  ; Alcotest.test_case "fault: smoke matrix" `Quick test_fault_smoke_matrix
  ; Alcotest.test_case "fault: plans deterministic" `Quick
      test_fault_plan_deterministic
  ; Alcotest.test_case "lint: compiled workloads" `Quick
      test_lint_accepts_compiled
  ; Alcotest.test_case "lint: control target" `Quick test_lint_control_target
  ; Alcotest.test_case "lint: register validity" `Quick
      test_lint_register_invalid
  ; Alcotest.test_case "lint: ld_e binding" `Quick test_lint_ld_e_binding
  ; Alcotest.test_case "lint: absolute bounds" `Quick test_lint_absolute_bounds
  ; Alcotest.test_case "lint: enforce raises" `Quick test_lint_enforce_raises
  ; Alcotest.test_case "lower: structured error" `Quick
      test_lower_error_structured
  ; Alcotest.test_case "diag: describe" `Quick test_diag_describe
  ; Alcotest.test_case "diag: guard per class" `Quick test_diag_guard_classes ]
