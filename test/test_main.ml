let () =
  Alcotest.run "elag"
    [ ("isa", Test_isa.suite)
    ; ("predict", Test_predict.suite)
    ; ("minic", Test_minic.suite)
    ; ("lang", Test_lang.suite)
    ; ("ir", Test_ir.suite)
    ; ("opt", Test_opt.suite)
    ; ("classify", Test_classify.suite)
    ; ("codegen", Test_codegen.suite)
    ; ("sim", Test_sim.suite)
    ; ("workloads", Test_workloads.suite)
    ; ("harness", Test_harness.suite)
    ; ("engine", Test_engine.suite)
    ; ("verify", Test_verify.suite)
    ; ("fuzz", Test_fuzz.suite)
    ; ("telemetry", Test_telemetry.suite)
    ; ("properties", Test_properties.suite) ]
