(* Telemetry tests: JSON serialization, histogram bucketing and
   percentiles, the metric registry, the Chrome trace exporter, the
   pipeline's stall-attribution invariant (busy + Σ stalls = cycles)
   across workloads × mechanisms, per-load-site accounting, and a
   golden-file check of the JSON report shape. *)

module Json = Elag_telemetry.Json
module Histogram = Elag_telemetry.Histogram
module Metrics = Elag_telemetry.Metrics
module Stall = Elag_telemetry.Stall
module Trace = Elag_telemetry.Trace
module Pipeline = Elag_sim.Pipeline
module Report = Elag_sim.Report
module Config = Elag_sim.Config
module Bric = Elag_predict.Bric
module Insn = Elag_isa.Insn
module Layout = Elag_isa.Layout
module Program = Elag_isa.Program
module Suite = Elag_workloads.Suite
module Engine = Elag_engine.Engine

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec scan i =
    if i + n > String.length s then false
    else String.sub s i n = sub || scan (i + 1)
  in
  scan 0

(* --- JSON ----------------------------------------------------------------- *)

let test_json_printing () =
  check_str "scalars" "[null,true,-3,1.5,\"a\\\"b\\n\"]"
    (Json.to_string
       (Json.List
          [ Json.Null; Json.Bool true; Json.Int (-3); Json.Float 1.5
          ; Json.String "a\"b\n" ]));
  check_str "object order preserved" "{\"b\":1,\"a\":2}"
    (Json.to_string (Json.Obj [ ("b", Json.Int 1); ("a", Json.Int 2) ]));
  check_str "integral float" "2.0" (Json.to_string (Json.Float 2.));
  check_str "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check_str "control chars escaped" "\"\\u0001\""
    (Json.to_string (Json.String "\x01"))

let test_json_parse_roundtrip () =
  (* everything the serializer emits must read back structurally
     identical — the fuzz corpus depends on it *)
  let samples =
    [ Json.Null
    ; Json.Bool false
    ; Json.Int (-123456789)
    ; Json.Float 1.5
    ; Json.String "he said \"hi\"\n\ttab \x01 done"
    ; Json.List []
    ; Json.Obj []
    ; Json.Obj
        [ ("seed", Json.Int 42)
        ; ("detail", Json.String "divergence:load-vs-alu")
        ; ("nested", Json.List [ Json.Obj [ ("x", Json.Float 0.25) ]; Json.Null ])
        ]
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string ~pretty:true v in
      match Json.parse s with
      | Ok v' -> check_bool ("roundtrip " ^ s) true (v = v')
      | Error msg -> Alcotest.fail (s ^ ": " ^ msg))
    samples;
  (* accessors *)
  (match Json.parse {|{"a": 1, "b": "two"}|} with
  | Ok j ->
    check "member int" 1
      (Option.value ~default:0 (Option.bind (Json.member "a" j) Json.to_int));
    check_str "member str" "two"
      (Option.value ~default:"" (Option.bind (Json.member "b" j) Json.to_str))
  | Error msg -> Alcotest.fail msg);
  (* malformed inputs produce Error, never exceptions *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed " ^ s))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

(* --- histogram ------------------------------------------------------------- *)

let test_histogram_bucketing () =
  let h = Histogram.create ~bounds:[| 0; 1; 2; 4; 8 |] in
  List.iter (Histogram.observe h) [ 0; 1; 1; 2; 3; 4; 7; 9; 100 ];
  check "count" 9 (Histogram.count h);
  check "sum" 127 (Histogram.sum h);
  Alcotest.(check (list (pair (option int) int)))
    "bucket layout"
    [ (Some 0, 1); (Some 1, 2); (Some 2, 1); (Some 4, 2); (Some 8, 1); (None, 2) ]
    (Histogram.bucket_counts h);
  check_bool "rejects unsorted bounds" true
    (try
       ignore (Histogram.create ~bounds:[| 2; 1 |]);
       false
     with Invalid_argument _ -> true)

let test_histogram_percentiles () =
  let h = Histogram.create ~bounds:[| 1; 2; 4; 8 |] in
  (* 90 observations of 1, 9 of 3, 1 of 20 *)
  for _ = 1 to 90 do Histogram.observe h 1 done;
  for _ = 1 to 9 do Histogram.observe h 3 done;
  Histogram.observe h 20;
  check "p50" 1 (Option.get (Histogram.percentile h 50.));
  check "p90" 1 (Option.get (Histogram.percentile h 90.));
  check "p95 lands in (2,4]" 4 (Option.get (Histogram.percentile h 95.));
  check "p100 is the max" 20 (Option.get (Histogram.percentile h 100.));
  check "max seen" 20 (Option.get (Histogram.max_seen h));
  check_bool "empty has no percentile" true
    (Histogram.percentile (Histogram.create ~bounds:[| 1 |]) 50. = None)

(* --- metric registry ------------------------------------------------------- *)

let test_metrics_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "cycles" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  check "counter value" 42 (Metrics.value c);
  check_bool "same name, same counter" true (Metrics.counter reg "cycles" == c);
  let h = Metrics.histogram reg ~bounds:[| 1; 2 |] "lat" in
  Histogram.observe h 1;
  Histogram.observe h 5;
  let csv = Metrics.to_csv reg in
  check_bool "csv has counter row" true
    (List.mem "cycles,42" (String.split_on_char '\n' csv));
  check_bool "csv has overflow bucket row" true
    (List.mem "lat_bucket_le_inf,1" (String.split_on_char '\n' csv));
  check_bool "name collision rejected" true
    (try
       ignore (Metrics.histogram reg ~bounds:[| 1 |] "cycles");
       false
     with Invalid_argument _ -> true)

(* --- trace exporter -------------------------------------------------------- *)

let test_trace_events () =
  let tr = Trace.create ~process_name:"t" () in
  Trace.set_thread_name tr ~tid:1 "loads";
  Trace.complete tr ~name:"ld" ~ts:10 ~dur:0 ~tid:1
    ~args:[ ("pc", Json.Int 4) ] ();
  Trace.complete tr ~name:"add" ~ts:11 ~dur:1 ();
  check "two events" 2 (Trace.events tr);
  let s = Json.to_string (Trace.to_json tr) in
  check_bool "envelope" true
    (String.length s > 0 && String.sub s 0 15 = "{\"traceEvents\":");
  (* zero-duration events are widened to stay visible in the viewer *)
  check_bool "dur clamped to 1" true (contains s "\"dur\":1");
  check_bool "thread name metadata present" true
    (contains s "\"thread_name\"" && contains s "\"loads\"")

(* --- stall taxonomy -------------------------------------------------------- *)

let test_stall_names_roundtrip () =
  List.iter
    (fun cause ->
      check_bool (Stall.name cause) true (Stall.of_name (Stall.name cause) = Some cause))
    Stall.all;
  check "cardinal" (List.length Stall.all) Stall.cardinal

(* --- stall-attribution invariant ------------------------------------------- *)

let invariant_panel = [ "072.sc"; "PGP Encode"; "PGP Decode" ]

let invariant_mechanisms =
  [ Config.No_early
  ; Config.Table_only { entries = 256; compiler_filtered = false }
  ; Config.Dual { table_entries = 256; selection = Config.Compiler_directed } ]

(* One shared serial engine: the tests only need its compile cache. *)
let engine = lazy (Engine.create ~jobs:1 ())

let program_of name = Engine.program (Lazy.force engine) (Suite.find name)

let test_stall_invariant () =
  List.iter
    (fun name ->
      let program = program_of name in
      List.iter
        (fun mech ->
          let cfg = Config.with_mechanism mech Config.default in
          let t, _ = Pipeline.run cfg program in
          let s = Pipeline.stats t in
          let label = name ^ "/" ^ Config.mechanism_name mech in
          check (label ^ ": busy + stalls = cycles") s.Pipeline.cycles
            (Pipeline.busy_cycles t + Pipeline.stall_total t);
          List.iter
            (fun (cause, n) ->
              check_bool (label ^ ": " ^ Stall.name cause ^ " non-negative") true
                (n >= 0))
            (Pipeline.stall_breakdown t))
        invariant_mechanisms)
    invariant_panel

let test_load_sites_account () =
  let program = program_of "PGP Encode" in
  let cfg =
    Config.with_mechanism
      (Config.Dual { table_entries = 256; selection = Config.Compiler_directed })
      Config.default
  in
  let t, _ = Pipeline.run cfg program in
  let s = Pipeline.stats t in
  let sites = Pipeline.load_sites t in
  check_bool "has sites" true (sites <> []);
  check "site counts sum to loads" s.Pipeline.loads
    (List.fold_left (fun acc site -> acc + site.Pipeline.site_count) 0 sites);
  check "site latency sums to total" s.Pipeline.load_latency_sum
    (List.fold_left (fun acc site -> acc + site.Pipeline.site_latency_sum) 0 sites);
  check "aggregate histogram covers every load" s.Pipeline.loads
    (Histogram.count (Pipeline.load_latency_histogram t));
  check "site attempts sum to table attempts" s.Pipeline.table_attempts
    (List.fold_left (fun acc site -> acc + site.Pipeline.site_table_attempts) 0 sites);
  (* PCs are unique and ascending *)
  let pcs = List.map (fun site -> site.Pipeline.site_pc) sites in
  check_bool "pcs sorted" true (List.sort compare pcs = pcs);
  check "pcs unique" (List.length pcs)
    (List.length (List.sort_uniq compare pcs))

(* --- BRIC stats ------------------------------------------------------------ *)

let test_bric_stats () =
  let b = Bric.create 2 in
  ignore (Bric.probe b ~cycle:0 1);  (* miss, allocate *)
  ignore (Bric.probe b ~cycle:2 1);  (* hit *)
  ignore (Bric.probe b ~cycle:2 2);  (* miss, allocate *)
  ignore (Bric.probe b ~cycle:4 3);  (* miss, evicts LRU (reg 1) *)
  let st = Bric.stats b in
  check "probes" 4 st.Bric.br_probes;
  check "hits" 1 st.Bric.br_hits;
  check "evictions" 1 st.Bric.br_evictions

let test_bric_stats_surfaced () =
  let program = program_of "PGP Encode" in
  let cfg =
    Config.with_mechanism (Config.Calc_only { bric_entries = 8 }) Config.default
  in
  let t, _ = Pipeline.run cfg program in
  match Pipeline.bric_stats t with
  | None -> Alcotest.fail "calc-only pipeline must expose BRIC stats"
  | Some st -> check_bool "probes counted" true (st.Bric.br_probes > 0)

(* --- golden report shape --------------------------------------------------- *)

(* A tiny deterministic kernel: strided ld_p loads plus a store, so the
   report exercises sites, speculation and stall attribution.  The
   golden file pins the exact report; to regenerate after an intended
   report-shape or timing change:

     ELAG_UPDATE_GOLDEN=$PWD/test/golden_report.json dune runtest *)

let golden_program () =
  let layout = Layout.create () in
  ignore (Layout.add layout ~label:"arr" ~align:4 ~init:(Layout.Zeros 4096));
  Program.assemble ~layout
    [ Program.Label "_start"
    ; Program.Insn (Insn.Li { dst = 10; imm = Layout.default_base })
    ; Program.Insn (Insn.Li { dst = 12; imm = 0 })
    ; Program.Insn (Insn.Li { dst = 13; imm = 0 })
    ; Program.Label "loop"
    ; Program.Insn
        (Insn.Load
           { spec = Insn.Ld_p; size = Insn.Word; sign = Insn.Signed; dst = 14
           ; addr = Insn.Base_offset (10, 0) })
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 13; src1 = 13; src2 = Insn.R 14 })
    ; Program.Insn (Insn.Store { size = Insn.Word; src = 13; addr = Insn.Base_offset (10, 0) })
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 10; src1 = 10; src2 = Insn.I 4 })
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 12; src1 = 12; src2 = Insn.I 1 })
    ; Program.Insn
        (Insn.Branch { cond = Insn.Lt; src1 = 12; src2 = Insn.I 500; target = "loop" })
    ; Program.Insn Insn.Halt ]

let golden_report () =
  let cfg =
    Config.with_mechanism
      (Config.Dual { table_entries = 64; selection = Config.Compiler_directed })
      Config.default
  in
  let t, _ = Pipeline.run cfg (golden_program ()) in
  Json.to_string ~pretty:true (Report.to_json ~meta:[ ("workload", Json.String "golden") ] t)
  ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_report () =
  (match Sys.getenv_opt "ELAG_UPDATE_GOLDEN" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (golden_report ());
    close_out oc
  | None -> ());
  let expected = read_file "golden_report.json" in
  check_str "report matches golden file" expected (golden_report ())

let suite =
  [ Alcotest.test_case "json: printing" `Quick test_json_printing
  ; Alcotest.test_case "json: parse roundtrip" `Quick test_json_parse_roundtrip
  ; Alcotest.test_case "histogram: bucketing" `Quick test_histogram_bucketing
  ; Alcotest.test_case "histogram: percentiles" `Quick test_histogram_percentiles
  ; Alcotest.test_case "metrics: registry" `Quick test_metrics_registry
  ; Alcotest.test_case "trace: events" `Quick test_trace_events
  ; Alcotest.test_case "stall: names" `Quick test_stall_names_roundtrip
  ; Alcotest.test_case "pipeline: stall invariant" `Quick test_stall_invariant
  ; Alcotest.test_case "pipeline: load sites account" `Quick test_load_sites_account
  ; Alcotest.test_case "bric: stats" `Quick test_bric_stats
  ; Alcotest.test_case "bric: surfaced" `Quick test_bric_stats_surfaced
  ; Alcotest.test_case "report: golden file" `Quick test_golden_report ]
