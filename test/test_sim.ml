(* Simulator tests: memory, caches, the emulator on hand-assembled
   programs, and the pipeline timing model's key behaviours (load-use
   stall, ld_p/ld_e latency reduction, port pressure, speedup
   ordering). *)

module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Layout = Elag_isa.Layout
module Program = Elag_isa.Program
module Memory = Elag_sim.Memory
module Cache = Elag_sim.Cache
module Emulator = Elag_sim.Emulator
module Pipeline = Elag_sim.Pipeline
module Config = Elag_sim.Config

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- memory -------------------------------------------------------------- *)

let test_memory_rw () =
  let m = Memory.create ~size:4096 () in
  Memory.write_word m 100 0x12345678;
  check "word" 0x12345678 (Memory.read_word m 100);
  check "byte 0 (little endian)" 0x78 (Memory.read_byte_u m 100);
  check "byte 3" 0x12 (Memory.read_byte_u m 103);
  Memory.write_word m 200 (-1);
  check "negative word" (-1) (Memory.read_word m 200);
  check "signed byte" (-1) (Memory.read_byte_s m 200);
  check "unsigned byte" 255 (Memory.read_byte_u m 200);
  Memory.write_half m 300 0xFFFF;
  check "signed half" (-1) (Memory.read_half_s m 300);
  check "unsigned half" 0xFFFF (Memory.read_half_u m 300)

let test_memory_fault () =
  let m = Memory.create ~size:4096 () in
  Alcotest.check_raises "oob" (Memory.Fault 4093) (fun () ->
      ignore (Memory.read_word m 4093));
  Alcotest.check_raises "negative" (Memory.Fault (-4)) (fun () ->
      ignore (Memory.read_word m (-4)))

(* --- cache ---------------------------------------------------------------- *)

let test_cache_direct_mapped () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 () in
  check_bool "cold miss" false (Cache.access c 0);
  check_bool "hit after fill" true (Cache.access c 0);
  check_bool "same line hits" true (Cache.access c 63);
  check_bool "next line misses" false (Cache.access c 64);
  (* 1024/64 = 16 lines: address 0 and 1024 conflict *)
  check_bool "conflicting line evicts" false (Cache.access c 1024);
  check_bool "original evicted" false (Cache.access c 0)

let test_cache_probe_pure () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 () in
  check_bool "probe misses" false (Cache.probe c 0);
  check_bool "probe does not fill" false (Cache.probe c 0);
  let accesses, _ = Cache.stats c in
  check "probe not counted" 0 accesses

let test_cache_associativity () =
  (* 2-way, 2 sets of 64B lines: three conflicting lines fit two ways *)
  let c = Cache.create ~ways:2 ~size_bytes:256 ~line_bytes:64 () in
  check_bool "miss a" false (Cache.access c 0);
  check_bool "miss b (same set)" false (Cache.access c 128);
  check_bool "both resident" true (Cache.probe c 0 && Cache.probe c 128);
  (* third conflicting line evicts the LRU (a) *)
  check_bool "miss c" false (Cache.access c 256);
  check_bool "lru evicted" false (Cache.probe c 0);
  check_bool "mru kept" true (Cache.probe c 128);
  (* touching b then filling keeps b *)
  ignore (Cache.access c 128);
  ignore (Cache.access c 0);
  check_bool "c was lru now" false (Cache.probe c 256)

let test_cache_store_no_allocate () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 () in
  check_bool "store miss" false (Cache.access_store c 0);
  check_bool "store did not allocate" false (Cache.probe c 0)

(* --- emulator on hand-written assembly ----------------------------------- *)

let asm ?(data = []) items =
  let layout = Layout.create () in
  List.iter
    (fun (label, init) -> ignore (Layout.add layout ~label ~align:4 ~init))
    data;
  Program.assemble ~layout (Program.Label "_start" :: items)

let run program =
  let emu = Emulator.run_program program in
  (Emulator.output emu, Emulator.retired emu)

let test_emulator_alu_program () =
  let p =
    asm
      [ Program.Insn (Insn.Li { dst = 10; imm = 6 })
      ; Program.Insn (Insn.Alu { op = Insn.Mul; dst = 11; src1 = 10; src2 = Insn.I 7 })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = Reg.arg_first; src1 = 11; src2 = Insn.I 0 })
      ; Program.Insn (Insn.Syscall Insn.Print_int)
      ; Program.Insn Insn.Halt ]
  in
  let out, retired = run p in
  Alcotest.(check string) "output" "42\n" out;
  check "retired" 5 retired

let test_emulator_memory_and_branches () =
  let p =
    asm
      ~data:[ ("vec", Layout.Words [ 3; 5; 7; 11 ]) ]
      [ Program.Insn (Insn.Li { dst = 10; imm = Layout.default_base })  (* &vec *)
      ; Program.Insn (Insn.Li { dst = 11; imm = 0 })  (* sum *)
      ; Program.Insn (Insn.Li { dst = 12; imm = 0 })  (* i *)
      ; Program.Label "loop"
      ; Program.Insn
          (Insn.Load
             { spec = Insn.Ld_n; size = Insn.Word; sign = Insn.Signed; dst = 13
             ; addr = Insn.Base_offset (10, 0) })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 11; src1 = 11; src2 = Insn.R 13 })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 10; src1 = 10; src2 = Insn.I 4 })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 12; src1 = 12; src2 = Insn.I 1 })
      ; Program.Insn
          (Insn.Branch { cond = Insn.Lt; src1 = 12; src2 = Insn.I 4; target = "loop" })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = Reg.arg_first; src1 = 11; src2 = Insn.I 0 })
      ; Program.Insn (Insn.Syscall Insn.Print_int)
      ; Program.Insn Insn.Halt ]
  in
  let out, _ = run p in
  Alcotest.(check string) "sum" "26\n" out

let test_emulator_call_return () =
  let p =
    asm
      [ Program.Insn (Insn.Li { dst = Reg.sp; imm = 65536 })
      ; Program.Insn (Insn.Jal "double")
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = Reg.arg_first; src1 = Reg.rv; src2 = Insn.I 0 })
      ; Program.Insn (Insn.Syscall Insn.Print_int)
      ; Program.Insn Insn.Halt
      ; Program.Label "double"
      ; Program.Insn (Insn.Li { dst = Reg.rv; imm = 21 })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = Reg.rv; src1 = Reg.rv; src2 = Insn.R Reg.rv })
      ; Program.Insn (Insn.Jr Reg.ra) ]
  in
  let out, _ = run p in
  Alcotest.(check string) "call" "42\n" out

let test_emulator_runaway_guard () =
  let p = asm [ Program.Label "spin"; Program.Insn (Insn.Jump "spin") ] in
  check_bool "raises Runaway" true
    (try
       ignore (Emulator.run_program ~max_insns:1000 p);
       false
     with Emulator.Runaway _ -> true)

(* Boundary behaviour of Memory.check: the last in-range access of
   each width succeeds, one byte past the end faults, and negative
   addresses fault rather than wrap. *)
let test_memory_check_boundaries () =
  let size = 4096 in
  let m = Memory.create ~size () in
  Memory.write_word m (size - 4) 0x0BADCAFE;
  check "word at size-4" 0x0BADCAFE (Memory.read_word m (size - 4));
  Memory.write_half m (size - 2) 0x1234;
  check "half at size-2" 0x1234 (Memory.read_half_u m (size - 2));
  Memory.write_byte m (size - 1) 0xAB;
  check "byte at size-1" 0xAB (Memory.read_byte_u m (size - 1));
  (* addr + n = size + 1: the first word start that overruns *)
  Alcotest.check_raises "word ending at size+1" (Memory.Fault (size - 3))
    (fun () -> ignore (Memory.read_word m (size - 3)));
  Alcotest.check_raises "half ending at size+1" (Memory.Fault (size - 1))
    (fun () -> ignore (Memory.read_half_u m (size - 1)));
  Alcotest.check_raises "byte at size" (Memory.Fault size) (fun () ->
      ignore (Memory.read_byte_u m size));
  Alcotest.check_raises "negative byte" (Memory.Fault (-1)) (fun () ->
      ignore (Memory.read_byte_u m (-1)));
  Alcotest.check_raises "negative word write" (Memory.Fault (-4)) (fun () ->
      Memory.write_word m (-4) 0)

(* A computed jump to exactly code_len (one past the last instruction)
   must raise Bad_jump carrying that pc and the retire count. *)
let test_bad_jump_at_code_len () =
  let p =
    asm
      [ Program.Insn (Insn.Li { dst = Reg.tmp_first; imm = 2 })
      ; Program.Insn (Insn.Jr Reg.tmp_first) ]
  in
  check_bool "raises Bad_jump at code_len" true
    (try
       ignore (Emulator.run_program p);
       false
     with Emulator.Bad_jump { pc; retired } -> pc = 2 && retired = 2)

(* Runaway fires at exactly max_insns — and a program that needs
   exactly the budget does not trip it. *)
let test_runaway_exact_budget () =
  let spin = asm [ Program.Label "spin"; Program.Insn (Insn.Jump "spin") ] in
  check_bool "payload is the budget" true
    (try
       ignore (Emulator.run_program ~max_insns:137 spin);
       false
     with Emulator.Runaway n -> n = 137);
  let three =
    asm
      [ Program.Insn Insn.Nop; Program.Insn Insn.Nop; Program.Insn Insn.Halt ]
  in
  let emu = Emulator.run_program ~max_insns:3 three in
  check "exact budget retires fully" 3 (Emulator.retired emu);
  Alcotest.check_raises "one below the need" (Emulator.Runaway 2) (fun () ->
      ignore (Emulator.run_program ~max_insns:2 three))

(* The step API behind the differential oracle: one retire per call,
   false once halted, observer sees the same stream as run. *)
let test_emulator_step_lockstep () =
  let p =
    asm
      [ Program.Insn (Insn.Li { dst = Reg.arg_first; imm = 7 })
      ; Program.Insn (Insn.Syscall Insn.Print_int)
      ; Program.Insn Insn.Halt ]
  in
  let a = Emulator.create p and b = Emulator.create p in
  Emulator.run a;
  let steps = ref 0 in
  while Emulator.step b do
    incr steps
  done;
  check "steps = retired" (Emulator.retired a) !steps;
  check "retired agrees" (Emulator.retired a) (Emulator.retired b);
  check_bool "halted" true (Emulator.halted b);
  check_bool "step after halt" false (Emulator.step b);
  Alcotest.(check string) "output agrees" (Emulator.output a) (Emulator.output b)

let test_zero_register_immutable () =
  let p =
    asm
      [ Program.Insn (Insn.Li { dst = Reg.zero; imm = 99 })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = Reg.arg_first; src1 = Reg.zero; src2 = Insn.I 0 })
      ; Program.Insn (Insn.Syscall Insn.Print_int)
      ; Program.Insn Insn.Halt ]
  in
  let out, _ = run p in
  Alcotest.(check string) "zero stays zero" "0\n" out

(* --- pipeline timing --------------------------------------------------------- *)

(* Pointer ring with leaf loads (the paper's Figure 1d): chase [next]
   pointers, also loading a payload field off the same base each
   iteration.  The leaf load benefits from ld_e. *)
let pointer_chase_program spec =
  let nodes = 64 in
  let node_words i =
    (* payload, next *)
    [ i * 3; Layout.default_base + (8 * ((i + 1) mod nodes)) ]
  in
  let data =
    [ ("ring", Layout.Words (List.concat_map node_words (List.init nodes Fun.id))) ]
  in
  asm ~data
    [ Program.Insn (Insn.Li { dst = 10; imm = Layout.default_base })
    ; Program.Insn (Insn.Li { dst = 12; imm = 0 })
    ; Program.Insn (Insn.Li { dst = 13; imm = 0 })
    ; Program.Label "loop"
    ; Program.Insn
        (Insn.Load
           { spec; size = Insn.Word; sign = Insn.Signed; dst = 14
           ; addr = Insn.Base_offset (10, 0) })  (* payload *)
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 13; src1 = 13; src2 = Insn.R 14 })
    ; Program.Insn
        (Insn.Load
           { spec; size = Insn.Word; sign = Insn.Signed; dst = 10
           ; addr = Insn.Base_offset (10, 4) })  (* next *)
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 12; src1 = 12; src2 = Insn.I 1 })
    ; Program.Insn
        (Insn.Branch { cond = Insn.Lt; src1 = 12; src2 = Insn.I 5000; target = "loop" })
    ; Program.Insn Insn.Halt ]

(* Strided walk over a large array: the ld_p target case. *)
let strided_program spec =
  asm
    ~data:[ ("arr", Layout.Zeros 32768) ]
    [ Program.Insn (Insn.Li { dst = 10; imm = Layout.default_base })
    ; Program.Insn (Insn.Li { dst = 12; imm = 0 })
    ; Program.Insn (Insn.Li { dst = 13; imm = 0 })
    ; Program.Label "loop"
    ; Program.Insn
        (Insn.Load
           { spec; size = Insn.Word; sign = Insn.Signed; dst = 14
           ; addr = Insn.Base_offset (10, 0) })
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 13; src1 = 13; src2 = Insn.R 14 })
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 10; src1 = 10; src2 = Insn.I 4 })
    ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 12; src1 = 12; src2 = Insn.I 1 })
    ; Program.Insn
        (Insn.Branch { cond = Insn.Lt; src1 = 12; src2 = Insn.I 5000; target = "loop" })
    ; Program.Insn Insn.Halt ]

let cycles_of mech program =
  let cfg = Config.with_mechanism mech Config.default in
  let stats, _ = Pipeline.simulate cfg program in
  stats.Pipeline.cycles

let test_load_use_stall_baseline () =
  (* ALU-only loop vs load-use loop of the same instruction count: the
     load-use loop must be slower by roughly a cycle per iteration. *)
  let alu_loop =
    asm
      [ Program.Insn (Insn.Li { dst = 12; imm = 0 })
      ; Program.Label "loop"
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 11; src1 = 12; src2 = Insn.I 3 })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 13; src1 = 11; src2 = Insn.I 1 })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 12; src1 = 12; src2 = Insn.I 1 })
      ; Program.Insn
          (Insn.Branch { cond = Insn.Lt; src1 = 12; src2 = Insn.I 10000; target = "loop" })
      ; Program.Insn Insn.Halt ]
  in
  let load_loop =
    asm
      ~data:[ ("w", Layout.Words [ 1 ]) ]
      [ Program.Insn (Insn.Li { dst = 12; imm = 0 })
      ; Program.Label "loop"
      ; Program.Insn
          (Insn.Load
             { spec = Insn.Ld_n; size = Insn.Word; sign = Insn.Signed; dst = 11
             ; addr = Insn.Absolute Layout.default_base })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 13; src1 = 11; src2 = Insn.I 1 })
      ; Program.Insn (Insn.Alu { op = Insn.Add; dst = 12; src1 = 12; src2 = Insn.I 1 })
      ; Program.Insn
          (Insn.Branch { cond = Insn.Lt; src1 = 12; src2 = Insn.I 10000; target = "loop" })
      ; Program.Insn Insn.Halt ]
  in
  let alu_cycles = cycles_of Config.No_early alu_loop in
  let load_cycles = cycles_of Config.No_early load_loop in
  check_bool "load-use loop slower" true (load_cycles > alu_cycles)

let dual_cc =
  Config.Dual { table_entries = 256; selection = Config.Compiler_directed }

let test_ld_e_speeds_pointer_leaves () =
  let base = cycles_of Config.No_early (pointer_chase_program Insn.Ld_n) in
  let early = cycles_of dual_cc (pointer_chase_program Insn.Ld_e) in
  check_bool "ld_e speeds the ring walk" true (early < base);
  (* and an ld_n binary under the same config gains nothing *)
  let inert = cycles_of dual_cc (pointer_chase_program Insn.Ld_n) in
  check "ld_n is inert under dual-cc" base inert

let test_ld_p_speeds_strided () =
  let base = cycles_of Config.No_early (strided_program Insn.Ld_n) in
  let predicted = cycles_of dual_cc (strided_program Insn.Ld_p) in
  check_bool "ld_p speeds the strided walk" true (predicted < base)

let test_table_stats_reported () =
  let cfg = Config.with_mechanism dual_cc Config.default in
  let stats, _ = Pipeline.simulate cfg (strided_program Insn.Ld_p) in
  check_bool "attempts counted" true (stats.Pipeline.table_attempts > 0);
  check_bool "mostly successful" true
    (stats.Pipeline.table_successes * 10 > stats.Pipeline.table_attempts * 7);
  check "loads classified p" stats.Pipeline.loads stats.Pipeline.loads_p

let test_calc_only_bric () =
  let base = cycles_of Config.No_early (pointer_chase_program Insn.Ld_n) in
  let bric =
    cycles_of (Config.Calc_only { bric_entries = 8 }) (pointer_chase_program Insn.Ld_n)
  in
  check_bool "BRIC speeds pointer leaves without opcodes" true (bric < base)

let test_dcache_miss_penalty () =
  (* walking 32 KB of zeros with 64 B lines: every 16th load misses *)
  let cfg = Config.with_mechanism Config.No_early Config.default in
  let stats, _ = Pipeline.simulate cfg (strided_program Insn.Ld_n) in
  check_bool "misses observed" true (stats.Pipeline.dcache_misses >= 300);
  check_bool "latency includes penalty" true
    (stats.Pipeline.load_latency_sum > 2 * stats.Pipeline.loads)

let test_ld_e_trace_latencies () =
  (* cycle-exact check of the Figure 1d claim: in steady state, leaf
     loads off the chain register forward with latency 0 under ld_e,
     while the same binary's ld_n loads pay the full 2 cycles *)
  let collect mech program =
    let cfg = Config.with_mechanism mech Config.default in
    let t = Pipeline.create cfg in
    let events = ref [] in
    Pipeline.set_tracer t (fun pc insn cycle latency ->
        events := (pc, insn, cycle, latency) :: !events);
    ignore (Emulator.run_program ~observer:(Pipeline.observer t) program);
    List.rev !events
  in
  let steady_load_latencies mech spec =
    let events = collect mech (pointer_chase_program spec) in
    (* drop warmup, keep payload-load events (offset 0) *)
    List.filteri (fun i _ -> i > List.length events / 2) events
    |> List.filter_map (fun (_, insn, _, latency) ->
           match insn with
           | Insn.Load { addr = Insn.Base_offset (_, 0); _ } -> Some latency
           | _ -> None)
  in
  let baseline = steady_load_latencies Config.No_early Insn.Ld_n in
  check_bool "baseline leaf loads pay 2 cycles" true
    (List.for_all (fun l -> l = 2) baseline);
  let early = steady_load_latencies dual_cc Insn.Ld_e in
  let zeros = List.length (List.filter (fun l -> l = 0) early) in
  check_bool "most ld_e leaf loads forward with latency 0" true
    (zeros * 10 >= List.length early * 9)

let test_speedup_ordering_on_workload () =
  (* on a mixed workload: every early-generation config is at least as
     fast as baseline and never slower than 0.95x *)
  let w = Elag_workloads.Suite.find "072.sc" in
  let program = Elag_harness.Compile.compile w.Elag_workloads.Workload.source in
  let base = cycles_of Config.No_early program in
  List.iter
    (fun mech ->
      let c = cycles_of mech program in
      check_bool (Config.mechanism_name mech ^ " not slower than 1.05x base") true
        (float_of_int c <= 1.05 *. float_of_int base))
    [ Config.Table_only { entries = 256; compiler_filtered = true }
    ; Config.Calc_only { bric_entries = 16 }
    ; dual_cc
    ; Config.Dual { table_entries = 256; selection = Config.Hardware_selected } ]

(* --- mechanism naming round-trip ----------------------------------------- *)

let test_mechanism_roundtrip () =
  List.iter
    (fun m ->
      let name = Config.Mechanism.to_string m in
      match Config.Mechanism.of_string name with
      | Some m' -> check_bool (name ^ " round-trips") true (m = m')
      | None -> Alcotest.fail (name ^ " failed to parse back"))
    Config.Mechanism.all;
  (* short CLI aliases *)
  check_bool "dual-cc alias" true
    (Config.Mechanism.of_string "dual-cc"
    = Some (Config.Dual { table_entries = 256; selection = Config.Compiler_directed }));
  check_bool "dual-hw alias" true
    (Config.Mechanism.of_string "dual-hw"
    = Some (Config.Dual { table_entries = 256; selection = Config.Hardware_selected }));
  check_bool "bare table alias" true
    (Config.Mechanism.of_string "table-128"
    = Some (Config.Table_only { entries = 128; compiler_filtered = false }));
  check_bool "unknown rejected" true (Config.Mechanism.of_string "bogus-64" = None);
  check_bool "non-numeric rejected" true (Config.Mechanism.of_string "table-x" = None);
  check_bool "grid is duplicate-free" true
    (List.length Config.Mechanism.all
    = List.length (List.sort_uniq compare Config.Mechanism.all))

let suite_head =
  [ Alcotest.test_case "config: mechanism round-trip" `Quick test_mechanism_roundtrip
  ; Alcotest.test_case "memory: rw" `Quick test_memory_rw
  ; Alcotest.test_case "memory: faults" `Quick test_memory_fault
  ; Alcotest.test_case "memory: check boundaries" `Quick
      test_memory_check_boundaries
  ; Alcotest.test_case "cache: direct mapped" `Quick test_cache_direct_mapped
  ; Alcotest.test_case "cache: probe pure" `Quick test_cache_probe_pure
  ; Alcotest.test_case "cache: associativity" `Quick test_cache_associativity
  ; Alcotest.test_case "cache: store no-allocate" `Quick test_cache_store_no_allocate
  ; Alcotest.test_case "emulator: alu" `Quick test_emulator_alu_program
  ; Alcotest.test_case "emulator: memory/branches" `Quick test_emulator_memory_and_branches
  ; Alcotest.test_case "emulator: call/return" `Quick test_emulator_call_return
  ; Alcotest.test_case "emulator: runaway" `Quick test_emulator_runaway_guard
  ; Alcotest.test_case "emulator: bad jump at code_len" `Quick
      test_bad_jump_at_code_len
  ; Alcotest.test_case "emulator: runaway exact budget" `Quick
      test_runaway_exact_budget
  ; Alcotest.test_case "emulator: step lockstep" `Quick
      test_emulator_step_lockstep
  ; Alcotest.test_case "emulator: zero register" `Quick test_zero_register_immutable
  ; Alcotest.test_case "pipeline: load-use stall" `Quick test_load_use_stall_baseline
  ; Alcotest.test_case "pipeline: ld_e pointer leaves" `Quick test_ld_e_speeds_pointer_leaves
  ; Alcotest.test_case "pipeline: ld_p strided" `Quick test_ld_p_speeds_strided
  ; Alcotest.test_case "pipeline: table stats" `Quick test_table_stats_reported
  ; Alcotest.test_case "pipeline: bric" `Quick test_calc_only_bric
  ; Alcotest.test_case "pipeline: miss penalty" `Quick test_dcache_miss_penalty
  ; Alcotest.test_case "pipeline: ld_e trace latencies" `Quick test_ld_e_trace_latencies
  ; Alcotest.test_case "pipeline: config ordering" `Quick test_speedup_ordering_on_workload ]

let suite = suite_head
