(* Fuzzing-layer tests: the typed EPA-32 generator (lint-clean,
   terminating, deterministic, full specifier/addressing-mode
   coverage), the MiniC generator through the real front-end, campaign
   determinism across -j, the planted-mutation detection + shrinking +
   corpus round-trip pipeline, and replay of the committed corpus. *)

module Insn = Elag_isa.Insn
module Program = Elag_isa.Program
module Config = Elag_sim.Config
module Oracle = Elag_verify.Oracle
module Lint = Elag_verify.Lint
module Json = Elag_telemetry.Json
module Gen = Elag_fuzz.Gen
module Shrink = Elag_fuzz.Shrink
module Corpus = Elag_fuzz.Corpus
module Campaign = Elag_fuzz.Campaign

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- generator ------------------------------------------------------------- *)

let test_gen_lint_clean_and_green () =
  (* Gen.program lint-enforces internally; here we additionally prove
     termination within the tracked budget and oracle self-agreement
     under both a baseline and a speculating mechanism. *)
  let mechs =
    [ Config.No_early
    ; Config.Dual { table_entries = 256; selection = Config.Compiler_directed }
    ]
  in
  for seed = 0 to 39 do
    let g = Gen.program seed in
    List.iter
      (fun m ->
        let cfg = Config.with_mechanism m Config.default in
        let r = Oracle.run ~max_insns:g.Gen.budget cfg g.Gen.program in
        check_bool
          (Printf.sprintf "seed %d green under %s" seed
             (Config.Mechanism.to_string m))
          true (Oracle.ok r))
      mechs
  done

let test_gen_deterministic () =
  let a = Gen.program 12345 and b = Gen.program 12345 in
  check_str "same seed, same listing" (Gen.listing a) (Gen.listing b);
  check "same budget" a.Gen.budget b.Gen.budget;
  let c = Gen.program 12346 in
  check_bool "different seed, different program" true
    (Gen.listing a <> Gen.listing c)

let test_gen_coverage () =
  (* across a modest seed range, every load specifier and every
     addressing mode must appear — the campaign exercises the whole
     ISA surface, not a lucky corner *)
  let specs = Hashtbl.create 4 and modes = Hashtbl.create 4 in
  for seed = 0 to 19 do
    let g = Gen.program seed in
    let p = g.Gen.program in
    for pc = 0 to Program.length p - 1 do
      match Program.insn p pc with
      | Insn.Load { spec; addr; _ } ->
        Hashtbl.replace specs spec ();
        Hashtbl.replace modes
          (match addr with
          | Insn.Base_offset _ -> `Off
          | Insn.Base_index _ -> `Idx
          | Insn.Absolute _ -> `Abs)
          ()
      | _ -> ()
    done
  done;
  check "all three load specifiers" 3 (Hashtbl.length specs);
  check "all three addressing modes" 3 (Hashtbl.length modes)

let test_gen_minic_compiles_green () =
  for seed = 0 to 7 do
    let program = Elag_harness.Compile.compile (Gen.minic seed) in
    Lint.enforce program;
    let r =
      Oracle.run ~max_insns:Gen.minic_budget Config.default program
    in
    check_bool (Printf.sprintf "minic seed %d green" seed) true (Oracle.ok r)
  done;
  check_str "minic deterministic" (Gen.minic 3) (Gen.minic 3)

let test_gen_params_roundtrip () =
  let p = Gen.default_params in
  match Gen.params_of_json (Gen.params_to_json p) with
  | Ok p' -> check_bool "params roundtrip" true (p = p')
  | Error msg -> Alcotest.fail msg

(* --- shrinker -------------------------------------------------------------- *)

let test_shrink_minimizes () =
  (* synthetic predicate: "fails" iff the item list still contains a
     store — the shrinker must strip everything else *)
  let g = Gen.program 99 in
  let has_store items =
    List.exists
      (function Program.Insn i -> Insn.is_store i | _ -> false)
      items
  in
  check_bool "seed program has stores" true (has_store g.Gen.items);
  let shrunk = Shrink.minimize ~check:has_store g.Gen.items in
  check "minimal repro is one instruction" 1 (Shrink.insn_count shrunk);
  check_bool "and it is the store" true (has_store shrunk)

(* --- campaign -------------------------------------------------------------- *)

let small_config =
  { Campaign.default with
    iters = 8
  ; mechanisms =
      [ Config.No_early
      ; Config.Dual { table_entries = 256; selection = Config.Compiler_directed }
      ] }

let test_campaign_deterministic_across_jobs () =
  let summary jobs =
    Json.to_string ~pretty:true
      (Campaign.summary_json (Campaign.run ~jobs small_config))
  in
  let s1 = summary 1 in
  check_str "-j4 byte-identical to -j1" s1 (summary 4);
  check_bool "clean campaign" true
    (Campaign.ok (Campaign.run ~jobs:2 small_config))

let test_campaign_catches_planted_mutation () =
  (* the guarded test hook: flip one opcode in the reference program
     and the campaign must catch it, shrink it small, and produce a
     replayable corpus entry *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "elag-fuzz-test-corpus" in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let config =
    { small_config with
      iters = 2
    ; minic_every = 0
    ; fault_every = 0
    ; mutation = Some "alu-flip"
    ; corpus_dir = Some dir }
  in
  let summary = Campaign.run ~jobs:2 config in
  check_bool "campaign not ok" false (Campaign.ok summary);
  let divergences =
    List.filter
      (fun f -> f.Campaign.f_kind = Campaign.Divergence)
      summary.Campaign.findings
  in
  check_bool "at least one divergence" true (divergences <> []);
  List.iter
    (fun f ->
      check_bool "shrunk" true f.Campaign.f_shrunk;
      check_bool
        (Printf.sprintf "minimal repro is tiny (%d insns)" f.Campaign.f_insns)
        true
        (f.Campaign.f_insns <= 10))
    divergences;
  check_bool "corpus entry written" true (summary.Campaign.saved <> []);
  (* round-trip + replay: the entry regenerates from its seed and the
     mutation is still caught *)
  List.iter
    (fun path ->
      match Corpus.load_file path with
      | Error msg -> Alcotest.fail msg
      | Ok entry -> (
        check_str "mutation recorded" "alu-flip"
          (Option.value entry.Corpus.mutation ~default:"-");
        check_bool "listing attached" true (entry.Corpus.listing <> "");
        match Corpus.replay entry with
        | Ok _ -> ()
        | Error msg -> Alcotest.fail ("replay: " ^ msg)))
    summary.Campaign.saved

let test_campaign_timeout_degrades_gracefully () =
  (* an unmeetable per-iteration budget must produce structured
     Job_timeout failures, not a wedged pool or an exception *)
  let config =
    { small_config with iters = 3; timeout_ms = Some 1; minic_every = 0
    ; fault_every = 0 }
  in
  let summary = Campaign.run ~jobs:2 config in
  check "every iteration scheduled" 3 summary.Campaign.iterations;
  (* fast iterations may legitimately finish inside 1 ms; what must
     never happen is a failure that is anything but a clean timeout *)
  List.iter
    (fun (_, f) ->
      match f with
      | Elag_engine.Pool.Job_timeout _ -> ()
      | f -> Alcotest.fail (Elag_engine.Pool.failure_to_string f))
    summary.Campaign.failures

(* --- committed corpus replays ---------------------------------------------- *)

let test_committed_corpus_replays () =
  match Corpus.locate () with
  | None -> Alcotest.fail "fuzz/corpus not found from test cwd"
  | Some dir ->
    let results = Corpus.replay_dir dir in
    check_bool "corpus non-empty" true (results <> []);
    List.iter
      (fun (path, r) ->
        match r with
        | Ok _ -> ()
        | Error msg ->
          Alcotest.fail (Printf.sprintf "%s: %s" (Filename.basename path) msg))
      results

let suite =
  [ Alcotest.test_case "gen: lint-clean and oracle-green" `Quick
      test_gen_lint_clean_and_green
  ; Alcotest.test_case "gen: deterministic" `Quick test_gen_deterministic
  ; Alcotest.test_case "gen: specifier/mode coverage" `Quick test_gen_coverage
  ; Alcotest.test_case "gen: minic compiles green" `Quick
      test_gen_minic_compiles_green
  ; Alcotest.test_case "gen: params roundtrip" `Quick test_gen_params_roundtrip
  ; Alcotest.test_case "shrink: minimizes to witness" `Quick
      test_shrink_minimizes
  ; Alcotest.test_case "campaign: -j4 = -j1 (determinism pin)" `Quick
      test_campaign_deterministic_across_jobs
  ; Alcotest.test_case "campaign: planted mutation caught+shrunk" `Quick
      test_campaign_catches_planted_mutation
  ; Alcotest.test_case "campaign: timeout degrades gracefully" `Quick
      test_campaign_timeout_degrades_gracefully
  ; Alcotest.test_case "corpus: committed entries replay" `Quick
      test_committed_corpus_replays ]
