(* Harness tests: profiling and profile-guided reclassification.
   (Artifact caching and distribution accounting moved with the
   Context-to-Engine redesign; see test_engine.ml.) *)

module Compile = Elag_harness.Compile
module Profile = Elag_harness.Profile
module Insn = Elag_isa.Insn
module Program = Elag_isa.Program
module Runtime = Elag_workloads.Runtime

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A program with one hot, perfectly strided load that the compiler
   misclassifies as ld_n (its base register is loaded from memory). *)
let misclassified_src =
  Runtime.with_prelude
    "int data[1024];\n\
     int base_holder;\n\
     int main() {\n\
     int i; int s = 0;\n\
     base_holder = (int)data;\n\
     for (i = 0; i < 1024; i++) {\n\
       int *p = (int*)base_holder;   /* load-dependent base */\n\
       s = s + p[i];\n\
     }\n\
     print_int(s);\n\
     return 0; }"

let test_profile_collects_rates () =
  let program = Compile.compile misclassified_src in
  let prof = Profile.collect program in
  check_bool "loads observed" true (prof.Profile.total_loads > 1000);
  (* at least one load should be highly predictable *)
  let has_predictable =
    List.exists
      (fun (pc, _) ->
        match Profile.rate prof pc with Some r -> r > 0.9 | None -> false)
      (Program.static_loads program)
  in
  check_bool "predictable load found" true has_predictable

let test_reclassify_upgrades_nt () =
  let program = Compile.compile misclassified_src in
  let prof = Profile.collect program in
  let reclassified = Profile.reclassify prof program in
  let count spec p =
    List.length
      (List.filter
         (fun (pc, _) ->
           Insn.load_spec (Program.insn p pc) = Some spec
           && Profile.executions prof pc > 100)
         (Program.static_loads p))
  in
  (* hot ld_n loads with high rates must become ld_p *)
  check_bool "hot ld_n loads reduced" true
    (count Insn.Ld_n reclassified < count Insn.Ld_n program
     || count Insn.Ld_n program = 0);
  (* nothing else is overruled: ld_e loads unchanged *)
  List.iter
    (fun (pc, insn) ->
      match Insn.load_spec insn with
      | Some Insn.Ld_e ->
        check_bool "ld_e untouched" true
          (Insn.load_spec (Program.insn reclassified pc) = Some Insn.Ld_e)
      | _ -> ())
    (Program.static_loads program)

let test_reclassify_threshold () =
  let program = Compile.compile misclassified_src in
  let prof = Profile.collect program in
  (* with an impossible threshold nothing changes *)
  let unchanged = Profile.reclassify ~threshold:1.1 prof program in
  List.iter
    (fun (pc, insn) ->
      check_bool "no change at threshold > 1" true
        (Insn.load_spec (Program.insn unchanged pc) = Insn.load_spec insn))
    (Program.static_loads program)

let suite =
  [ Alcotest.test_case "profile rates" `Quick test_profile_collects_rates
  ; Alcotest.test_case "reclassify upgrades" `Quick test_reclassify_upgrades_nt
  ; Alcotest.test_case "reclassify threshold" `Quick test_reclassify_threshold ]
