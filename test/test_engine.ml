(* Engine tests: the deterministic Domain pool, the single-flight
   artifact cache, the handle-based replacement for the old global
   Context, and the headline determinism pin — a 3-workload ×
   3-mechanism sweep is byte-identical at -j 4 and -j 1. *)

module Pool = Elag_engine.Pool
module Cache = Elag_engine.Cache
module Engine = Elag_engine.Engine
module Config = Elag_sim.Config
module Json = Elag_telemetry.Json
module Suite = Elag_workloads.Suite

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- pool ------------------------------------------------------------------ *)

let test_pool_merges_in_order () =
  let items = Array.init 100 (fun i -> i) in
  let expected = Array.to_list (Array.map (fun i -> i * i) items) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "squares at jobs=%d" jobs)
        expected
        (Array.to_list (Pool.run ~jobs (fun i -> i * i) items)))
    [ 1; 2; 4; 7 ];
  Alcotest.(check (list int))
    "empty input" []
    (Array.to_list (Pool.run ~jobs:4 (fun i -> i) [||]))

let test_pool_propagates_single_failure () =
  (* exactly one failing job: its own exception survives, so specific
     handlers (Compile.Error etc.) still fire *)
  let f i = if i = 3 then failwith (string_of_int i) else i in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "identity kept at jobs=%d" jobs)
        (Failure "3")
        (fun () -> ignore (Pool.run ~jobs f (Array.init 10 (fun i -> i)))))
    [ 1; 4 ]

let test_pool_aggregates_failures () =
  (* several failing jobs: every one is reported, in index order, even
     the ones after the first failure *)
  let f i = if i mod 3 = 0 then failwith (string_of_int i) else i in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "all failures at jobs=%d" jobs)
        (Pool.Failures
           [ (0, "Failure(\"0\")")
           ; (3, "Failure(\"3\")")
           ; (6, "Failure(\"6\")")
           ; (9, "Failure(\"9\")") ])
        (fun () -> ignore (Pool.run ~jobs f (Array.init 10 (fun i -> i)))))
    [ 1; 4 ]

let test_pool_runs_all_domains () =
  (* every item processed exactly once even with more domains than items *)
  let hits = Atomic.make 0 in
  let r = Pool.run ~jobs:16 (fun i -> Atomic.incr hits; i + 1) (Array.init 5 (fun i -> i)) in
  check "all processed" 5 (Atomic.get hits);
  Alcotest.(check (list int)) "results" [ 1; 2; 3; 4; 5 ] (Array.to_list r)

(* --- cache ----------------------------------------------------------------- *)

let test_cache_single_flight () =
  let c : (int, int) Cache.t = Cache.create () in
  let computations = Atomic.make 0 in
  let value_of key =
    Cache.find_or_compute c key (fun () ->
        Atomic.incr computations;
        key * 10)
  in
  (* 24 concurrent lookups over 3 keys: every lookup sees the right
     value and each key is computed exactly once *)
  let results = Pool.run ~jobs:4 (fun i -> value_of (i mod 3)) (Array.init 24 (fun i -> i)) in
  Array.iteri (fun i v -> check (Printf.sprintf "slot %d" i) ((i mod 3) * 10) v) results;
  check "computed once per key" 3 (Atomic.get computations);
  check "populated entries" 3 (Cache.length c)

(* --- engine handle --------------------------------------------------------- *)

let pgp () = Suite.find "PGP Encode"

let dual_cc = Config.Dual { table_entries = 256; selection = Config.Compiler_directed }

let test_engine_caches () =
  let e = Engine.create ~jobs:1 () in
  let w = pgp () in
  check_bool "programs cached" true (Engine.program e w == Engine.program e w);
  check_bool "simulations cached" true
    (Engine.simulate e w Config.No_early == Engine.simulate e w Config.No_early);
  (* two engines share nothing *)
  let e2 = Engine.create ~jobs:1 () in
  check_bool "handles isolated" true (not (Engine.program e w == Engine.program e2 w))

let test_distribution_sums () =
  let e = Engine.create ~jobs:1 () in
  let d = Engine.distribution e (pgp ()) in
  let close a b = abs_float (a -. b) < 0.01 in
  check_bool "static sums to 100" true
    (close (d.Engine.static_nt +. d.Engine.static_pd +. d.Engine.static_ec) 100.);
  check_bool "dynamic sums to 100" true
    (close (d.Engine.dynamic_nt +. d.Engine.dynamic_pd +. d.Engine.dynamic_ec) 100.);
  check_bool "dynamic loads counted" true (d.Engine.total_dynamic_loads > 10_000)

let test_speedup_sane () =
  let e = Engine.create ~jobs:1 () in
  let s = Engine.speedup e (pgp ()) dual_cc in
  check_bool "speedup in a sane band" true (s >= 0.9 && s <= 3.0)

let test_job_names () =
  let j = Engine.Job.make (pgp ()) dual_cc in
  check_str "job name" "PGP Encode/dual-256-cc" (Engine.Job.name j);
  let jp = Engine.Job.make ~variant:Engine.Reclassified (pgp ()) dual_cc in
  check_str "reclassified job name" "PGP Encode/dual-256-cc+prof" (Engine.Job.name jp)

(* --- determinism pin -------------------------------------------------------- *)

(* The acceptance property of the whole redesign: the same sweep on a
   single domain and on four domains yields byte-identical reports.
   Fresh engines each time, so every simulation really re-runs. *)
let pin_jobs () =
  List.concat_map
    (fun name ->
      let w = Suite.find name in
      List.map
        (fun m -> Engine.Job.make w (Config.Mechanism.of_string_exn m))
        [ "table-256-hw"; "calc-16"; "dual-256-cc" ])
    [ "072.sc"; "PGP Encode"; "PGP Decode" ]

(* --- supervised pool ------------------------------------------------------- *)

module Deadline = Elag_verify.Deadline

let test_supervised_ok_matches_run () =
  let items = Array.init 30 (fun i -> i) in
  let outcomes =
    Pool.run_supervised ~jobs:4 (fun _deadline i -> i * i) items
  in
  Alcotest.(check (list int))
    "all ok, in order"
    (Array.to_list (Array.map (fun i -> i * i) items))
    (Array.to_list
       (Array.map
          (function Ok v -> v | Error _ -> Alcotest.fail "unexpected failure")
          outcomes))

(* The acceptance case for the hang-proof pool: one deliberately
   looping job among 20 must come back as Job_timeout while the other
   19 results are unchanged, at every jobs setting. *)
let test_supervised_hung_job_among_20 () =
  let items = Array.init 20 (fun i -> i) in
  let job deadline i =
    if i = 7 then
      (* a worker that would never return: only the deadline poll —
         the same hook simulator jobs drive once per retired
         instruction — can reclaim it *)
      while true do
        Deadline.check deadline
      done;
    i * 100
  in
  List.iter
    (fun jobs ->
      let outcomes = Pool.run_supervised ~timeout_ms:50 ~jobs job items in
      Array.iteri
        (fun i outcome ->
          match (i, outcome) with
          | 7, Error (Pool.Job_timeout { timeout_ms; attempts }) ->
            check "timeout budget reported" 50 timeout_ms;
            check "timeouts are not retried" 1 attempts
          | 7, Ok _ -> Alcotest.fail "hung job reported success"
          | 7, Error f -> Alcotest.fail (Pool.failure_to_string f)
          | i, Ok v ->
            check (Printf.sprintf "job %d identity at jobs=%d" i jobs)
              (i * 100) v
          | i, Error f ->
            Alcotest.fail
              (Printf.sprintf "job %d: %s" i (Pool.failure_to_string f)))
        outcomes;
      check "exactly one failure" 1
        (List.length (Pool.outcome_failures outcomes)))
    [ 1; 4 ]

let test_supervised_retries_crashes () =
  (* a job that crashes twice then succeeds: retries=2 recovers it,
     retries=1 reports Job_failed with the attempt count *)
  let attempts = Atomic.make 0 in
  let flaky _deadline i =
    if i = 0 && Atomic.fetch_and_add attempts 1 < 2 then failwith "flaky";
    i + 10
  in
  let outcomes =
    Pool.run_supervised ~retries:2 ~backoff_ms:1 ~jobs:1 flaky
      (Array.init 3 (fun i -> i))
  in
  check_bool "recovered after retries" true
    (Array.for_all (function Ok _ -> true | Error _ -> false) outcomes);
  Atomic.set attempts 0;
  let outcomes =
    Pool.run_supervised ~retries:1 ~backoff_ms:1 ~jobs:1 flaky
      (Array.init 3 (fun i -> i))
  in
  (match outcomes.(0) with
  | Error (Pool.Job_failed { attempts; message }) ->
    check "attempt count" 2 attempts;
    check_bool "message kept" true (String.length message > 0)
  | _ -> Alcotest.fail "expected Job_failed");
  check_bool "other jobs unaffected" true
    (outcomes.(1) = Ok 11 && outcomes.(2) = Ok 12)

let test_supervised_rejects_bad_args () =
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Pool.run_supervised: negative retries") (fun () ->
      ignore
        (Pool.run_supervised ~retries:(-1) ~jobs:1
           (fun _ i -> i)
           [| 1 |]));
  Alcotest.check_raises "non-positive timeout"
    (Invalid_argument "Pool.run_supervised: non-positive timeout") (fun () ->
      ignore
        (Pool.run_supervised ~timeout_ms:0 ~jobs:1 (fun _ i -> i) [| 1 |]))

let test_parallel_matches_serial () =
  let sweep jobs =
    Json.to_string ~pretty:true
      (Engine.sweep_json (Engine.create ~jobs ()) (pin_jobs ()))
  in
  let serial = sweep 1 in
  check_bool "sweep artifact non-trivial" true (String.length serial > 500);
  check_str "-j 4 byte-identical to -j 1" serial (sweep 4)

let suite =
  [ Alcotest.test_case "pool: order" `Quick test_pool_merges_in_order
  ; Alcotest.test_case "pool: single failure keeps identity" `Quick
      test_pool_propagates_single_failure
  ; Alcotest.test_case "pool: failures aggregate" `Quick
      test_pool_aggregates_failures
  ; Alcotest.test_case "pool: full coverage" `Quick test_pool_runs_all_domains
  ; Alcotest.test_case "pool: supervised ok path" `Quick
      test_supervised_ok_matches_run
  ; Alcotest.test_case "pool: hung job among 20 times out" `Quick
      test_supervised_hung_job_among_20
  ; Alcotest.test_case "pool: supervised retries crashes" `Quick
      test_supervised_retries_crashes
  ; Alcotest.test_case "pool: supervised arg validation" `Quick
      test_supervised_rejects_bad_args
  ; Alcotest.test_case "cache: single flight" `Quick test_cache_single_flight
  ; Alcotest.test_case "engine: caching" `Quick test_engine_caches
  ; Alcotest.test_case "engine: distribution sums" `Quick test_distribution_sums
  ; Alcotest.test_case "engine: speedup sane" `Quick test_speedup_sane
  ; Alcotest.test_case "engine: job names" `Quick test_job_names
  ; Alcotest.test_case "engine: -j4 = -j1 (determinism pin)" `Quick
      test_parallel_matches_serial ]
