(* Benchmark harness.

   Default mode regenerates every table and figure from the paper's
   evaluation section (the rows/series the paper reports):

     dune exec bench/main.exe              all artifacts
     dune exec bench/main.exe table2       one artifact
       (table2 | fig5a | fig5b | fig5c | table3 | table4)

   Additional modes:

     dune exec bench/main.exe micro        Bechamel micro-benchmarks of
                                           the simulator/compiler machinery
                                           (one Test.make per experiment)
     dune exec bench/main.exe ablation     design-choice ablations from
                                           DESIGN.md (issue width, unroll,
                                           miss penalty, table size)
     dune exec bench/main.exe report       write BENCH_pipeline.json:
                                           per-workload cycles/IPC/speedup +
                                           stall-cause breakdown under the
                                           dual-cc scheme, with full config
                                           provenance, so the perf trajectory
                                           is trackable across PRs *)

module Experiments = Elag_harness.Experiments
module Context = Elag_harness.Context
module Compile = Elag_harness.Compile
module Profile = Elag_harness.Profile
module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Emulator = Elag_sim.Emulator
module Suite = Elag_workloads.Suite
module Workload = Elag_workloads.Workload
module Addr_table = Elag_predict.Addr_table
module Stride_entry = Elag_predict.Stride_entry

(* --- Bechamel micro-benchmarks ----------------------------------------- *)

let micro_workload = lazy (Context.get (Suite.find "PGP Encode"))

let bench_emulator () =
  let e = Lazy.force micro_workload in
  ignore (Emulator.run_program e.Context.program)

let bench_pipeline mechanism () =
  let e = Lazy.force micro_workload in
  let cfg = Config.with_mechanism mechanism Config.default in
  ignore (Pipeline.simulate cfg e.Context.program)

let bench_compile () =
  let w = Suite.find "072.sc" in
  ignore (Compile.compile w.Workload.source)

let bench_profile () =
  let e = Lazy.force micro_workload in
  ignore (Profile.collect e.Context.program)

let bench_table_updates () =
  let t = Addr_table.create 256 in
  for pc = 0 to 99 do
    for i = 0 to 99 do
      ignore (Addr_table.peek t pc);
      ignore (Addr_table.update t pc ((pc * 4096) + (i * 8)))
    done
  done

let bench_stride_machine () =
  let e = Stride_entry.allocate 0 in
  for i = 1 to 10_000 do
    ignore (Stride_entry.update e (i * 8))
  done

(* One Test.make per reproduced artifact: measures the cost of
   regenerating that table/figure's data for a single representative
   workload, so harness performance regressions are visible. *)
let micro_tests =
  let open Bechamel in
  let dual_cc = Config.Dual { table_entries = 256; selection = Config.Compiler_directed } in
  Test.make_grouped ~name:"elag"
    [ Test.make ~name:"table2:profile-pass" (Staged.stage bench_profile)
    ; Test.make ~name:"fig5a:table-only-sim"
        (Staged.stage
           (bench_pipeline (Config.Table_only { entries = 256; compiler_filtered = true })))
    ; Test.make ~name:"fig5b:calc-only-sim"
        (Staged.stage (bench_pipeline (Config.Calc_only { bric_entries = 16 })))
    ; Test.make ~name:"fig5c:dual-path-sim" (Staged.stage (bench_pipeline dual_cc))
    ; Test.make ~name:"table3:baseline-sim" (Staged.stage (bench_pipeline Config.No_early))
    ; Test.make ~name:"table4:emulation" (Staged.stage bench_emulator)
    ; Test.make ~name:"compiler:full-pipeline" (Staged.stage bench_compile)
    ; Test.make ~name:"predict:table-churn" (Staged.stage bench_table_updates)
    ; Test.make ~name:"predict:stride-machine" (Staged.stage bench_stride_machine) ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg [ instance ] micro_tests in
  let results = Analyze.all ols instance raw in
  Printf.printf "%-34s %16s\n" "benchmark" "time/run";
  let rows = ref [] in
  Hashtbl.iter (fun name r -> rows := (name, r) :: !rows) results;
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ t ] ->
        let pretty =
          if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
          else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
          else Printf.sprintf "%.0f ns" t
        in
        Printf.printf "%-34s %16s\n" name pretty
      | _ -> Printf.printf "%-34s %16s\n" name "-")
    (List.sort compare !rows)

(* --- ablations ----------------------------------------------------------- *)

let ablation_panel = [ "130.li"; "072.sc"; "023.eqntott" ]

let dual_cc = Config.Dual { table_entries = 256; selection = Config.Compiler_directed }

let speedup_with cfg program =
  let base = Config.with_mechanism Config.No_early cfg in
  let dual = Config.with_mechanism dual_cc cfg in
  let b, _ = Pipeline.simulate base program in
  let d, _ = Pipeline.simulate dual program in
  float_of_int b.Pipeline.cycles /. float_of_int d.Pipeline.cycles

let run_ablation () =
  Printf.printf "Ablations: dual-path compiler-directed speedup vs design choices\n\n";
  let programs =
    List.map (fun n -> (n, (Context.get (Suite.find n)).Context.program)) ablation_panel
  in
  (* Oracle bound: if every load had zero latency and never missed, how
     fast could ANY early address-generation scheme possibly be?  The
     gap between dual-cc and this bound is the paper's headroom. *)
  Printf.printf "speedup ceiling (zero-latency, never-missing loads)\n ";
  List.iter
    (fun (n, p) ->
      let base = Config.with_mechanism Config.No_early Config.default in
      let oracle =
        Config.with_mechanism Config.No_early
          { Config.default with load_latency = 0; miss_penalty = 0 }
      in
      let b, _ = Pipeline.simulate base p in
      let o, _ = Pipeline.simulate oracle p in
      Printf.printf "  %s %.3f" n
        (float_of_int b.Pipeline.cycles /. float_of_int o.Pipeline.cycles))
    programs;
  Printf.printf "\n\n";
  Printf.printf "issue width (paper: 6)\n";
  List.iter
    (fun width ->
      Printf.printf "  width %d:" width;
      List.iter
        (fun (n, p) ->
          Printf.printf "  %s %.3f" n
            (speedup_with { Config.default with issue_width = width } p))
        programs;
      print_newline ())
    [ 2; 4; 6; 8 ];
  Printf.printf "\ncache associativity (paper: direct-mapped)\n";
  List.iter
    (fun ways ->
      Printf.printf "  %d-way:" ways;
      List.iter
        (fun (n, p) ->
          Printf.printf "  %s %.3f" n
            (speedup_with { Config.default with cache_ways = ways } p))
        programs;
      print_newline ())
    [ 1; 2; 4 ];
  Printf.printf "\ncache miss penalty (paper: 12 cycles)\n";
  List.iter
    (fun pen ->
      Printf.printf "  penalty %2d:" pen;
      List.iter
        (fun (n, p) ->
          Printf.printf "  %s %.3f" n
            (speedup_with { Config.default with miss_penalty = pen } p))
        programs;
      print_newline ())
    [ 4; 12; 30 ];
  Printf.printf "\nunroll factor at compile time (default: 4)\n";
  List.iter
    (fun factor ->
      Printf.printf "  unroll %d:" factor;
      List.iter
        (fun name ->
          let w = Suite.find name in
          let ir =
            Elag_ir.Lower.lower_program
              (Elag_minic.Sema.check (Elag_minic.Parser.parse w.Workload.source))
          in
          ignore (Elag_opt.Driver.optimize ~unroll_factor:factor ir);
          Elag_core.Classify.run ir;
          let program = Elag_codegen.Codegen.generate ir in
          Printf.printf "  %s %.3f" name (speedup_with Config.default program))
        ablation_panel;
      print_newline ())
    [ 0; 4; 8 ];
  Printf.printf "\ntable size under the dual-path scheme\n";
  List.iter
    (fun entries ->
      Printf.printf "  table %4d:" entries;
      List.iter
        (fun (n, p) ->
          let dual =
            Config.with_mechanism
              (Config.Dual { table_entries = entries; selection = Config.Compiler_directed })
              Config.default
          in
          let base = Config.with_mechanism Config.No_early Config.default in
          let b, _ = Pipeline.simulate base p in
          let d, _ = Pipeline.simulate dual p in
          Printf.printf "  %s %.3f" n
            (float_of_int b.Pipeline.cycles /. float_of_int d.Pipeline.cycles))
        programs;
      print_newline ())
    [ 16; 64; 256; 1024 ]

(* --- machine-readable pipeline report ------------------------------------ *)

module Json = Elag_telemetry.Json
module Stall = Elag_telemetry.Stall

let bench_report_file = "BENCH_pipeline.json"

(* One entry per workload: baseline and dual-cc cycle counts, IPC,
   speedup, and the dual-cc stall-cause breakdown.  The stall columns
   say not just *that* a workload regressed but *where the cycles
   went*, which is what makes the artifact diffable across PRs. *)
let run_report () =
  let workload_json (w : Workload.t) =
    let e = Context.get w in
    let cfg mech = Config.with_mechanism mech Config.default in
    let base, _ = Pipeline.run (cfg Config.No_early) e.Context.program in
    let dual, _ = Pipeline.run (cfg dual_cc) e.Context.program in
    let bs = Pipeline.stats base and ds = Pipeline.stats dual in
    let ipc (s : Pipeline.stats) =
      float_of_int s.Pipeline.instructions /. float_of_int (max 1 s.Pipeline.cycles)
    in
    Printf.printf "  %-16s base=%8d dual-cc=%8d speedup=%.3f\n%!"
      w.Workload.name bs.Pipeline.cycles ds.Pipeline.cycles
      (float_of_int bs.Pipeline.cycles /. float_of_int ds.Pipeline.cycles);
    Json.Obj
      [ ("name", Json.String w.Workload.name)
      ; ("suite", Json.String (Workload.suite_name w.Workload.suite))
      ; ("instructions", Json.Int ds.Pipeline.instructions)
      ; ("baseline_cycles", Json.Int bs.Pipeline.cycles)
      ; ("cycles", Json.Int ds.Pipeline.cycles)
      ; ("ipc", Json.Float (ipc ds))
      ; ( "speedup"
        , Json.Float
            (float_of_int bs.Pipeline.cycles /. float_of_int (max 1 ds.Pipeline.cycles))
        )
      ; ( "stalls"
        , Json.Obj
            (("busy", Json.Int (Pipeline.busy_cycles dual))
            :: List.map
                 (fun (cause, n) -> (Stall.name cause, Json.Int n))
                 (Pipeline.stall_breakdown dual)) ) ]
  in
  Printf.printf "pipeline report (baseline vs %s):\n" (Config.mechanism_name dual_cc);
  let doc =
    Json.Obj
      [ ("schema", Json.String "elag.bench.v1")
      ; ("mechanism", Json.String (Config.mechanism_name dual_cc))
      ; ("config", Config.to_json (Config.with_mechanism dual_cc Config.default))
      ; ("workloads", Json.List (List.map workload_json Suite.all)) ]
  in
  let oc = open_out bench_report_file in
  Json.output ~pretty:true oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" bench_report_file

(* --- entry point ----------------------------------------------------------- *)

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "table2" -> Experiments.print_table2 ()
  | "fig5a" -> Experiments.print_fig5a ()
  | "fig5b" -> Experiments.print_fig5b ()
  | "fig5c" -> Experiments.print_fig5c ()
  | "table3" -> Experiments.print_table3 ()
  | "table4" -> Experiments.print_table4 ()
  | "all" -> Experiments.run_all ()
  | "micro" -> run_micro ()
  | "ablation" -> run_ablation ()
  | "report" -> run_report ()
  | other ->
    prerr_endline ("unknown mode: " ^ other);
    prerr_endline
      "modes: all table2 fig5a fig5b fig5c table3 table4 micro ablation report";
    exit 1
