(* Benchmark harness.

   Default mode regenerates every table and figure from the paper's
   evaluation section (the rows/series the paper reports):

     dune exec bench/main.exe              all artifacts
     dune exec bench/main.exe table2       one artifact
       (table2 | fig5a | fig5b | fig5c | table3 | table4)

   Additional modes:

     dune exec bench/main.exe micro        Bechamel micro-benchmarks of
                                           the simulator/compiler machinery
                                           (one Test.make per experiment)
     dune exec bench/main.exe ablation     design-choice ablations from
                                           DESIGN.md (issue width, unroll,
                                           miss penalty, table size)
     dune exec bench/main.exe report       write BENCH_pipeline.json:
                                           per-workload cycles/IPC/speedup +
                                           stall-cause breakdown under the
                                           dual-cc scheme, with full config
                                           provenance, so the perf trajectory
                                           is trackable across PRs
     dune exec bench/main.exe engine       write BENCH_engine.json: full
                                           evaluation-grid sweep serial vs
                                           parallel, wall-clock for both, and
                                           a byte-identity check of the two
                                           sweep artifacts

   All modes take -j N to size the engine's worker pool (default:
   Domain.recommended_domain_count). *)

module Experiments = Elag_engine.Experiments
module Engine = Elag_engine.Engine
module Pool = Elag_engine.Pool
module Compile = Elag_harness.Compile
module Profile = Elag_harness.Profile
module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Emulator = Elag_sim.Emulator
module Suite = Elag_workloads.Suite
module Workload = Elag_workloads.Workload
module Addr_table = Elag_predict.Addr_table
module Stride_entry = Elag_predict.Stride_entry

(* --- Bechamel micro-benchmarks ----------------------------------------- *)

(* Micro-benchmarks time single artifacts, so they run on a serial
   engine: the handle is only a compile/profile cache here. *)
let micro_engine = lazy (Engine.create ~jobs:1 ())

let micro_program = lazy (Engine.program (Lazy.force micro_engine) (Suite.find "PGP Encode"))

let bench_emulator () = ignore (Emulator.run_program (Lazy.force micro_program))

let bench_pipeline mechanism () =
  let cfg = Config.with_mechanism mechanism Config.default in
  ignore (Pipeline.simulate cfg (Lazy.force micro_program))

let bench_compile () =
  let w = Suite.find "072.sc" in
  ignore (Compile.compile w.Workload.source)

let bench_profile () = ignore (Profile.collect (Lazy.force micro_program))

let bench_table_updates () =
  let t = Addr_table.create 256 in
  for pc = 0 to 99 do
    for i = 0 to 99 do
      ignore (Addr_table.peek t pc);
      ignore (Addr_table.update t pc ((pc * 4096) + (i * 8)))
    done
  done

let bench_stride_machine () =
  let e = Stride_entry.allocate 0 in
  for i = 1 to 10_000 do
    ignore (Stride_entry.update e (i * 8))
  done

(* One Test.make per reproduced artifact: measures the cost of
   regenerating that table/figure's data for a single representative
   workload, so harness performance regressions are visible. *)
let micro_tests =
  let open Bechamel in
  let dual_cc = Config.Mechanism.of_string_exn "dual-cc" in
  Test.make_grouped ~name:"elag"
    [ Test.make ~name:"table2:profile-pass" (Staged.stage bench_profile)
    ; Test.make ~name:"fig5a:table-only-sim"
        (Staged.stage
           (bench_pipeline (Config.Table_only { entries = 256; compiler_filtered = true })))
    ; Test.make ~name:"fig5b:calc-only-sim"
        (Staged.stage (bench_pipeline (Config.Calc_only { bric_entries = 16 })))
    ; Test.make ~name:"fig5c:dual-path-sim" (Staged.stage (bench_pipeline dual_cc))
    ; Test.make ~name:"table3:baseline-sim" (Staged.stage (bench_pipeline Config.No_early))
    ; Test.make ~name:"table4:emulation" (Staged.stage bench_emulator)
    ; Test.make ~name:"compiler:full-pipeline" (Staged.stage bench_compile)
    ; Test.make ~name:"predict:table-churn" (Staged.stage bench_table_updates)
    ; Test.make ~name:"predict:stride-machine" (Staged.stage bench_stride_machine) ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg [ instance ] micro_tests in
  let results = Analyze.all ols instance raw in
  Printf.printf "%-34s %16s\n" "benchmark" "time/run";
  let rows = ref [] in
  Hashtbl.iter (fun name r -> rows := (name, r) :: !rows) results;
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ t ] ->
        let pretty =
          if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
          else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
          else Printf.sprintf "%.0f ns" t
        in
        Printf.printf "%-34s %16s\n" name pretty
      | _ -> Printf.printf "%-34s %16s\n" name "-")
    (List.sort compare !rows)

(* --- ablations ----------------------------------------------------------- *)

let ablation_panel = [ "130.li"; "072.sc"; "023.eqntott" ]

let dual_cc = Config.Mechanism.of_string_exn "dual-cc"

let speedup_with cfg program =
  let base = Config.with_mechanism Config.No_early cfg in
  let dual = Config.with_mechanism dual_cc cfg in
  let b, _ = Pipeline.simulate base program in
  let d, _ = Pipeline.simulate dual program in
  float_of_int b.Pipeline.cycles /. float_of_int d.Pipeline.cycles

let run_ablation engine =
  Printf.printf "Ablations: dual-path compiler-directed speedup vs design choices\n\n";
  let programs =
    List.map (fun n -> (n, Engine.program engine (Suite.find n))) ablation_panel
  in
  (* Oracle bound: if every load had zero latency and never missed, how
     fast could ANY early address-generation scheme possibly be?  The
     gap between dual-cc and this bound is the paper's headroom. *)
  Printf.printf "speedup ceiling (zero-latency, never-missing loads)\n ";
  List.iter
    (fun (n, p) ->
      let base = Config.with_mechanism Config.No_early Config.default in
      let oracle =
        Config.make ~load_latency:0 ~miss_penalty:0 ~mechanism:Config.No_early ()
      in
      let b, _ = Pipeline.simulate base p in
      let o, _ = Pipeline.simulate oracle p in
      Printf.printf "  %s %.3f" n
        (float_of_int b.Pipeline.cycles /. float_of_int o.Pipeline.cycles))
    programs;
  Printf.printf "\n\n";
  Printf.printf "issue width (paper: 6)\n";
  List.iter
    (fun width ->
      Printf.printf "  width %d:" width;
      List.iter
        (fun (n, p) ->
          Printf.printf "  %s %.3f" n
            (speedup_with (Config.with_issue_width width Config.default) p))
        programs;
      print_newline ())
    [ 2; 4; 6; 8 ];
  Printf.printf "\ncache associativity (paper: direct-mapped)\n";
  List.iter
    (fun ways ->
      Printf.printf "  %d-way:" ways;
      List.iter
        (fun (n, p) ->
          Printf.printf "  %s %.3f" n
            (speedup_with (Config.with_cache_ways ways Config.default) p))
        programs;
      print_newline ())
    [ 1; 2; 4 ];
  Printf.printf "\ncache miss penalty (paper: 12 cycles)\n";
  List.iter
    (fun pen ->
      Printf.printf "  penalty %2d:" pen;
      List.iter
        (fun (n, p) ->
          Printf.printf "  %s %.3f" n
            (speedup_with (Config.with_miss_penalty pen Config.default) p))
        programs;
      print_newline ())
    [ 4; 12; 30 ];
  Printf.printf "\nunroll factor at compile time (default: 4)\n";
  List.iter
    (fun factor ->
      Printf.printf "  unroll %d:" factor;
      List.iter
        (fun name ->
          let w = Suite.find name in
          let ir =
            Elag_ir.Lower.lower_program
              (Elag_minic.Sema.check (Elag_minic.Parser.parse w.Workload.source))
          in
          ignore (Elag_opt.Driver.optimize ~unroll_factor:factor ir);
          Elag_core.Classify.run ir;
          let program = Elag_codegen.Codegen.generate ir in
          Printf.printf "  %s %.3f" name (speedup_with Config.default program))
        ablation_panel;
      print_newline ())
    [ 0; 4; 8 ];
  Printf.printf "\ntable size under the dual-path scheme\n";
  List.iter
    (fun entries ->
      Printf.printf "  table %4d:" entries;
      List.iter
        (fun (n, p) ->
          let dual =
            Config.with_mechanism
              (Config.Dual { table_entries = entries; selection = Config.Compiler_directed })
              Config.default
          in
          let base = Config.with_mechanism Config.No_early Config.default in
          let b, _ = Pipeline.simulate base p in
          let d, _ = Pipeline.simulate dual p in
          Printf.printf "  %s %.3f" n
            (float_of_int b.Pipeline.cycles /. float_of_int d.Pipeline.cycles))
        programs;
      print_newline ())
    [ 16; 64; 256; 1024 ]

(* --- machine-readable pipeline report ------------------------------------ *)

module Json = Elag_telemetry.Json
module Stall = Elag_telemetry.Stall

let bench_report_file = "BENCH_pipeline.json"

(* One entry per workload: baseline and dual-cc cycle counts, IPC,
   speedup, and the dual-cc stall-cause breakdown.  The stall columns
   say not just *that* a workload regressed but *where the cycles
   went*, which is what makes the artifact diffable across PRs.
   Workloads run on the engine's pool; rows are merged (and printed)
   in suite order, so the artifact is identical at every -j. *)
let run_report engine =
  let workload_row (w : Workload.t) =
    let program = Engine.program engine w in
    let cfg mech = Config.with_mechanism mech Config.default in
    let base, _ = Pipeline.run (cfg Config.No_early) program in
    let dual, _ = Pipeline.run (cfg dual_cc) program in
    let bs = Pipeline.stats base and ds = Pipeline.stats dual in
    let ipc (s : Pipeline.stats) =
      float_of_int s.Pipeline.instructions /. float_of_int (max 1 s.Pipeline.cycles)
    in
    let line =
      Printf.sprintf "  %-16s base=%8d dual-cc=%8d speedup=%.3f" w.Workload.name
        bs.Pipeline.cycles ds.Pipeline.cycles
        (float_of_int bs.Pipeline.cycles /. float_of_int ds.Pipeline.cycles)
    in
    let json =
      Json.Obj
        [ ("name", Json.String w.Workload.name)
        ; ("suite", Json.String (Workload.suite_name w.Workload.suite))
        ; ("instructions", Json.Int ds.Pipeline.instructions)
        ; ("baseline_cycles", Json.Int bs.Pipeline.cycles)
        ; ("cycles", Json.Int ds.Pipeline.cycles)
        ; ("ipc", Json.Float (ipc ds))
        ; ( "speedup"
          , Json.Float
              (float_of_int bs.Pipeline.cycles /. float_of_int (max 1 ds.Pipeline.cycles))
          )
        ; ( "stalls"
          , Json.Obj
              (("busy", Json.Int (Pipeline.busy_cycles dual))
              :: List.map
                   (fun (cause, n) -> (Stall.name cause, Json.Int n))
                   (Pipeline.stall_breakdown dual)) ) ]
    in
    (line, json)
  in
  Printf.printf "pipeline report (baseline vs %s):\n" (Config.mechanism_name dual_cc);
  let rows = Engine.map engine workload_row Suite.all in
  List.iter (fun (line, _) -> print_endline line) rows;
  let doc =
    Json.Obj
      [ ("schema", Json.String "elag.bench.v1")
      ; ("mechanism", Json.String (Config.mechanism_name dual_cc))
      ; ("config", Config.to_json (Config.with_mechanism dual_cc Config.default))
      ; ("workloads", Json.List (List.map snd rows)) ]
  in
  let oc = open_out bench_report_file in
  Json.output ~pretty:true oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" bench_report_file

(* --- engine wall-clock benchmark ----------------------------------------- *)

let bench_engine_file = "BENCH_engine.json"

(* The same full evaluation-grid sweep, once on a single-domain engine
   and once on the pool, with fresh caches each time.  The two sweep
   artifacts must be byte-identical (cycle counts and all); the wall
   clocks and available core count are recorded so the speedup claim
   is honest about the hardware it ran on. *)
let run_engine_bench jobs =
  let sweep jobs =
    let engine = Engine.create ~jobs () in
    let t0 = Unix.gettimeofday () in
    let json = Json.to_string ~pretty:true (Engine.sweep_json engine (Experiments.grid ())) in
    (json, Unix.gettimeofday () -. t0)
  in
  let n_jobs = List.length (Experiments.grid ()) in
  Printf.printf "engine sweep: %d grid jobs, serial then -j %d\n%!" n_jobs jobs;
  let serial_json, serial_s = sweep 1 in
  Printf.printf "  serial:   %.1fs\n%!" serial_s;
  let parallel_json, parallel_s = sweep jobs in
  Printf.printf "  -j %-5d: %.1fs (%.2fx)\n%!" jobs parallel_s (serial_s /. parallel_s);
  let identical = String.equal serial_json parallel_json in
  Printf.printf "  artifacts byte-identical: %b\n" identical;
  let doc =
    Json.Obj
      [ ("schema", Json.String "elag.bench.engine.v1")
      ; ("grid_jobs", Json.Int n_jobs)
      ; ("cores", Json.Int (Pool.default_jobs ()))
      ; ("jobs", Json.Int jobs)
      ; ("serial_seconds", Json.Float serial_s)
      ; ("parallel_seconds", Json.Float parallel_s)
      ; ("speedup", Json.Float (serial_s /. parallel_s))
      ; ("byte_identical", Json.Bool identical) ]
  in
  let oc = open_out bench_engine_file in
  Json.output ~pretty:true oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" bench_engine_file;
  if not identical then exit 1

(* --- entry point ----------------------------------------------------------- *)

let () =
  let jobs = ref (Pool.default_jobs ()) in
  let mode = ref "all" in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest ->
      (jobs :=
         match int_of_string_opt n with
         | Some n when n > 0 -> n
         | _ ->
           prerr_endline "-j expects a positive integer";
           exit 1);
      parse rest
    | arg :: rest ->
      mode := arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let engine () = Engine.create ~jobs:!jobs () in
  match !mode with
  | "table2" -> Experiments.print_table2 (engine ())
  | "fig5a" -> Experiments.print_fig5a (engine ())
  | "fig5b" -> Experiments.print_fig5b (engine ())
  | "fig5c" -> Experiments.print_fig5c (engine ())
  | "table3" -> Experiments.print_table3 (engine ())
  | "table4" -> Experiments.print_table4 (engine ())
  | "all" -> Experiments.run_all (engine ())
  | "micro" -> run_micro ()
  | "ablation" -> run_ablation (engine ())
  | "report" -> run_report (engine ())
  | "engine" -> run_engine_bench !jobs
  | other ->
    prerr_endline ("unknown mode: " ^ other);
    prerr_endline
      "modes: all table2 fig5a fig5b fig5c table3 table4 micro ablation report engine [-j N]";
    exit 1
