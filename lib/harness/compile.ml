(* End-to-end compilation driver: MiniC source to an assembled EPA-32
   program, with selectable optimization level and load-classification
   mode. *)

module Parser = Elag_minic.Parser
module Sema = Elag_minic.Sema
module Lower = Elag_ir.Lower
module Ir = Elag_ir.Ir
module Opt_driver = Elag_opt.Driver
module Classify = Elag_core.Classify
module Codegen = Elag_codegen.Codegen
module Program = Elag_isa.Program

type classification =
  | No_classification  (* all loads ld_n: hardware-only configurations *)
  | Heuristics         (* the paper's Section 4 compiler heuristics *)

type options =
  { opt_level : Opt_driver.level
  ; classification : classification
  ; inline_threshold : int }

let default_options =
  { opt_level = Opt_driver.O2
  ; classification = Heuristics
  ; inline_threshold = Elag_opt.Inline.default_threshold }

exception Error of string

let to_ir ?(options = default_options) source =
  let ast =
    try Parser.parse source
    with Parser.Error (msg, line) ->
      raise (Error (Printf.sprintf "parse error at line %d: %s" line msg))
  in
  let typed =
    try Sema.check ast
    with Sema.Error (msg, line) ->
      raise (Error (Printf.sprintf "type error at line %d: %s" line msg))
  in
  let ir =
    try Lower.lower_program typed
    with Lower.Error { ctx; msg } ->
      raise (Error (Printf.sprintf "lowering error in %s: %s" ctx msg))
  in
  let ir =
    Opt_driver.optimize ~level:options.opt_level
      ~inline_threshold:options.inline_threshold ir
  in
  (match options.classification with
  | Heuristics -> Classify.run ir
  | No_classification -> Classify.clear ir);
  ir

let compile ?(options = default_options) source : Program.t =
  Codegen.generate (to_ir ~options source)
