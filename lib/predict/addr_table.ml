(* PC-indexed, direct-mapped address prediction table (paper §3.2.2).

   Each entry holds {tag, PA, ST, STC} driven by the Figure 3 state
   machine.  A probe that misses makes no prediction; the entry is
   (re)allocated at update time. *)

type slot =
  { mutable tag : int  (* -1 = invalid *)
  ; entry : Stride_entry.t }

type t =
  { slots : slot array
  ; mutable probes : int
  ; mutable hits : int
  ; mutable correct : int }

let create entries =
  if entries <= 0 then invalid_arg "Addr_table.create";
  { slots =
      Array.init entries (fun _ -> { tag = -1; entry = Stride_entry.allocate 0 })
  ; probes = 0
  ; hits = 0
  ; correct = 0 }

let size t = Array.length t.slots

let index t pc = pc mod Array.length t.slots

(* Pure tag check: [Some predicted_address] on a hit, no statistics. *)
let peek t pc =
  let slot = t.slots.(index t pc) in
  if slot.tag = pc then Some (Stride_entry.predicted_address slot.entry) else None

(* Probe at decode: [Some predicted_address] on a tag hit. *)
let probe t pc =
  t.probes <- t.probes + 1;
  let slot = t.slots.(index t pc) in
  if slot.tag = pc then begin
    t.hits <- t.hits + 1;
    Some (Stride_entry.predicted_address slot.entry)
  end
  else None

(* Update at the MEM stage with the computed address; allocates or
   replaces the entry on a tag mismatch.  Returns whether a previously
   predicted address matched (for statistics). *)
let update t pc ca =
  let slot = t.slots.(index t pc) in
  if slot.tag = pc then begin
    let correct = Stride_entry.update slot.entry ca in
    if correct then t.correct <- t.correct + 1;
    correct
  end
  else begin
    slot.tag <- pc;
    Stride_entry.replace slot.entry ca;
    false
  end

type stats = { st_probes : int; st_hits : int; st_correct : int }

let stats t = { st_probes = t.probes; st_hits = t.hits; st_correct = t.correct }

(* --- fault-injection hooks (lib/verify) ------------------------------ *)

let slot t i =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Addr_table.slot";
  let s = t.slots.(i) in
  (s.tag, s.entry)

let set_tag t i tag =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Addr_table.set_tag";
  t.slots.(i).tag <- tag
