(* The special addressing register R_addr (paper §3.2.1): a one-entry
   cache bound to a single general-purpose register by each ld_e.

   Binding to a *different* register makes the cached value unusable
   until the next cycle (the paper's "binding has just been switched by
   the current load" hazard); re-binding to the same register is free.
   Value staleness from in-flight writes is checked by the pipeline
   through its scoreboard (the R_addr interlock term). *)

type t =
  { mutable bound : int option
  ; mutable valid_from : int
  ; mutable probes : int
  ; mutable hits : int }

let create () = { bound = None; valid_from = 0; probes = 0; hits = 0 }

(* Pure hit test, for evaluation during issue-cycle search; does not
   touch statistics. *)
let peek t ~cycle reg = t.bound = Some reg && cycle >= t.valid_from

(* Probe for base register [reg] at [cycle]: true when R_addr is bound
   to [reg] and the cached value is usable this cycle. *)
let probe t ~cycle reg =
  t.probes <- t.probes + 1;
  let hit = t.bound = Some reg && cycle >= t.valid_from in
  if hit then t.hits <- t.hits + 1;
  hit

(* Bind R_addr to [reg] (performed by every ld_e, and by the
   hardware-selection baseline on every early-path load). *)
let bind t ~cycle reg =
  if t.bound <> Some reg then begin
    t.bound <- Some reg;
    t.valid_from <- cycle + 1
  end

let hit_rate t =
  if t.probes = 0 then 0. else float_of_int t.hits /. float_of_int t.probes

(* --- fault-injection hooks (lib/verify) ------------------------------ *)

let unbind t =
  t.bound <- None;
  t.valid_from <- 0

let bound t = t.bound
