(* Branch target buffer: direct-mapped, tagged, with 2-bit saturating
   counters (the paper's 1K-entry, 2-bit configuration). *)

type slot =
  { mutable tag : int  (* -1 = invalid *)
  ; mutable target : int
  ; mutable counter : int (* 0..3; >=2 predicts taken *) }

type t =
  { slots : slot array
  ; mutable lookups : int
  ; mutable mispredictions : int }

type prediction = { pred_taken : bool; pred_target : int }

let create entries =
  if entries <= 0 then invalid_arg "Btb.create";
  { slots = Array.init entries (fun _ -> { tag = -1; target = 0; counter = 0 })
  ; lookups = 0
  ; mispredictions = 0 }

let index t pc = pc mod Array.length t.slots

(* Predict the outcome of the control instruction at [pc].  A BTB miss
   predicts not-taken (sequential fetch). *)
let predict t pc =
  t.lookups <- t.lookups + 1;
  let slot = t.slots.(index t pc) in
  if slot.tag = pc then { pred_taken = slot.counter >= 2; pred_target = slot.target }
  else { pred_taken = false; pred_target = pc + 1 }

(* Resolve with the actual outcome; returns [true] when the earlier
   prediction was correct (same direction, and same target if taken). *)
let update t pc ~taken ~target =
  let slot = t.slots.(index t pc) in
  let p =
    if slot.tag = pc then { pred_taken = slot.counter >= 2; pred_target = slot.target }
    else { pred_taken = false; pred_target = pc + 1 }
  in
  let correct = p.pred_taken = taken && ((not taken) || p.pred_target = target) in
  if not correct then t.mispredictions <- t.mispredictions + 1;
  if slot.tag = pc then begin
    slot.counter <-
      (if taken then min 3 (slot.counter + 1) else max 0 (slot.counter - 1));
    if taken then slot.target <- target
  end
  else if taken then begin
    (* allocate on taken branches *)
    slot.tag <- pc;
    slot.target <- target;
    slot.counter <- 2
  end;
  correct

let misprediction_count t = t.mispredictions

(* --- fault-injection hooks (lib/verify) ------------------------------ *)

let size t = Array.length t.slots

let slot_valid t i =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Btb.slot_valid";
  t.slots.(i).tag >= 0

let corrupt t ~slot:i ?target ?counter ?tag () =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Btb.corrupt";
  let s = t.slots.(i) in
  (match target with Some v -> s.target <- v | None -> ());
  (match counter with Some v -> s.counter <- max 0 (min 3 v) | None -> ());
  (match tag with Some v -> s.tag <- v | None -> ())
