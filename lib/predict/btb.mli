(** Branch target buffer: direct-mapped, tagged, 2-bit saturating
    counters (the paper's 1K-entry configuration).  Allocation happens
    on taken branches only. *)

type t

type prediction = { pred_taken : bool; pred_target : int }

val create : int -> t

val predict : t -> int -> prediction
(** Prediction for the control instruction at [pc]; a miss predicts
    not-taken, falling through to [pc + 1]. *)

val update : t -> int -> taken:bool -> target:int -> bool
(** Resolve with the actual outcome, updating counters/target.
    Returns whether the earlier prediction was correct (direction, and
    target when taken). *)

val misprediction_count : t -> int

(** {2 Fault-injection hooks} *)

val size : t -> int

val slot_valid : t -> int -> bool
(** Whether a slot currently holds an allocated entry. *)

val corrupt : t -> slot:int -> ?target:int -> ?counter:int -> ?tag:int -> unit -> unit
(** Overwrite the given fields of a slot (counter clamped to 0..3).
    Corrupting only [target] is the provably-adversarial fault: it can
    turn correct taken-predictions wrong but never the reverse.
    Raises [Invalid_argument] out of range. *)
