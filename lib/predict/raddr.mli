(** The special addressing register R_addr (paper §3.2.1): a one-entry
    cache bound to a single general-purpose register by each [ld_e]
    (and by every calc-path load under hardware selection).

    Binding to a different register makes the cached value unusable
    until the next cycle — the paper's "binding has just been switched
    by the current load" hazard; re-binding to the same register is
    free. *)

type t

val create : unit -> t

val peek : t -> cycle:int -> int -> bool
(** Pure hit test: bound to this register with a usable value. *)

val probe : t -> cycle:int -> int -> bool
(** Counted {!peek}. *)

val bind : t -> cycle:int -> int -> unit
(** (Re)bind to a register; switching invalidates until [cycle + 1]. *)

val hit_rate : t -> float

(** {2 Fault-injection hooks} *)

val unbind : t -> unit
(** Drop the current binding (models losing R_addr state); the next
    [ld_e] must rebind and pays the switch penalty. *)

val bound : t -> int option
(** The currently bound register, if any. *)
