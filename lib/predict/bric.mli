(** Base-register cache (BRIC) for the hardware-only early-calculation
    baseline, after Austin & Sohi: an N-entry LRU cache of
    base-register identities whose values are kept coherent with the
    register file by multicast writes.  Value staleness is checked by
    the pipeline through its scoreboard; the structure tracks residency
    and the cycle an entry's value becomes usable. *)

type t

val create : int -> t
(** Capacity in entries; raises [Invalid_argument] if non-positive. *)

val peek : t -> cycle:int -> int -> bool
(** Pure hit test: resident with a usable value. *)

val probe : t -> cycle:int -> int -> bool
(** Counted probe; allocates on a miss (the new entry's value is
    usable from the next cycle) and refreshes LRU order on a hit. *)

val hit_rate : t -> float

type stats = { br_probes : int; br_hits : int; br_evictions : int }

val stats : t -> stats
(** Probe/hit/eviction totals, mirroring {!Elag_predict.Addr_table.stats}
    so the pipeline can surface every predictor structure uniformly. *)

(** {2 Fault-injection hooks} *)

val flush : t -> unit
(** Drop every resident entry (models losing the whole cache). *)

val delay : t -> until:int -> unit
(** Push every resident entry's usable-from cycle to at least [until]
    (models a coherence glitch: values present but not yet trusted). *)

val resident_count : t -> int

