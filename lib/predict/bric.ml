(* Base-register cache (BRIC) for the hardware-only early-calculation
   baseline, after Austin & Sohi: an N-entry cache of base-register
   identities whose values are kept coherent with the register file by
   multicast writes.

   Value coherence is modeled by the pipeline through the register
   scoreboard (a cached value is stale exactly when a write to the
   register is in flight), so the structure itself only tracks which
   registers are resident, with LRU replacement, plus the cycle an
   entry became resident (an entry allocated by this very load has no
   value yet). *)

type t =
  { capacity : int
  ; mutable resident : (int * int) list  (* (register, valid_from_cycle), MRU first *)
  ; mutable probes : int
  ; mutable hits : int
  ; mutable evictions : int }

let create capacity =
  if capacity <= 0 then invalid_arg "Bric.create";
  { capacity; resident = []; probes = 0; hits = 0; evictions = 0 }

(* Pure hit test: resident with a usable value, no side effects. *)
let peek t ~cycle reg =
  match List.assoc_opt reg t.resident with
  | Some valid_from -> cycle >= valid_from
  | None -> false

(* Probe for [reg] at [cycle]; allocates on miss (the entry's value
   becomes usable next cycle, after the register file is read).
   Returns true when the register was resident with a usable value. *)
let probe t ~cycle reg =
  t.probes <- t.probes + 1;
  match List.assoc_opt reg t.resident with
  | Some valid_from ->
    (* refresh LRU position *)
    t.resident <- (reg, valid_from) :: List.remove_assoc reg t.resident;
    let usable = cycle >= valid_from in
    if usable then t.hits <- t.hits + 1;
    usable
  | None ->
    let trimmed =
      if List.length t.resident >= t.capacity then begin
        t.evictions <- t.evictions + 1;
        List.filteri (fun i _ -> i < t.capacity - 1) t.resident
      end
      else t.resident
    in
    t.resident <- (reg, cycle + 1) :: trimmed;
    false

let hit_rate t =
  if t.probes = 0 then 0. else float_of_int t.hits /. float_of_int t.probes

type stats = { br_probes : int; br_hits : int; br_evictions : int }

let stats t = { br_probes = t.probes; br_hits = t.hits; br_evictions = t.evictions }

(* --- fault-injection hooks (lib/verify) ------------------------------ *)

let flush t = t.resident <- []

let delay t ~until =
  t.resident <- List.map (fun (reg, vf) -> (reg, max vf until)) t.resident

let resident_count t = List.length t.resident
