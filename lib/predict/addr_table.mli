(** PC-indexed, direct-mapped address prediction table (paper §3.2.2).
    Each entry holds \{tag, PA, ST, STC\} driven by the Figure 3 state
    machine; a probe that misses makes no prediction, and entries are
    (re)allocated at update time. *)

type t

val create : int -> t
(** [create entries]; raises [Invalid_argument] on a non-positive
    size. *)

val size : t -> int

val peek : t -> int -> int option
(** Pure tag check: [Some predicted_address] on a hit.  No statistics;
    used during issue-cycle search. *)

val probe : t -> int -> int option
(** Like {!peek} but counts a probe (the decode-stage access). *)

val update : t -> int -> int -> bool
(** [update t pc ca]: feed the computed address at the MEM stage;
    allocates/replaces on tag mismatch.  Returns whether the predicted
    address matched. *)

type stats = { st_probes : int; st_hits : int; st_correct : int }

val stats : t -> stats

(** {2 Fault-injection hooks}

    Direct slot access for {!Elag_verify.Fault}, which corrupts
    \{tag, PA, ST, STC\} state mid-run to prove predictions are
    timing-only hints.  Not used on the simulation fast path. *)

val slot : t -> int -> int * Stride_entry.t
(** [(tag, entry)] at a slot index ([tag = -1] when invalid); the
    stride entry is the live mutable record.  Raises
    [Invalid_argument] out of range. *)

val set_tag : t -> int -> int -> unit
(** Overwrite a slot's tag (e.g. [-1] to invalidate, or a bogus pc to
    detach the entry from its load).  Raises [Invalid_argument] out of
    range. *)
