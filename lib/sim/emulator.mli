(** Architectural emulator for EPA-32 programs.

    Executes the committed path and reports every retired instruction
    to an optional observer — the "emulation-driven" front of the
    timing simulator: the pipeline model consumes the retirement
    stream and needs no speculative-state recovery of its own.

    On creation the data image is loaded and the heap base is
    published in the reserved word at {!Elag_isa.Layout.heap_pointer_slot},
    where the workload runtime's allocator reads it. *)

exception Runaway of int
(** The instruction budget was exhausted (runaway loop); carries the
    retired-instruction count. *)

exception Bad_jump of { pc : int; retired : int }
(** Control transferred outside the code segment, carrying the bad
    [pc] and how many instructions had retired. *)

type t

type observer = int -> Elag_isa.Insn.t -> int -> bool -> int -> unit
(** [observer pc insn effective_address taken next_pc], called after
    each instruction retires.  [effective_address] is meaningful for
    memory operations, [taken] for control transfers. *)

val create : ?memory_size:int -> Elag_isa.Program.t -> t

val step : ?observer:observer -> t -> bool
(** Retire exactly one instruction; [false] when already halted.  The
    lockstep primitive behind {!Elag_verify.Oracle}: a reference
    emulator is stepped once per subject retire and the two streams
    compared event by event. *)

val run : ?observer:observer -> ?max_insns:int -> t -> unit
(** Run to [Halt]/[exit]; raises {!Runaway} past [max_insns]
    (default 400M). *)

val run_program :
  ?observer:observer -> ?max_insns:int -> ?memory_size:int ->
  Elag_isa.Program.t -> t
(** Create and run in one step; returns the finished emulator. *)

val output : t -> string
(** Everything the program printed. *)

val retired : t -> int
(** Dynamic instruction count. *)

val halted : t -> bool
