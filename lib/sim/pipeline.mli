(** Cycle-based timing model of the paper's six-stage in-order
    superscalar pipeline (IF ID1 ID2 EXE MEM WB) with dual
    early-address-generation support.

    Timing conventions — an instruction issued at cycle [c] occupies
    ID1 at [c-2], ID2 at [c-1], EXE at [c], MEM at [c+1]:
    - ALU results feed dependents issued at [c+1];
    - a normal load feeds dependents at [c+2] (the Figure 1a one-cycle
      load-use stall), plus the miss penalty on a D-cache miss;
    - a successful [ld_p] (table probe at ID1, speculative access at
      ID2, verified at end of EXE) feeds dependents at [c+1];
    - a successful [ld_e] (R_addr full adder, no verification wait)
      feeds dependents at [c]; dispatch is elastic — the access goes
      out on the first cycle the base value reaches R_addr, and a base
      only ready at EXE gains nothing (the Figure 1c worst case);
    - speculative accesses consume data-cache-port bandwidth; wrong
      speculation costs only that bandwidth (the paper's "extra
      load"), and a correct-address speculative miss lets the normal
      access merge with the in-flight fill. *)

type stats =
  { mutable cycles : int
  ; mutable instructions : int
  ; mutable loads : int
  ; mutable stores : int
  ; mutable loads_n : int      (** dynamic loads executed as ld_n *)
  ; mutable loads_p : int
  ; mutable loads_e : int
  ; mutable table_attempts : int
  ; mutable table_successes : int
  ; mutable calc_attempts : int
  ; mutable calc_successes : int
  ; mutable wasted_spec : int  (** dispatched but not forwarded *)
  ; mutable load_latency_sum : int
  ; mutable icache_misses : int
  ; mutable dcache_accesses : int
  ; mutable dcache_misses : int
  ; mutable btb_mispredicts : int }

type load_site =
  { site_pc : int  (** static PC of the load *)
  ; site_spec : Elag_isa.Insn.load_spec  (** static specifier *)
  ; mutable site_count : int  (** dynamic executions *)
  ; mutable site_table_attempts : int
  ; mutable site_table_successes : int
  ; mutable site_calc_attempts : int
  ; mutable site_calc_successes : int
  ; mutable site_wasted_spec : int
  ; mutable site_latency_sum : int
  ; mutable site_dcache_misses : int
  ; site_latency : Elag_telemetry.Histogram.t }
(** Per-static-load telemetry: one record per load PC, so a
    reproduction gap ("this workload speeds up less than the paper")
    can be localized to the individual loads that misbehave. *)

type t

val create : Config.t -> t

val process : t -> int -> Elag_isa.Insn.t -> int -> bool -> int -> unit
(** Feed one retired instruction (same signature as
    {!Emulator.observer}). *)

val set_tracer : t -> (int -> Elag_isa.Insn.t -> int -> int -> unit) -> unit
(** Install a per-instruction hook [(pc, insn, issue_cycle, latency)],
    used by the pipeline-visualization example. *)

val observer : t -> Emulator.observer

val stats : t -> stats

val config : t -> Config.t

val table_stats : t -> Elag_predict.Addr_table.stats option

val bric_stats : t -> Elag_predict.Bric.stats option

(** {2 Fault-injection hooks}

    Direct access to the live predictor structures, so
    {!Elag_verify.Fault} can corrupt them mid-run and prove the
    timing-only-hint invariant: corrupted prediction state may cost
    cycles but can never change architectural results.  [None] when
    the configured mechanism does not instantiate the structure. *)

val btb : t -> Elag_predict.Btb.t
val addr_table : t -> Elag_predict.Addr_table.t option
val bric : t -> Elag_predict.Bric.t option
val raddr : t -> Elag_predict.Raddr.t option

val current_cycle : t -> int
(** The current issue cycle, for cycle-relative corruption (e.g.
    {!Elag_predict.Bric.delay}). *)

val busy_cycles : t -> int
(** Distinct cycles in which at least one instruction issued. *)

val stall_breakdown : t -> (Elag_telemetry.Stall.t * int) list
(** Non-issuing cycles charged to their binding cause, in canonical
    order and including the final drain.  The attribution invariant
    [busy_cycles t + stall_total t = (stats t).cycles] holds by
    construction; see the implementation header for the charging
    rules. *)

val stall_total : t -> int

val load_sites : t -> load_site list
(** Every load PC observed this run, ascending; the sites'
    [site_count]s sum to [(stats t).loads]. *)

val load_latency_histogram : t -> Elag_telemetry.Histogram.t
(** Aggregate effective-latency distribution over all loads. *)

val run : ?max_insns:int -> Config.t -> Elag_isa.Program.t -> t * string
(** Emulate the program under this configuration; returns the pipeline
    itself (for stats and telemetry extraction) and the program's
    printed output. *)

val simulate :
  ?max_insns:int -> Config.t -> Elag_isa.Program.t -> stats * string
(** {!run}, keeping only the flat statistics record. *)
