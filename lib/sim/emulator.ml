(* Architectural emulator for EPA-32 programs.

   Executes the committed path and reports every retired instruction to
   an optional observer — this is the "emulation-driven" front of the
   timing simulator: the pipeline model consumes the retirement stream
   and needs no speculative-state recovery of its own. *)

module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Alu = Elag_isa.Alu
module Program = Elag_isa.Program
module Layout = Elag_isa.Layout

exception Runaway of int
(** Raised when the instruction budget is exhausted (runaway loop). *)

exception Bad_jump of { pc : int; retired : int }

type t =
  { program : Program.t
  ; memory : Memory.t
  ; regs : int array
  ; mutable pc : int
  ; mutable halted : bool
  ; mutable retired : int
  ; output : Buffer.t }

(* An observer receives (pc, insn, effective_address, taken, next_pc)
   for every retired instruction.  [effective_address] is meaningful
   for loads and stores only; [taken] for control transfers. *)
type observer = int -> Insn.t -> int -> bool -> int -> unit

let create ?memory_size (program : Program.t) =
  let memory = Memory.create ?size:memory_size () in
  Memory.load_image memory (Program.data_image program);
  (* publish the heap base in the reserved slot below the data
     segment, where the workloads' allocator reads it *)
  Memory.write_word memory Layout.heap_pointer_slot (Program.heap_base program);
  { program
  ; memory
  ; regs = Array.make Reg.count 0
  ; pc = Program.entry program
  ; halted = false
  ; retired = 0
  ; output = Buffer.create 256 }

let output t = Buffer.contents t.output

let retired t = t.retired

let halted t = t.halted

let effective_address regs = function
  | Insn.Base_offset (b, off) -> Array.unsafe_get regs b + off
  | Insn.Base_index (b, i) -> Array.unsafe_get regs b + Array.unsafe_get regs i
  | Insn.Absolute a -> a

let default_max_insns = 400_000_000

let no_observer : observer = fun _ _ _ _ _ -> ()

(* Top-level (not a per-step closure) so stepping allocates nothing. *)
let set regs r v = if r <> Reg.zero then Array.unsafe_set regs r v

(* Execute exactly one instruction and report it to [observer].  The
   single-step core shared by {!run} and the differential oracle's
   lockstep reference emulator. *)
let exec_one (observer : observer) t =
  let regs = t.regs in
  let mem = t.memory in
  let pc = t.pc in
  if pc < 0 || pc >= Program.length t.program then
    raise (Bad_jump { pc; retired = t.retired });
  let insn = Program.insn t.program pc in
  let next = pc + 1 in
  let eff = ref 0 in
  let taken = ref false in
  let next_pc = ref next in
  (match insn with
  | Insn.Alu { op; dst; src1; src2 } ->
    let a = Array.unsafe_get regs src1 in
    let b = match src2 with Insn.R r -> Array.unsafe_get regs r | Insn.I n -> n in
    set regs dst (Alu.eval op a b)
  | Insn.Li { dst; imm } -> set regs dst (Alu.norm imm)
  | Insn.Load { size; sign; dst; addr; _ } ->
    let a = effective_address regs addr in
    eff := a;
    let v =
      match (size, sign) with
      | Insn.Byte, Insn.Unsigned -> Memory.read_byte_u mem a
      | Insn.Byte, Insn.Signed -> Memory.read_byte_s mem a
      | Insn.Half, Insn.Unsigned -> Memory.read_half_u mem a
      | Insn.Half, Insn.Signed -> Memory.read_half_s mem a
      | Insn.Word, _ -> Memory.read_word mem a
    in
    set regs dst v
  | Insn.Store { size; src; addr } ->
    let a = effective_address regs addr in
    eff := a;
    let v = Array.unsafe_get regs src in
    (match size with
    | Insn.Byte -> Memory.write_byte mem a v
    | Insn.Half -> Memory.write_half mem a v
    | Insn.Word -> Memory.write_word mem a v)
  | Insn.Branch { cond; src1; src2; _ } ->
    let a = Array.unsafe_get regs src1 in
    let b = match src2 with Insn.R r -> Array.unsafe_get regs r | Insn.I n -> n in
    if Alu.eval_cond cond a b then begin
      taken := true;
      next_pc := Program.target t.program pc
    end
  | Insn.Jump _ ->
    taken := true;
    next_pc := Program.target t.program pc
  | Insn.Jal _ ->
    set regs Reg.ra next;
    taken := true;
    next_pc := Program.target t.program pc
  | Insn.Jalr r ->
    let target = Array.unsafe_get regs r in
    set regs Reg.ra next;
    taken := true;
    next_pc := target
  | Insn.Jr r ->
    taken := true;
    next_pc := Array.unsafe_get regs r
  | Insn.Syscall Insn.Print_int ->
    Buffer.add_string t.output (string_of_int regs.(Reg.arg_first));
    Buffer.add_char t.output '\n'
  | Insn.Syscall Insn.Print_char ->
    Buffer.add_char t.output (Char.chr (regs.(Reg.arg_first) land 0xff))
  | Insn.Syscall Insn.Exit -> t.halted <- true
  | Insn.Nop -> ()
  | Insn.Halt -> t.halted <- true);
  t.retired <- t.retired + 1;
  observer pc insn !eff !taken !next_pc;
  t.pc <- !next_pc

let step ?(observer = no_observer) t =
  if t.halted then false
  else begin
    exec_one observer t;
    true
  end

let run ?(observer = no_observer) ?(max_insns = default_max_insns) t =
  while not t.halted do
    if t.retired >= max_insns then raise (Runaway t.retired);
    exec_one observer t
  done

(* Convenience: assemble-run and return the printed output. *)
let run_program ?observer ?max_insns ?memory_size program =
  let t = create ?memory_size program in
  run ?observer ?max_insns t;
  t
