(* Machine-readable reports over one pipeline run: JSON document, flat
   metric registry, and CSV.  All emitters read the same accessors, so
   the shapes cannot drift apart. *)

module Json = Elag_telemetry.Json
module Metrics = Elag_telemetry.Metrics
module Stall = Elag_telemetry.Stall
module Histogram = Elag_telemetry.Histogram
module Insn = Elag_isa.Insn

let spec_name = function
  | Insn.Ld_n -> "ld_n"
  | Insn.Ld_p -> "ld_p"
  | Insn.Ld_e -> "ld_e"

let ipc (s : Pipeline.stats) =
  if s.Pipeline.cycles = 0 then 0.
  else float_of_int s.Pipeline.instructions /. float_of_int s.Pipeline.cycles

let totals_fields (s : Pipeline.stats) =
  [ ("cycles", Json.Int s.Pipeline.cycles)
  ; ("instructions", Json.Int s.Pipeline.instructions)
  ; ("ipc", Json.Float (ipc s))
  ; ("loads", Json.Int s.Pipeline.loads)
  ; ("stores", Json.Int s.Pipeline.stores)
  ; ("loads_n", Json.Int s.Pipeline.loads_n)
  ; ("loads_p", Json.Int s.Pipeline.loads_p)
  ; ("loads_e", Json.Int s.Pipeline.loads_e)
  ; ("table_attempts", Json.Int s.Pipeline.table_attempts)
  ; ("table_successes", Json.Int s.Pipeline.table_successes)
  ; ("calc_attempts", Json.Int s.Pipeline.calc_attempts)
  ; ("calc_successes", Json.Int s.Pipeline.calc_successes)
  ; ("wasted_spec", Json.Int s.Pipeline.wasted_spec)
  ; ("load_latency_sum", Json.Int s.Pipeline.load_latency_sum)
  ; ("icache_misses", Json.Int s.Pipeline.icache_misses)
  ; ("dcache_accesses", Json.Int s.Pipeline.dcache_accesses)
  ; ("dcache_misses", Json.Int s.Pipeline.dcache_misses)
  ; ("btb_mispredicts", Json.Int s.Pipeline.btb_mispredicts) ]

let stalls_json t =
  let breakdown = Pipeline.stall_breakdown t in
  Json.Obj
    (( "busy", Json.Int (Pipeline.busy_cycles t) )
     :: List.map (fun (cause, n) -> (Stall.name cause, Json.Int n)) breakdown
    @ [ ("total_stall", Json.Int (Pipeline.stall_total t)) ])

let site_json (site : Pipeline.load_site) =
  Json.Obj
    [ ("pc", Json.Int site.Pipeline.site_pc)
    ; ("spec", Json.String (spec_name site.Pipeline.site_spec))
    ; ("count", Json.Int site.Pipeline.site_count)
    ; ("table_attempts", Json.Int site.Pipeline.site_table_attempts)
    ; ("table_successes", Json.Int site.Pipeline.site_table_successes)
    ; ("calc_attempts", Json.Int site.Pipeline.site_calc_attempts)
    ; ("calc_successes", Json.Int site.Pipeline.site_calc_successes)
    ; ("wasted_spec", Json.Int site.Pipeline.site_wasted_spec)
    ; ("dcache_misses", Json.Int site.Pipeline.site_dcache_misses)
    ; ( "avg_latency"
      , Json.Float
          (float_of_int site.Pipeline.site_latency_sum
          /. float_of_int (max 1 site.Pipeline.site_count)) )
    ; ("latency", Histogram.to_json site.Pipeline.site_latency) ]

let predictors_json t =
  let table =
    match Pipeline.table_stats t with
    | None -> Json.Null
    | Some st ->
      Json.Obj
        [ ("probes", Json.Int st.Elag_predict.Addr_table.st_probes)
        ; ("hits", Json.Int st.Elag_predict.Addr_table.st_hits)
        ; ("correct", Json.Int st.Elag_predict.Addr_table.st_correct) ]
  in
  let bric =
    match Pipeline.bric_stats t with
    | None -> Json.Null
    | Some st ->
      Json.Obj
        [ ("probes", Json.Int st.Elag_predict.Bric.br_probes)
        ; ("hits", Json.Int st.Elag_predict.Bric.br_hits)
        ; ("evictions", Json.Int st.Elag_predict.Bric.br_evictions) ]
  in
  Json.Obj [ ("addr_table", table); ("bric", bric) ]

let to_json ?(meta = []) t =
  let s = Pipeline.stats t in
  Json.Obj
    ((if meta = [] then [] else [ ("meta", Json.Obj meta) ])
    @ [ ("schema", Json.String "elag.report.v1")
      ; ("config", Config.to_json (Pipeline.config t))
      ; ("totals", Json.Obj (totals_fields s))
      ; ("stalls", stalls_json t)
      ; ("load_latency", Histogram.to_json (Pipeline.load_latency_histogram t))
      ; ("predictors", predictors_json t)
      ; ("load_sites", Json.List (List.map site_json (Pipeline.load_sites t))) ])

let to_metrics t =
  let s = Pipeline.stats t in
  let reg = Metrics.create () in
  let put name v = Metrics.set (Metrics.counter reg name) v in
  List.iter
    (fun (name, v) -> match v with Json.Int n -> put name n | _ -> ())
    (totals_fields s);
  put "busy_cycles" (Pipeline.busy_cycles t);
  List.iter
    (fun (cause, n) -> put ("stall_" ^ Stall.name cause) n)
    (Pipeline.stall_breakdown t);
  put "stall_total" (Pipeline.stall_total t);
  Metrics.attach_histogram reg "load_latency" (Pipeline.load_latency_histogram t);
  reg

let to_csv ?(meta = []) t =
  let buf = Buffer.create 1024 in
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "# %s,%s\n" k v)) meta;
  Buffer.add_string buf (Metrics.to_csv (to_metrics t));
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    "pc,spec,count,table_attempts,table_successes,calc_attempts,calc_successes,wasted_spec,dcache_misses,latency_sum\n";
  List.iter
    (fun (site : Pipeline.load_site) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d\n"
           site.Pipeline.site_pc
           (spec_name site.Pipeline.site_spec)
           site.Pipeline.site_count site.Pipeline.site_table_attempts
           site.Pipeline.site_table_successes site.Pipeline.site_calc_attempts
           site.Pipeline.site_calc_successes site.Pipeline.site_wasted_spec
           site.Pipeline.site_dcache_misses site.Pipeline.site_latency_sum))
    (Pipeline.load_sites t);
  Buffer.contents buf
