(* Cycle-based timing model of the six-stage in-order superscalar
   pipeline (IF ID1 ID2 EXE MEM WB) with dual early-address-generation
   support.

   The model is emulation-driven: it consumes the retirement stream
   from {!Emulator} in program order and computes the issue cycle of
   every instruction subject to issue width, functional-unit limits,
   operand readiness (full bypass), data-cache ports, branch
   prediction, and cache misses.

   Timing conventions — an instruction issued at cycle [c] occupies
   ID1 at [c-2], ID2 at [c-1], EXE at [c], MEM at [c+1]:
   - ALU results feed dependents issued at [c+1];
   - a normal load's value feeds dependents at [c+2] (the one-cycle
     load-use stall of Figure 1a), plus 12 cycles on a D-cache miss;
   - an [ld_p] speculative access probes the table in ID1 and accesses
     the cache in ID2 ([c-1]); verified against the computed address at
     the end of EXE, a correct prediction feeds dependents at [c+1]
     (latency 1);
   - an [ld_e] access computes R_addr+offset in ID1 and accesses the
     cache in ID2; since no late verification is needed, a successful
     access feeds dependents at [c] (latency 0);
   - speculative accesses consume a data-cache port at [c-1]; wrong
     speculation wastes only that bandwidth (the paper's "extra load").

   Telemetry: besides the flat {!stats} record the model attributes
   every non-issuing cycle to a {!Elag_telemetry.Stall.t} cause and
   keeps a per-static-load table ({!load_site}) so reproduction gaps
   can be localized to individual loads.  Attribution charges the
   binding (latest) constraint: operand-readiness cycles go to the
   cause recorded when the producing register was written (load-use /
   dcache-miss / raw-dependence), front-end cycles to the event that
   last pushed [fetch_ready] (icache-miss / btb-mispredict, with
   startup pipeline fill folded into the former since the first fetch
   is always a cold miss), and cycles spent searching past the operand
   bound for a free data-cache port to port-contention.  The final
   drain — cycles between the last issue and the last writeback — is
   charged to the cause of the instruction that finishes last.  By
   construction [busy_cycles + Σ stall_breakdown = stats.cycles]. *)

module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Addr_table = Elag_predict.Addr_table
module Bric = Elag_predict.Bric
module Raddr = Elag_predict.Raddr
module Btb = Elag_predict.Btb
module Stall = Elag_telemetry.Stall
module Histogram = Elag_telemetry.Histogram

type stats =
  { mutable cycles : int
  ; mutable instructions : int
  ; mutable loads : int
  ; mutable stores : int
  ; mutable loads_n : int
  ; mutable loads_p : int
  ; mutable loads_e : int
  ; mutable table_attempts : int  (* speculative accesses via the table *)
  ; mutable table_successes : int
  ; mutable calc_attempts : int   (* speculative accesses via early calc *)
  ; mutable calc_successes : int
  ; mutable wasted_spec : int     (* dispatched but not forwarded *)
  ; mutable load_latency_sum : int
  ; mutable icache_misses : int
  ; mutable dcache_accesses : int
  ; mutable dcache_misses : int
  ; mutable btb_mispredicts : int }

let fresh_stats () =
  { cycles = 0; instructions = 0; loads = 0; stores = 0
  ; loads_n = 0; loads_p = 0; loads_e = 0
  ; table_attempts = 0; table_successes = 0
  ; calc_attempts = 0; calc_successes = 0
  ; wasted_spec = 0; load_latency_sum = 0
  ; icache_misses = 0; dcache_accesses = 0; dcache_misses = 0
  ; btb_mispredicts = 0 }

type load_site =
  { site_pc : int
  ; site_spec : Insn.load_spec
  ; mutable site_count : int
  ; mutable site_table_attempts : int
  ; mutable site_table_successes : int
  ; mutable site_calc_attempts : int
  ; mutable site_calc_successes : int
  ; mutable site_wasted_spec : int
  ; mutable site_latency_sum : int
  ; mutable site_dcache_misses : int
  ; site_latency : Histogram.t }

let ring_size = 1024
let ring_mask = ring_size - 1

type t =
  { cfg : Config.t
  ; icache : Cache.t
  ; dcache : Cache.t
  ; btb : Btb.t
  ; table : Addr_table.t option
  ; bric : Bric.t option
  ; raddr : Raddr.t option
  ; reg_ready : int array
  ; reg_cause : Stall.t array  (* why waiting on this register stalls *)
  ; port_cycle : int array  (* ring: which cycle this slot describes *)
  ; port_count : int array
  ; mutable cur_cycle : int
  ; mutable slots_used : int
  ; mutable alus_used : int
  ; mutable branches_used : int
  ; mutable fetch_ready : int
  ; mutable fetch_cause : Stall.t  (* why waiting on the front end stalls *)
  ; mutable stores_in_flight : (int * int * int) list  (* issue cycle, addr, bytes *)
  ; mutable tracer : (int -> Insn.t -> int -> int -> unit) option
    (* pc, insn, issue cycle, result latency — for visualization *)
  ; mutable last_issue : int   (* most recent cycle an instruction issued *)
  ; mutable busy_cycles : int  (* distinct cycles with >= 1 issue *)
  ; stall_cycles : int array   (* indexed by Stall.index *)
  ; mutable drain_cause : Stall.t  (* cause of the latest writeback *)
  ; load_sites : (int, load_site) Hashtbl.t
  ; load_latency_hist : Histogram.t
  ; stats : stats }

let create (cfg : Config.t) =
  let table =
    match cfg.mechanism with
    | Config.Table_only { entries; _ } -> Some (Addr_table.create entries)
    | Config.Dual { table_entries; _ } -> Some (Addr_table.create table_entries)
    | _ -> None
  in
  let bric =
    match cfg.mechanism with
    | Config.Calc_only { bric_entries } -> Some (Bric.create bric_entries)
    | _ -> None
  in
  let raddr =
    match cfg.mechanism with Config.Dual _ -> Some (Raddr.create ()) | _ -> None
  in
  { cfg
  ; icache =
      Cache.create ~ways:cfg.cache_ways ~size_bytes:cfg.icache_bytes
        ~line_bytes:cfg.line_bytes ()
  ; dcache =
      Cache.create ~ways:cfg.cache_ways ~size_bytes:cfg.dcache_bytes
        ~line_bytes:cfg.line_bytes ()
  ; btb = Btb.create cfg.btb_entries
  ; table
  ; bric
  ; raddr
  ; reg_ready = Array.make Reg.count 0
  ; reg_cause = Array.make Reg.count Stall.Raw_dependence
  ; port_cycle = Array.make ring_size (-1)
  ; port_count = Array.make ring_size 0
  ; cur_cycle = 4  (* leave room for stage offsets at startup *)
  ; slots_used = 0
  ; alus_used = 0
  ; branches_used = 0
  ; fetch_ready = 4
  ; fetch_cause = Stall.Icache_miss  (* startup fill = frontend *)
  ; stores_in_flight = []
  ; tracer = None
  ; last_issue = -1
  ; busy_cycles = 0
  ; stall_cycles = Array.make Stall.cardinal 0
  ; drain_cause = Stall.Raw_dependence
  ; load_sites = Hashtbl.create 64
  ; load_latency_hist = Histogram.create ~bounds:Histogram.load_latency_bounds
  ; stats = fresh_stats () }

(* --- data-cache port ring ------------------------------------------- *)

let ports_used t cycle =
  let i = cycle land ring_mask in
  if t.port_cycle.(i) = cycle then t.port_count.(i) else 0

let port_free t cycle = ports_used t cycle < t.cfg.mem_ports

let book_port t cycle =
  let i = cycle land ring_mask in
  if t.port_cycle.(i) <> cycle then begin
    t.port_cycle.(i) <- cycle;
    t.port_count.(i) <- 0
  end;
  t.port_count.(i) <- t.port_count.(i) + 1

(* --- store interlocks ------------------------------------------------ *)

let overlap a1 n1 a2 n2 = not (a1 + n1 <= a2 || a2 + n2 <= a1)

(* Conservative memory interlock for a speculative access reading the
   cache during cycle [read_cycle]: a store issued at [read_cycle] or
   later has an unresolved address (interlock); one issued the cycle
   before races with the read and interlocks when the ranges overlap;
   older stores have completed their write-through. *)
let mem_interlock t ~read_cycle spec_addr spec_bytes =
  t.stores_in_flight <-
    List.filter (fun (cs, _, _) -> cs >= read_cycle - 1) t.stores_in_flight;
  List.exists
    (fun (cs, addr, bytes) ->
      cs >= read_cycle || overlap addr bytes spec_addr spec_bytes)
    t.stores_in_flight

(* --- issue-cycle bookkeeping ----------------------------------------- *)

let advance_to t c =
  if c > t.cur_cycle then begin
    t.cur_cycle <- c;
    t.slots_used <- 0;
    t.alus_used <- 0;
    t.branches_used <- 0
  end

let structural_ok t c ~alu ~branch =
  if c > t.cur_cycle then true
  else
    t.slots_used < t.cfg.issue_width
    && ((not alu) || t.alus_used < t.cfg.int_alus)
    && ((not branch) || t.branches_used < t.cfg.branch_units)

(* --- telemetry helpers ------------------------------------------------ *)

let charge t cause n =
  let i = Stall.index cause in
  t.stall_cycles.(i) <- t.stall_cycles.(i) + n

(* Raise [fetch_ready], remembering the responsible cause only when the
   bound actually moves (a smaller refill never becomes the binding
   constraint). *)
let bump_fetch t cycle cause =
  if cycle > t.fetch_ready then begin
    t.fetch_ready <- cycle;
    t.fetch_cause <- cause
  end

let site_of t pc spec =
  match Hashtbl.find_opt t.load_sites pc with
  | Some site -> site
  | None ->
    let site =
      { site_pc = pc
      ; site_spec = spec
      ; site_count = 0
      ; site_table_attempts = 0
      ; site_table_successes = 0
      ; site_calc_attempts = 0
      ; site_calc_successes = 0
      ; site_wasted_spec = 0
      ; site_latency_sum = 0
      ; site_dcache_misses = 0
      ; site_latency = Histogram.create ~bounds:Histogram.load_latency_bounds }
    in
    Hashtbl.replace t.load_sites pc site;
    site

(* --- speculation evaluation ------------------------------------------ *)

type spec_eval =
  { dispatched : bool
  ; access_cycle : int  (* cycle the speculative cache access occupies *)
  ; success : bool
  ; success_latency : int
  ; path : [ `Table | `Calc | `None ] }

let no_spec =
  { dispatched = false; access_cycle = 0; success = false; success_latency = 0
  ; path = `None }

let base_register = function
  | Insn.Base_offset (b, _) -> Some b
  | Insn.Base_index _ | Insn.Absolute _ -> None

(* Early-calculation timing is elastic in an in-order pipeline: the
   dedicated adder computes base+offset during the first cycle the base
   value is visible to R_addr/BRIC (never earlier than the load's ID1),
   and the speculative access goes out the following cycle.  The early
   path is profitable only when that access completes no later than the
   EXE stage of the load itself; a base register that becomes ready
   exactly at EXE (the paper's Figure 1c worst case) gains nothing and
   is suppressed as an R_addr interlock. *)
let calc_access_cycle t c base = 1 + max (c - 2) t.reg_ready.(base)

(* Pure evaluation of the speculative path at candidate issue cycle
   [c].  [prediction] is the table's predicted address (peeked once per
   load, before the search). *)
let eval_spec t c ~path ~prediction ~eff ~bytes ~addr_mode =
  match path with
  | `None -> no_spec
  | `Table -> begin
    match prediction with
    | None -> no_spec
    | Some pa ->
      (* PC-indexed prediction is available at ID1; the speculative
         access occupies the cache during ID2 and is verified against
         the computed address at the end of EXE: latency 1. *)
      let access_cycle = c - 1 in
      if not (port_free t access_cycle) then no_spec
      else
        let success =
          pa = eff
          && Cache.probe t.dcache pa
          && not (mem_interlock t ~read_cycle:access_cycle pa bytes)
        in
        { dispatched = true; access_cycle; success; success_latency = 1
        ; path = `Table }
  end
  | `Calc -> begin
    match base_register addr_mode with
    | None -> no_spec
    | Some base ->
      let structure_hit =
        match (t.raddr, t.bric) with
        | Some r, _ -> Raddr.peek r ~cycle:(c - 2) base
        | None, Some b -> Bric.peek b ~cycle:(c - 2) base
        | None, None -> false
      in
      let access_cycle = calc_access_cycle t c base in
      if not (structure_hit && access_cycle <= c && port_free t access_cycle)
      then no_spec
      else
        let success =
          Cache.probe t.dcache eff
          && not (mem_interlock t ~read_cycle:access_cycle eff bytes)
        in
        { dispatched = true; access_cycle; success
        ; success_latency = max 0 (access_cycle + 1 - c); path = `Calc }
  end

(* Which early path does this load take under the configured
   mechanism? *)
let select_path t c insn_spec addr_mode =
  match t.cfg.mechanism with
  | Config.No_early -> (`None, false)
  | Config.Table_only { compiler_filtered; _ } ->
    if (not compiler_filtered) || insn_spec = Insn.Ld_p then (`Table, true)
    else (`None, false)
  | Config.Calc_only _ -> (`Calc, false)
  | Config.Dual { selection = Config.Compiler_directed; _ } -> begin
    match insn_spec with
    | Insn.Ld_p -> (`Table, true)
    | Insn.Ld_e -> (`Calc, false)
    | Insn.Ld_n -> (`None, false)
  end
  | Config.Dual { selection = Config.Hardware_selected; _ } -> begin
    (* Run-time selection over the same hardware (Eickemeyer–
       Vassiliadis rule): a base register interlocked at decode sends
       the load to the prediction table (allocating an entry);
       otherwise it takes the early-calculation path through R_addr,
       rebinding it.  With no compiler guidance, every calc-path load
       competes for the single R_addr binding. *)
    match base_register addr_mode with
    | None -> (`Table, true)
    | Some base ->
      if t.reg_ready.(base) <= c - 2 then (`Calc, false) else (`Table, true)
  end

(* --- per-instruction processing --------------------------------------- *)

let count_load_spec stats = function
  | Insn.Ld_n -> stats.loads_n <- stats.loads_n + 1
  | Insn.Ld_p -> stats.loads_p <- stats.loads_p + 1
  | Insn.Ld_e -> stats.loads_e <- stats.loads_e + 1

let process t pc insn eff taken next_pc =
  let s = t.stats in
  s.instructions <- s.instructions + 1;
  (* instruction fetch *)
  if not (Cache.access t.icache (pc lsl 2)) then begin
    s.icache_misses <- s.icache_misses + 1;
    bump_fetch t (max t.fetch_ready t.cur_cycle + t.cfg.miss_penalty)
      Stall.Icache_miss
  end;
  let alu =
    match insn with
    | Insn.Alu _ | Insn.Li _ | Insn.Syscall _ | Insn.Nop | Insn.Halt -> true
    | _ -> false
  in
  let branch = Insn.is_branch insn in
  let is_load = Insn.is_load insn in
  let is_store = Insn.is_store insn in
  let sources_ready = ref 0 in
  let sources_cause = ref Stall.Raw_dependence in
  List.iter
    (fun r ->
      if t.reg_ready.(r) > !sources_ready then begin
        sources_ready := t.reg_ready.(r);
        sources_cause := t.reg_cause.(r)
      end)
    (Insn.uses insn);
  let sources_ready = !sources_ready in
  let c0 = max (max t.fetch_ready sources_ready) t.cur_cycle in
  (* table probe happens once per load (counts in table stats) *)
  let load_info =
    if is_load then
      match insn with
      | Insn.Load { spec; size; addr; _ } -> Some (spec, Insn.size_bytes size, addr)
      | _ -> None
    else None
  in
  (* search for the issue cycle *)
  let rec find c =
    if not (structural_ok t c ~alu ~branch) then find (c + 1)
    else if is_store then
      if port_free t (c + 1) then (c, no_spec) else find (c + 1)
    else if is_load then begin
      match load_info with
      | None -> (c, no_spec)
      | Some (spec, bytes, addr_mode) ->
        let path, _ = select_path t c spec addr_mode in
        let prediction =
          match (path, t.table) with
          | `Table, Some table -> begin
            (* pure peek at the table entry: direct-mapped tag match *)
            match Addr_table.peek table pc with
            | Some pa -> Some pa
            | None -> None
          end
          | _ -> None
        in
        let ev = eval_spec t c ~path ~prediction ~eff ~bytes ~addr_mode in
        if ev.success then (c, ev)
        else if port_free t (c + 1) then (c, ev)
        else find (c + 1)
    end
    else (c, no_spec)
  in
  let c, ev = find c0 in
  (* stall attribution: charge every cycle between the previous issue
     and this one to its binding constraint.  [last_issue+1, c0) was
     bounded by operand readiness or the front end (whichever is
     latest); [c0, c) was spent searching for a free data-cache port. *)
  if c > t.last_issue then begin
    let gap_start = t.last_issue + 1 in
    let dep_end = min c c0 in
    if dep_end > gap_start then begin
      let cause =
        if sources_ready >= t.fetch_ready && sources_ready > t.last_issue then
          !sources_cause
        else t.fetch_cause
      in
      charge t cause (dep_end - gap_start)
    end;
    let port_start = max c0 gap_start in
    if c > port_start then charge t Stall.Port_contention (c - port_start);
    t.busy_cycles <- t.busy_cycles + 1;
    t.last_issue <- c
  end;
  advance_to t c;
  t.slots_used <- t.slots_used + 1;
  if alu then t.alus_used <- t.alus_used + 1;
  if branch then t.branches_used <- t.branches_used + 1;
  (* defaults *)
  let latency = ref 1 in
  let def_cause = ref Stall.Raw_dependence in
  (match insn with
  | Insn.Alu { op = Insn.Mul; _ } -> latency := t.cfg.mul_latency
  | Insn.Alu { op = Insn.Div | Insn.Rem; _ } -> latency := t.cfg.div_latency
  | _ -> ());
  (* loads *)
  (match load_info with
  | Some (spec, _bytes, addr_mode) ->
    s.loads <- s.loads + 1;
    count_load_spec s spec;
    let site = site_of t pc spec in
    site.site_count <- site.site_count + 1;
    let path, updates_table = select_path t c spec addr_mode in
    (* commit structure probes/bindings *)
    (match (path, base_register addr_mode) with
    | `Calc, Some base -> begin
      match (t.raddr, t.bric) with
      | Some r, _ ->
        ignore (Raddr.probe r ~cycle:(c - 2) base);
        Raddr.bind r ~cycle:(c - 2) base
      | None, Some b -> ignore (Bric.probe b ~cycle:(c - 2) base)
      | None, None -> ()
    end
    | (`Calc | `Table | `None), _ -> ());
    (* speculative dispatch effects *)
    let spec_missed_same_line = ref false in
    if ev.dispatched then begin
      book_port t ev.access_cycle;
      s.dcache_accesses <- s.dcache_accesses + 1;
      (* the speculative access touches the cache with its (possibly
         wrong) address; for the table path that is the prediction *)
      let spec_addr =
        match ev.path with
        | `Table -> (match t.table with
                     | Some table -> (match Addr_table.peek table pc with
                                      | Some pa -> pa
                                      | None -> eff)
                     | None -> eff)
        | _ -> eff
      in
      let spec_hit = Cache.access t.dcache spec_addr in
      if not spec_hit then begin
        s.dcache_misses <- s.dcache_misses + 1;
        (* a correct-address speculative miss starts the fill early;
           the normal access below merges with the in-flight fill *)
        if spec_addr lsr 6 = eff lsr 6 then spec_missed_same_line := true
      end;
      (match ev.path with
      | `Table ->
        s.table_attempts <- s.table_attempts + 1;
        site.site_table_attempts <- site.site_table_attempts + 1;
        if ev.success then begin
          s.table_successes <- s.table_successes + 1;
          site.site_table_successes <- site.site_table_successes + 1
        end
      | `Calc ->
        s.calc_attempts <- s.calc_attempts + 1;
        site.site_calc_attempts <- site.site_calc_attempts + 1;
        if ev.success then begin
          s.calc_successes <- s.calc_successes + 1;
          site.site_calc_successes <- site.site_calc_successes + 1
        end
      | `None -> ());
      if not ev.success then begin
        s.wasted_spec <- s.wasted_spec + 1;
        site.site_wasted_spec <- site.site_wasted_spec + 1
      end
    end;
    let load_missed = ref false in
    let lat =
      if ev.success then ev.success_latency
      else begin
        (* normal path: cache access at MEM *)
        book_port t (c + 1);
        s.dcache_accesses <- s.dcache_accesses + 1;
        let hit = Cache.access t.dcache eff in
        if not hit then begin
          s.dcache_misses <- s.dcache_misses + 1;
          load_missed := true
        end;
        if hit && !spec_missed_same_line then
          (* merge with the fill the speculative access initiated *)
          t.cfg.load_latency
          + max 0 (t.cfg.miss_penalty - (c + 1 - ev.access_cycle))
        else t.cfg.load_latency + (if hit then 0 else t.cfg.miss_penalty)
      end
    in
    s.load_latency_sum <- s.load_latency_sum + lat;
    site.site_latency_sum <- site.site_latency_sum + lat;
    if !load_missed then site.site_dcache_misses <- site.site_dcache_misses + 1;
    Histogram.observe site.site_latency lat;
    Histogram.observe t.load_latency_hist lat;
    latency := lat;
    def_cause := if !load_missed then Stall.Dcache_miss else Stall.Load_use;
    (* the table entry is updated at MEM with the computed address *)
    (match (t.table, updates_table) with
    | Some table, true -> ignore (Addr_table.update table pc eff)
    | _ -> ())
  | None -> ());
  (* stores *)
  if is_store then begin
    s.stores <- s.stores + 1;
    book_port t (c + 1);
    s.dcache_accesses <- s.dcache_accesses + 1;
    if not (Cache.access_store t.dcache eff) then
      s.dcache_misses <- s.dcache_misses + 1;
    let bytes =
      match insn with Insn.Store { size; _ } -> Insn.size_bytes size | _ -> 4
    in
    t.stores_in_flight <- (c, eff, bytes) :: t.stores_in_flight
  end;
  (* control flow *)
  (match insn with
  | Insn.Branch _ | Insn.Jr _ | Insn.Jalr _ ->
    let correct = Btb.update t.btb pc ~taken ~target:next_pc in
    if correct then begin
      if taken then t.fetch_ready <- max t.fetch_ready (c + 1)
    end
    else begin
      s.btb_mispredicts <- s.btb_mispredicts + 1;
      bump_fetch t (c + 1 + t.cfg.mispredict_penalty) Stall.Btb_mispredict
    end
  | Insn.Jump _ | Insn.Jal _ ->
    (* direct unconditional transfers redirect fetch without penalty
       but end the fetch group *)
    t.fetch_ready <- max t.fetch_ready (c + 1)
  | _ -> ());
  (* destinations *)
  List.iter
    (fun d ->
      t.reg_ready.(d) <- c + !latency;
      t.reg_cause.(d) <- !def_cause)
    (Insn.defs insn);
  (match t.tracer with Some f -> f pc insn c !latency | None -> ());
  (* an issued instruction occupies its issue cycle even at latency 0 *)
  let finish = max (c + !latency) (c + 1) in
  if finish > s.cycles then begin
    s.cycles <- finish;
    t.drain_cause <- !def_cause
  end

let set_tracer t f = t.tracer <- Some f

let observer t : Emulator.observer = fun pc insn eff taken next_pc ->
  process t pc insn eff taken next_pc

let stats t = t.stats

let config t = t.cfg

let table_stats t = Option.map Addr_table.stats t.table

let bric_stats t = Option.map Bric.stats t.bric

(* --- fault-injection hooks (lib/verify) -------------------------------- *)

let btb t = t.btb
let addr_table t = t.table
let bric t = t.bric
let raddr t = t.raddr
let current_cycle t = t.cur_cycle

(* --- telemetry accessors ---------------------------------------------- *)

let busy_cycles t = t.busy_cycles

let stall_breakdown t =
  let arr = Array.copy t.stall_cycles in
  (* charge the final drain (cycles after the last issue, waiting for
     the latest writeback) to whatever finishes last *)
  let drain = t.stats.cycles - (t.last_issue + 1) in
  if drain > 0 then begin
    let i = Stall.index t.drain_cause in
    arr.(i) <- arr.(i) + drain
  end;
  List.map (fun cause -> (cause, arr.(Stall.index cause))) Stall.all

let stall_total t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (stall_breakdown t)

let load_sites t =
  Hashtbl.fold (fun _ site acc -> site :: acc) t.load_sites []
  |> List.sort (fun a b -> compare a.site_pc b.site_pc)

let load_latency_histogram t = t.load_latency_hist

(* Run a program under this configuration; returns the pipeline (for
   telemetry extraction) and the program's printed output. *)
let run ?max_insns (cfg : Config.t) program =
  let t = create cfg in
  let emu = Emulator.create program in
  Emulator.run ~observer:(observer t) ?max_insns emu;
  (t, Emulator.output emu)

(* Run a program under this configuration and return final statistics. *)
let simulate ?max_insns (cfg : Config.t) program =
  let t, output = run ?max_insns cfg program in
  (t.stats, output)
