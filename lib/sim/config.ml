(* Machine configuration for the timing simulator.  Defaults follow the
   paper's evaluation machine: 6-issue in-order, 4 integer ALUs, 2 data
   cache ports, 1 branch unit, 64 KB direct-mapped I/D caches with 64 B
   lines and a 12-cycle miss penalty, 1K-entry BTB with 2-bit counters,
   PA-7100-like latencies (1-cycle integer ops, 2-cycle loads). *)

type selection = Hardware_selected | Compiler_directed

type mechanism =
  | No_early
    (** Baseline: no early address generation. *)
  | Table_only of { entries : int; compiler_filtered : bool }
    (** Figure 5a: address-prediction table only.  When
        [compiler_filtered], only loads the compiler marked [ld_p] may
        allocate entries; otherwise every load is treated as
        predictable. *)
  | Calc_only of { bric_entries : int }
    (** Figure 5b: early address calculation only, with an N-entry
        base-register cache; every register+offset load participates. *)
  | Dual of { table_entries : int; selection : selection }
    (** Figure 5c: both mechanisms.  [Compiler_directed] follows the
        load opcode specifiers; [Hardware_selected] uses the
        Eickemeyer–Vassiliadis run-time rule (base register interlocked
        at decode => prediction table, otherwise early calculation). *)

type t =
  { issue_width : int
  ; int_alus : int
  ; mem_ports : int
  ; branch_units : int
  ; load_latency : int        (* cycles: address generation + cache *)
  ; mul_latency : int
  ; div_latency : int
  ; miss_penalty : int
  ; icache_bytes : int
  ; dcache_bytes : int
  ; line_bytes : int
  ; cache_ways : int          (* 1 = direct-mapped, the paper's config *)
  ; btb_entries : int
  ; mispredict_penalty : int  (* front-end refill after EXE resolve *)
  ; mechanism : mechanism }

let default =
  { issue_width = 6
  ; int_alus = 4
  ; mem_ports = 2
  ; branch_units = 1
  ; load_latency = 2
  ; mul_latency = 3
  ; div_latency = 8
  ; miss_penalty = 12
  ; icache_bytes = 64 * 1024
  ; dcache_bytes = 64 * 1024
  ; line_bytes = 64
  ; cache_ways = 1
  ; btb_entries = 1024
  ; mispredict_penalty = 3
  ; mechanism = No_early }

(* Labelled builder and per-field functional updates, so binaries and
   benches never open-code record updates against the field list. *)
let make ?(issue_width = default.issue_width) ?(int_alus = default.int_alus)
    ?(mem_ports = default.mem_ports) ?(branch_units = default.branch_units)
    ?(load_latency = default.load_latency) ?(mul_latency = default.mul_latency)
    ?(div_latency = default.div_latency) ?(miss_penalty = default.miss_penalty)
    ?(icache_bytes = default.icache_bytes) ?(dcache_bytes = default.dcache_bytes)
    ?(line_bytes = default.line_bytes) ?(cache_ways = default.cache_ways)
    ?(btb_entries = default.btb_entries)
    ?(mispredict_penalty = default.mispredict_penalty)
    ?(mechanism = default.mechanism) () =
  { issue_width; int_alus; mem_ports; branch_units; load_latency; mul_latency
  ; div_latency; miss_penalty; icache_bytes; dcache_bytes; line_bytes
  ; cache_ways; btb_entries; mispredict_penalty; mechanism }

let with_issue_width issue_width t = { t with issue_width }
let with_int_alus int_alus t = { t with int_alus }
let with_mem_ports mem_ports t = { t with mem_ports }
let with_branch_units branch_units t = { t with branch_units }
let with_load_latency load_latency t = { t with load_latency }
let with_mul_latency mul_latency t = { t with mul_latency }
let with_div_latency div_latency t = { t with div_latency }
let with_miss_penalty miss_penalty t = { t with miss_penalty }
let with_icache_bytes icache_bytes t = { t with icache_bytes }
let with_dcache_bytes dcache_bytes t = { t with dcache_bytes }
let with_line_bytes line_bytes t = { t with line_bytes }
let with_cache_ways cache_ways t = { t with cache_ways }
let with_btb_entries btb_entries t = { t with btb_entries }
let with_mispredict_penalty mispredict_penalty t = { t with mispredict_penalty }
let with_mechanism mechanism t = { t with mechanism }

let mechanism_name = function
  | No_early -> "baseline"
  | Table_only { entries; compiler_filtered } ->
    Printf.sprintf "table-%d%s" entries (if compiler_filtered then "-cc" else "-hw")
  | Calc_only { bric_entries } -> Printf.sprintf "calc-%d" bric_entries
  | Dual { table_entries; selection } ->
    Printf.sprintf "dual-%d-%s" table_entries
      (match selection with Hardware_selected -> "hw" | Compiler_directed -> "cc")

(* Single source of truth for mechanism naming: [to_string] produces
   canonical names, [of_string] parses them back (plus the short CLI
   aliases "table-N", "dual-hw" and "dual-cc"), and [all] is the
   paper's evaluation grid (Figures 5a-c). *)
module Mechanism = struct
  type t = mechanism

  let to_string = mechanism_name

  let all =
    No_early
    :: List.concat_map
         (fun entries ->
           [ Table_only { entries; compiler_filtered = false }
           ; Table_only { entries; compiler_filtered = true } ])
         [ 64; 128; 256 ]
    @ List.map (fun n -> Calc_only { bric_entries = n }) [ 4; 8; 16 ]
    @ [ Dual { table_entries = 256; selection = Hardware_selected }
      ; Dual { table_entries = 256; selection = Compiler_directed } ]

  let of_string s =
    let int p = int_of_string_opt p in
    match String.split_on_char '-' s with
    | [ "baseline" ] -> Some No_early
    | [ "dual"; "hw" ] -> Some (Dual { table_entries = 256; selection = Hardware_selected })
    | [ "dual"; "cc" ] -> Some (Dual { table_entries = 256; selection = Compiler_directed })
    | [ "table"; n ] | [ "table"; n; "hw" ] ->
      Option.map (fun entries -> Table_only { entries; compiler_filtered = false }) (int n)
    | [ "table"; n; "cc" ] ->
      Option.map (fun entries -> Table_only { entries; compiler_filtered = true }) (int n)
    | [ "calc"; n ] -> Option.map (fun bric_entries -> Calc_only { bric_entries }) (int n)
    | [ "dual"; n; "hw" ] ->
      Option.map
        (fun table_entries -> Dual { table_entries; selection = Hardware_selected })
        (int n)
    | [ "dual"; n; "cc" ] ->
      Option.map
        (fun table_entries -> Dual { table_entries; selection = Compiler_directed })
        (int n)
    | _ -> None

  let of_string_exn s =
    match of_string s with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "unknown mechanism %S (known: %s; also table-N, calc-N, dual-N-hw, dual-N-cc)"
           s (String.concat " " (List.map to_string all)))
end

(* Provenance block embedded in every emitted report: the exact
   machine and mechanism a result was produced under. *)
let mechanism_to_json mech =
  let open Elag_telemetry.Json in
  let fields =
    match mech with
    | No_early -> []
    | Table_only { entries; compiler_filtered } ->
      [ ("table_entries", Int entries); ("compiler_filtered", Bool compiler_filtered) ]
    | Calc_only { bric_entries } -> [ ("bric_entries", Int bric_entries) ]
    | Dual { table_entries; selection } ->
      [ ("table_entries", Int table_entries)
      ; ( "selection"
        , String
            (match selection with
            | Hardware_selected -> "hardware"
            | Compiler_directed -> "compiler") ) ]
  in
  Obj (("name", String (mechanism_name mech)) :: fields)

let to_json t =
  let open Elag_telemetry.Json in
  Obj
    [ ("issue_width", Int t.issue_width)
    ; ("int_alus", Int t.int_alus)
    ; ("mem_ports", Int t.mem_ports)
    ; ("branch_units", Int t.branch_units)
    ; ("load_latency", Int t.load_latency)
    ; ("mul_latency", Int t.mul_latency)
    ; ("div_latency", Int t.div_latency)
    ; ("miss_penalty", Int t.miss_penalty)
    ; ("icache_bytes", Int t.icache_bytes)
    ; ("dcache_bytes", Int t.dcache_bytes)
    ; ("line_bytes", Int t.line_bytes)
    ; ("cache_ways", Int t.cache_ways)
    ; ("btb_entries", Int t.btb_entries)
    ; ("mispredict_penalty", Int t.mispredict_penalty)
    ; ("mechanism", mechanism_to_json t.mechanism) ]
