(** Machine-readable run reports.

    Assembles the full telemetry of one timing simulation — exact
    configuration (provenance), aggregate statistics, stall-cause
    breakdown, predictor-structure counters, aggregate load-latency
    histogram, and the per-load-site table — into one JSON document or
    a flat CSV.

    Shape guarantees (checked by the golden-file test and the report
    smoke script):
    - [stalls.busy + Σ stalls.<cause> = totals.cycles];
    - the [load_sites] entries' ["count"] fields sum to
      [totals.loads]. *)

val to_json :
  ?meta:(string * Elag_telemetry.Json.t) list -> Pipeline.t ->
  Elag_telemetry.Json.t
(** [meta] fields (workload name, run timestamps, …) are embedded
    verbatim under a ["meta"] key when non-empty. *)

val to_metrics : Pipeline.t -> Elag_telemetry.Metrics.t
(** The same scalars as a metric registry (counters + the aggregate
    latency histogram), for callers that want CSV or incremental
    export rather than the nested document. *)

val to_csv : ?meta:(string * string) list -> Pipeline.t -> string
(** Flat export: a [metric,value] section from {!to_metrics} followed
    by one CSV row per load site. *)
