(** Lowering from the typed MiniC tree ({!Elag_minic.Typed}) to the IR.

    Storage decisions: scalar locals whose address is never taken live
    in virtual registers (the "variable promotion" the paper's
    heuristics depend on); arrays, structs and address-taken scalars
    get frame slots.  Scalar globals are accessed with absolute
    addressing ([Ir.Abs_sym]), which the acyclic classification
    heuristic later keys on. *)

exception Error of { ctx : string; msg : string }
(** Structured lowering failure: [ctx] locates the problem (the
    function being lowered and, when the typed tree carries one, the
    source line), [msg] describes it.  Replaces the bare
    [Invalid_argument] escapes; {!Elag_harness.Compile} re-surfaces it
    as a compile error. *)

val lower_func : Elag_minic.Structs.t -> Elag_minic.Typed.func -> Ir.func

val lower_program : Elag_minic.Typed.program -> Ir.program
(** Lower every function and turn globals, string literals and their
    initializers into {!Ir.data} entries. *)
