(* Lowering from the typed MiniC tree ({!Elag_minic.Typed}) to the IR.

   Storage decisions: scalar locals whose address is never taken live in
   virtual registers (the "variable promotion" the paper's heuristics
   depend on); arrays, structs and address-taken scalars get frame
   slots.  Scalar globals are accessed with absolute addressing
   ([Abs_sym]), which the acyclic classification heuristic later keys
   on. *)

module Ast = Elag_minic.Ast
module Typed = Elag_minic.Typed
module Structs = Elag_minic.Structs
module Insn = Elag_isa.Insn
module Layout = Elag_isa.Layout

exception Error of { ctx : string; msg : string }
(* Structured lowering failure: [ctx] says where (function and, when
   the typed tree provides one, source line), [msg] says what. *)

let () =
  Printexc.register_printer (function
    | Error { ctx; msg } -> Some (Fmt.str "Lower.Error (%s): %s" ctx msg)
    | _ -> None)

let err ~ctx msg = raise (Error { ctx; msg })

type storage = Sreg of Ir.vreg | Sslot of int

type ctx =
  { f : Ir.func
  ; structs : Structs.t
  ; storage : (int, storage) Hashtbl.t  (* local_id -> storage *)
  ; mutable cur_label : string
  ; mutable cur_insts : Ir.inst list  (* reversed *)
  ; mutable finished : Ir.block list  (* reversed *)
  ; mutable terminated : bool
  ; mutable break_labels : string list
  ; mutable continue_labels : string list }

(* Source context for error reporting: the function being lowered and,
   when a typed expression is at hand, its source line. *)
let loc ?line ctx =
  match line with
  | Some l -> Fmt.str "function %s, line %d" ctx.f.Ir.name l
  | None -> Fmt.str "function %s" ctx.f.Ir.name

let emit ctx inst = if not ctx.terminated then ctx.cur_insts <- inst :: ctx.cur_insts

let terminate ctx term =
  if not ctx.terminated then begin
    ctx.finished <-
      { Ir.label = ctx.cur_label; insts = List.rev ctx.cur_insts; term }
      :: ctx.finished;
    ctx.terminated <- true
  end

let start_block ctx label =
  if not ctx.terminated then terminate ctx (Ir.Jmp label);
  ctx.cur_label <- label;
  ctx.cur_insts <- [];
  ctx.terminated <- false

let fresh ctx = Ir.fresh_vreg ctx.f
let fresh_label ctx prefix = Ir.fresh_label ctx.f prefix

(* Force an operand into a virtual register. *)
let as_reg ctx = function
  | Ir.Reg v -> v
  | Ir.Imm n ->
    let v = fresh ctx in
    emit ctx (Ir.Mov (v, Ir.Imm n));
    v

let emit_bin ctx op a b =
  let v = fresh ctx in
  emit ctx (Ir.Bin (op, v, a, b));
  Ir.Reg v

(* Memory size/signedness for accessing a value of the given type.
   MiniC's char is unsigned. *)
let access_of_ty ~ctx:where = function
  | Ast.Tchar -> (Insn.Byte, Insn.Unsigned)
  | Ast.Tint | Ast.Tptr _ -> (Insn.Word, Insn.Signed)
  | ty ->
    err ~ctx:where
      (Fmt.str "cannot access a value of type %a as a scalar" Ast.pp_ty ty)

let size_of ctx ty = Structs.size_of ctx.structs ty

let log2_exact n =
  let rec go k v = if v = n then Some k else if v > n then None else go (k + 1) (v * 2) in
  if n <= 0 then None else go 0 1

(* Scale an index operand by a constant element size. *)
let scale_index ctx idx size =
  if size = 1 then idx
  else
    match idx with
    | Ir.Imm n -> Ir.Imm (n * size)
    | Ir.Reg _ ->
      (match log2_exact size with
      | Some k -> emit_bin ctx Ir.Sll idx (Ir.Imm k)
      | None -> emit_bin ctx Ir.Mul idx (Ir.Imm size))

(* Add a displacement to an address. *)
let offset_address ctx addr extra =
  if extra = 0 then addr
  else
    match addr with
    | Ir.Base (b, d) -> Ir.Base (b, d + extra)
    | Ir.Abs a -> Ir.Abs (a + extra)
    | Ir.Abs_sym (l, d) -> Ir.Abs_sym (l, d + extra)
    | Ir.Base_index (b, i) ->
      let sum = as_reg ctx (emit_bin ctx Ir.Add (Ir.Reg b) (Ir.Reg i)) in
      Ir.Base (sum, extra)

(* Materialize the value of an address (a "load effective address"). *)
let address_value ctx = function
  | Ir.Base (b, 0) -> Ir.Reg b
  | Ir.Base (b, d) -> emit_bin ctx Ir.Add (Ir.Reg b) (Ir.Imm d)
  | Ir.Base_index (b, i) -> emit_bin ctx Ir.Add (Ir.Reg b) (Ir.Reg i)
  | Ir.Abs a -> Ir.Imm a
  | Ir.Abs_sym (l, d) ->
    let v = fresh ctx in
    emit ctx (Ir.Global_addr (v, l));
    if d = 0 then Ir.Reg v else emit_bin ctx Ir.Add (Ir.Reg v) (Ir.Imm d)

(* An assignable/addressable place. *)
type place =
  | Preg of Ir.vreg
  | Pmem of Ir.address * Insn.mem_size * Insn.signedness

let slot_address ctx slot =
  let v = fresh ctx in
  emit ctx (Ir.Slot_addr (v, slot));
  Ir.Base (v, 0)

let cond_of_binop = function
  | Ast.Eq -> Some (Insn.Eq, false)
  | Ast.Ne -> Some (Insn.Ne, false)
  | Ast.Lt -> Some (Insn.Lt, false)
  | Ast.Le -> Some (Insn.Le, false)
  | Ast.Gt -> Some (Insn.Lt, true)  (* a > b  <=>  b < a *)
  | Ast.Ge -> Some (Insn.Le, true)
  | _ -> None

let rec lower_place ctx (e : Typed.expr) : place =
  match e.desc with
  | Typed.Var (Typed.Local l) -> begin
    match Hashtbl.find_opt ctx.storage l.Typed.local_id with
    | Some (Sreg v) -> Preg v
    | Some (Sslot s) ->
      let size, sign =
        match l.Typed.local_ty with
        | (Ast.Tint | Ast.Tchar | Ast.Tptr _) as ty ->
          access_of_ty ~ctx:(loc ~line:e.Typed.line ctx) ty
        | _ -> (Insn.Word, Insn.Signed) (* aggregate; size unused for places *)
      in
      Pmem (slot_address ctx s, size, sign)
    | None ->
      err ~ctx:(loc ~line:e.Typed.line ctx)
        ("reference to local without storage: " ^ l.Typed.local_name)
  end
  | Typed.Var (Typed.Global (name, ty)) ->
    let size, sign =
      match ty with
      | (Ast.Tint | Ast.Tchar | Ast.Tptr _) as ty ->
        access_of_ty ~ctx:(loc ~line:e.Typed.line ctx) ty
      | _ -> (Insn.Word, Insn.Signed)
    in
    Pmem (Ir.Abs_sym (name, 0), size, sign)
  | Typed.Deref p ->
    let addr = lower_to_address ctx p 0 in
    let size, sign =
      match e.ty with
      | (Ast.Tint | Ast.Tchar | Ast.Tptr _) as ty ->
        access_of_ty ~ctx:(loc ~line:e.Typed.line ctx) ty
      | _ -> (Insn.Word, Insn.Signed)
    in
    Pmem (addr, size, sign)
  | Typed.Index (base, idx) ->
    let elem_ty = e.ty in
    let elem_size = size_of ctx elem_ty in
    let size, sign =
      match elem_ty with
      | (Ast.Tint | Ast.Tchar | Ast.Tptr _) as ty ->
        access_of_ty ~ctx:(loc ~line:e.Typed.line ctx) ty
      | _ -> (Insn.Word, Insn.Signed)
    in
    let idx_op = lower_value ctx idx in
    let addr =
      match idx_op with
      | Ir.Imm n -> lower_to_address ctx base (n * elem_size)
      | Ir.Reg _ ->
        let base_addr = lower_to_address ctx base 0 in
        let scaled = scale_index ctx idx_op elem_size in
        (match (base_addr, scaled) with
        | addr, Ir.Imm n -> offset_address ctx addr n
        | Ir.Base (b, 0), Ir.Reg s -> Ir.Base_index (b, s)
        | addr, Ir.Reg s ->
          let bv = as_reg ctx (address_value ctx addr) in
          Ir.Base_index (bv, s))
    in
    Pmem (addr, size, sign)
  | Typed.Field (base, fname) ->
    let sname =
      match base.ty with
      | Ast.Tstruct s -> s
      | ty ->
        err ~ctx:(loc ~line:e.Typed.line ctx)
          (Fmt.str "field access on non-struct value of type %a" Ast.pp_ty ty)
    in
    let field = Structs.field ctx.structs ~struct_name:sname ~field_name:fname in
    let base_addr =
      match lower_place ctx base with
      | Pmem (addr, _, _) -> addr
      | Preg _ ->
        err ~ctx:(loc ~line:e.Typed.line ctx)
          "struct value has register storage; fields need memory"
    in
    let size, sign =
      match field.Structs.field_ty with
      | (Ast.Tint | Ast.Tchar | Ast.Tptr _) as ty ->
        access_of_ty ~ctx:(loc ~line:e.Typed.line ctx) ty
      | _ -> (Insn.Word, Insn.Signed)
    in
    Pmem (offset_address ctx base_addr field.Structs.offset, size, sign)
  | _ ->
    err ~ctx:(loc ~line:e.Typed.line ctx)
      "expression is not assignable (not a place)"

(* Lower a pointer-valued expression to an address with displacement
   [disp], avoiding a materialized add when possible. *)
and lower_to_address ctx (e : Typed.expr) disp : Ir.address =
  match e.desc with
  | Typed.Decay inner -> begin
    (* address of the array lvalue *)
    match lower_place ctx inner with
    | Pmem (addr, _, _) -> offset_address ctx addr disp
    | Preg _ ->
      err ~ctx:(loc ~line:e.Typed.line ctx)
        "array value has register storage; decay needs memory"
  end
  | Typed.Addr_of inner -> begin
    match lower_place ctx inner with
    | Pmem (addr, _, _) -> offset_address ctx addr disp
    | Preg _ ->
      err ~ctx:(loc ~line:e.Typed.line ctx)
        "address taken of a register-resident value"
  end
  | Typed.Binop (Ast.Add, p, i) when is_pointer p.ty && is_intlike i.ty ->
    let elem = pointee_size ctx p.ty in
    let iop = lower_value ctx i in
    (match iop with
    | Ir.Imm n -> lower_to_address ctx p (disp + (n * elem))
    | Ir.Reg _ ->
      let addr = lower_to_address ctx p disp in
      let scaled = scale_index ctx iop elem in
      combine_base_index ctx addr scaled)
  | Typed.Binop (Ast.Add, i, p) when is_pointer p.ty && is_intlike i.ty ->
    lower_to_address ctx { e with desc = Typed.Binop (Ast.Add, p, i) } disp
  | Typed.Binop (Ast.Sub, p, i) when is_pointer p.ty && is_intlike i.ty ->
    let elem = pointee_size ctx p.ty in
    let iop = lower_value ctx i in
    (match iop with
    | Ir.Imm n -> lower_to_address ctx p (disp - (n * elem))
    | Ir.Reg _ ->
      let addr = lower_to_address ctx p disp in
      let scaled = scale_index ctx iop elem in
      let neg = emit_bin ctx Ir.Sub (Ir.Imm 0) scaled in
      combine_base_index ctx addr neg)
  | _ ->
    let v = lower_value ctx e in
    (match v with
    | Ir.Reg r -> Ir.Base (r, disp)
    | Ir.Imm n -> Ir.Abs (n + disp))

and combine_base_index ctx addr scaled =
  match (addr, scaled) with
  | addr, Ir.Imm n -> offset_address ctx addr n
  | Ir.Base (b, 0), Ir.Reg s -> Ir.Base_index (b, s)
  | addr, Ir.Reg s ->
    let bv = as_reg ctx (address_value ctx addr) in
    Ir.Base_index (bv, s)

and is_pointer = function Ast.Tptr _ -> true | _ -> false
and is_intlike = function Ast.Tint | Ast.Tchar -> true | _ -> false

and pointee_size ctx = function
  | Ast.Tptr t -> size_of ctx t
  | ty ->
    err ~ctx:(loc ctx)
      (Fmt.str "pointer arithmetic on non-pointer type %a" Ast.pp_ty ty)

(* Read a place. *)
and read_place ctx = function
  | Preg v -> Ir.Reg v
  | Pmem (addr, size, sign) ->
    let v = fresh ctx in
    emit ctx (Ir.Load { spec = Insn.Ld_n; size; sign; dst = v; addr });
    Ir.Reg v

(* Lower an expression to an operand (rvalue). *)
and lower_value ctx (e : Typed.expr) : Ir.operand =
  match e.desc with
  | Typed.Const n -> Ir.Imm n
  | Typed.Str label ->
    let v = fresh ctx in
    emit ctx (Ir.Global_addr (v, label));
    Ir.Reg v
  | Typed.Var _ | Typed.Index _ | Typed.Field _ | Typed.Deref _ ->
    read_place ctx (lower_place ctx e)
  | Typed.Decay _ | Typed.Addr_of _ ->
    address_value ctx (lower_to_address ctx e 0)
  | Typed.Unop (Ast.Neg, a) ->
    let a = lower_value ctx a in
    (match a with Ir.Imm n -> Ir.Imm (-n) | _ -> emit_bin ctx Ir.Sub (Ir.Imm 0) a)
  | Typed.Unop (Ast.Bnot, a) ->
    let a = lower_value ctx a in
    (match a with Ir.Imm n -> Ir.Imm (lnot n) | _ -> emit_bin ctx Ir.Xor a (Ir.Imm (-1)))
  | Typed.Unop (Ast.Lnot, a) ->
    let a = lower_value ctx a in
    emit_bin ctx Ir.Seq a (Ir.Imm 0)
  | Typed.Binop ((Ast.Land | Ast.Lor), _, _) | Typed.Cond _ ->
    lower_control_value ctx e
  | Typed.Binop (op, a, b) -> lower_binop ctx e.ty op a b
  | Typed.Assign (lhs, rhs) ->
    let place = lower_place ctx lhs in
    let v = lower_value ctx rhs in
    (match place with
    | Preg d ->
      emit ctx (Ir.Mov (d, v));
      Ir.Reg d
    | Pmem (addr, size, _) ->
      emit ctx (Ir.Store { size; src = v; addr });
      v)
  | Typed.Call (callee, args) ->
    let args = List.map (lower_value ctx) args in
    let dst = if e.ty = Ast.Tvoid then None else Some (fresh ctx) in
    emit ctx (Ir.Call { dst; callee; args });
    (match dst with Some d -> Ir.Reg d | None -> Ir.Imm 0)

and lower_binop ctx result_ty op a b =
  match op with
  | Ast.Add | Ast.Sub when is_pointer result_ty ->
    (* pointer arithmetic: produce the address value *)
    let elem = pointee_size ctx result_ty in
    let pe, ie, negate =
      if is_pointer a.Typed.ty then (a, b, op = Ast.Sub) else (b, a, false)
    in
    let pv = lower_value ctx pe in
    let iv = lower_value ctx ie in
    let scaled = scale_index ctx iv elem in
    let irop = if negate then Ir.Sub else Ir.Add in
    (match (pv, scaled) with
    | Ir.Imm p, Ir.Imm i -> Ir.Imm (if negate then p - i else p + i)
    | _ -> emit_bin ctx irop pv scaled)
  | Ast.Sub when is_pointer a.Typed.ty && is_pointer b.Typed.ty ->
    let elem = pointee_size ctx a.Typed.ty in
    let av = lower_value ctx a in
    let bv = lower_value ctx b in
    let diff = emit_bin ctx Ir.Sub av bv in
    if elem = 1 then diff
    else (
      match log2_exact elem with
      | Some k -> emit_bin ctx Ir.Sra diff (Ir.Imm k)
      | None -> emit_bin ctx Ir.Div diff (Ir.Imm elem))
  | _ ->
    let av = lower_value ctx a in
    let bv = lower_value ctx b in
    let simple irop = emit_bin ctx irop av bv in
    (match op with
    | Ast.Add -> simple Ir.Add
    | Ast.Sub -> simple Ir.Sub
    | Ast.Mul -> simple Ir.Mul
    | Ast.Div -> simple Ir.Div
    | Ast.Rem -> simple Ir.Rem
    | Ast.Shl -> simple Ir.Sll
    | Ast.Shr -> simple Ir.Sra
    | Ast.Band -> simple Ir.And
    | Ast.Bor -> simple Ir.Or
    | Ast.Bxor -> simple Ir.Xor
    | Ast.Eq -> simple Ir.Seq
    | Ast.Ne -> simple Ir.Sne
    | Ast.Lt -> simple Ir.Slt
    | Ast.Le -> simple Ir.Sle
    | Ast.Gt -> emit_bin ctx Ir.Slt bv av
    | Ast.Ge -> emit_bin ctx Ir.Sle bv av
    | Ast.Land | Ast.Lor -> assert false)

(* Short-circuit expressions and ?: as control flow into a result vreg. *)
and lower_control_value ctx (e : Typed.expr) =
  let result = fresh ctx in
  let done_l = fresh_label ctx "val_done" in
  (match e.desc with
  | Typed.Cond (c, t, f) ->
    let then_l = fresh_label ctx "cond_t" and else_l = fresh_label ctx "cond_f" in
    lower_branch ctx c ~ifso:then_l ~ifnot:else_l;
    start_block ctx then_l;
    let tv = lower_value ctx t in
    emit ctx (Ir.Mov (result, tv));
    terminate ctx (Ir.Jmp done_l);
    start_block ctx else_l;
    let fv = lower_value ctx f in
    emit ctx (Ir.Mov (result, fv));
    terminate ctx (Ir.Jmp done_l)
  | _ ->
    let true_l = fresh_label ctx "bool_t" and false_l = fresh_label ctx "bool_f" in
    lower_branch ctx e ~ifso:true_l ~ifnot:false_l;
    start_block ctx true_l;
    emit ctx (Ir.Mov (result, Ir.Imm 1));
    terminate ctx (Ir.Jmp done_l);
    start_block ctx false_l;
    emit ctx (Ir.Mov (result, Ir.Imm 0));
    terminate ctx (Ir.Jmp done_l));
  start_block ctx done_l;
  Ir.Reg result

(* Lower a boolean expression as a conditional branch. *)
and lower_branch ctx (e : Typed.expr) ~ifso ~ifnot =
  match e.desc with
  | Typed.Binop (Ast.Land, a, b) ->
    let mid = fresh_label ctx "and" in
    lower_branch ctx a ~ifso:mid ~ifnot;
    start_block ctx mid;
    lower_branch ctx b ~ifso ~ifnot
  | Typed.Binop (Ast.Lor, a, b) ->
    let mid = fresh_label ctx "or" in
    lower_branch ctx a ~ifso ~ifnot:mid;
    start_block ctx mid;
    lower_branch ctx b ~ifso ~ifnot
  | Typed.Unop (Ast.Lnot, a) -> lower_branch ctx a ~ifso:ifnot ~ifnot:ifso
  | Typed.Binop (op, a, b) when cond_of_binop op <> None ->
    let cond, swap =
      match cond_of_binop op with Some c -> c | None -> assert false
    in
    let av = lower_value ctx a in
    let bv = lower_value ctx b in
    let src1, src2 = if swap then (bv, av) else (av, bv) in
    terminate ctx (Ir.Br { cond; src1; src2; ifso; ifnot })
  | Typed.Const 0 -> terminate ctx (Ir.Jmp ifnot)
  | Typed.Const _ -> terminate ctx (Ir.Jmp ifso)
  | _ ->
    let v = lower_value ctx e in
    terminate ctx (Ir.Br { cond = Insn.Ne; src1 = v; src2 = Ir.Imm 0; ifso; ifnot })

(* --- statements ------------------------------------------------------ *)

let rec lower_stmt ctx (s : Typed.stmt) =
  match s with
  | Typed.Sexpr e -> ignore (lower_value ctx e)
  | Typed.Sdecl (local, init) -> begin
    match init with
    | None -> ()
    | Some e ->
      let v = lower_value ctx e in
      (match Hashtbl.find_opt ctx.storage local.Typed.local_id with
      | Some (Sreg d) -> emit ctx (Ir.Mov (d, v))
      | Some (Sslot slot) ->
        let size, sign =
          access_of_ty ~ctx:(loc ~line:e.Typed.line ctx) local.Typed.local_ty
        in
        ignore sign;
        emit ctx (Ir.Store { size; src = v; addr = slot_address ctx slot })
      | None ->
        err ~ctx:(loc ~line:e.Typed.line ctx)
          ("initializer for local without storage: " ^ local.Typed.local_name))
  end
  | Typed.Sif (c, t, f) ->
    let then_l = fresh_label ctx "then" in
    let else_l = fresh_label ctx "else" in
    let end_l = fresh_label ctx "endif" in
    lower_branch ctx c ~ifso:then_l ~ifnot:(if f = [] then end_l else else_l);
    start_block ctx then_l;
    List.iter (lower_stmt ctx) t;
    terminate ctx (Ir.Jmp end_l);
    if f <> [] then begin
      start_block ctx else_l;
      List.iter (lower_stmt ctx) f;
      terminate ctx (Ir.Jmp end_l)
    end;
    start_block ctx end_l
  | Typed.Sblock body -> List.iter (lower_stmt ctx) body
  | Typed.Sloop { cond; body; step; post_test } ->
    let head_l = fresh_label ctx "loop_head" in
    let body_l = fresh_label ctx "loop_body" in
    let step_l = if step = [] then head_l else fresh_label ctx "loop_step" in
    let exit_l = fresh_label ctx "loop_exit" in
    ctx.break_labels <- exit_l :: ctx.break_labels;
    ctx.continue_labels <- step_l :: ctx.continue_labels;
    if post_test then terminate ctx (Ir.Jmp body_l)
    else terminate ctx (Ir.Jmp head_l);
    start_block ctx head_l;
    lower_branch ctx cond ~ifso:body_l ~ifnot:exit_l;
    start_block ctx body_l;
    List.iter (lower_stmt ctx) body;
    if step <> [] then begin
      terminate ctx (Ir.Jmp step_l);
      start_block ctx step_l;
      List.iter (lower_stmt ctx) step
    end;
    terminate ctx (Ir.Jmp head_l);
    ctx.break_labels <- List.tl ctx.break_labels;
    ctx.continue_labels <- List.tl ctx.continue_labels;
    start_block ctx exit_l
  | Typed.Sreturn e ->
    let op = Option.map (lower_value ctx) e in
    terminate ctx (Ir.Ret op)
  | Typed.Sbreak -> begin
    match ctx.break_labels with
    | l :: _ -> terminate ctx (Ir.Jmp l)
    | [] -> err ~ctx:(loc ctx) "break outside of any loop"
  end
  | Typed.Scontinue -> begin
    match ctx.continue_labels with
    | l :: _ -> terminate ctx (Ir.Jmp l)
    | [] -> err ~ctx:(loc ctx) "continue outside of any loop"
  end

(* --- functions and programs ------------------------------------------ *)

let needs_slot (l : Typed.local) =
  l.Typed.addr_taken
  ||
  match l.Typed.local_ty with
  | Ast.Tarray _ | Ast.Tstruct _ -> true
  | _ -> false

let lower_func structs (tf : Typed.func) : Ir.func =
  let f =
    { Ir.name = tf.Typed.name
    ; params = []
    ; blocks = []
    ; slots = []
    ; next_vreg = 0
    ; next_label = 0 }
  in
  let ctx =
    { f
    ; structs
    ; storage = Hashtbl.create 16
    ; cur_label = tf.Typed.name ^ ".entry"
    ; cur_insts = []
    ; finished = []
    ; terminated = false
    ; break_labels = []
    ; continue_labels = [] }
  in
  (* Parameters arrive in fresh vregs, in order. *)
  let param_vregs = List.map (fun _ -> fresh ctx) tf.Typed.params in
  (* Assign storage for every local. *)
  List.iter
    (fun (l : Typed.local) ->
      if needs_slot l then begin
        let size = Structs.size_of structs l.Typed.local_ty in
        let align = Structs.align_of structs l.Typed.local_ty in
        let slot = Ir.add_slot f ~size:(max size 1) ~align in
        Hashtbl.replace ctx.storage l.Typed.local_id (Sslot slot)
      end
      else if Typed.is_scalar l.Typed.local_ty then
        Hashtbl.replace ctx.storage l.Typed.local_id (Sreg (fresh ctx)))
    tf.Typed.locals;
  (* Copy register parameters into their storage. *)
  List.iter2
    (fun (l : Typed.local) pv ->
      match Hashtbl.find_opt ctx.storage l.Typed.local_id with
      | Some (Sreg d) -> emit ctx (Ir.Mov (d, Ir.Reg pv))
      | Some (Sslot slot) ->
        let size, _ = access_of_ty ~ctx:(loc ctx) l.Typed.local_ty in
        emit ctx (Ir.Store { size; src = Ir.Reg pv; addr = slot_address ctx slot })
      | None -> ())
    tf.Typed.params param_vregs;
  List.iter (lower_stmt ctx) tf.Typed.body;
  (* Implicit return. *)
  if not ctx.terminated then
    terminate ctx
      (Ir.Ret (if tf.Typed.return_ty = Ast.Tvoid then None else Some (Ir.Imm 0)));
  f.Ir.params <- param_vregs;
  f.Ir.blocks <- List.rev ctx.finished;
  f

let global_data structs (name, ty, init) : Ir.data =
  let size = Structs.size_of structs ty in
  let align = Structs.align_of structs ty in
  let pad_words ws n =
    let have = List.length ws in
    if have >= n then List.filteri (fun i _ -> i < n) ws
    else ws @ List.init (n - have) (fun _ -> 0)
  in
  let data_init =
    match (init, ty) with
    | None, _ -> Layout.Zeros (max size 1)
    | Some (Ast.Init_int n), Ast.Tchar -> Layout.Bytes (String.make 1 (Char.chr (n land 0xff)))
    | Some (Ast.Init_int n), _ -> Layout.Words [ n ]
    | Some (Ast.Init_list ws), Ast.Tarray (Ast.Tchar, n) ->
      let bytes = List.map (fun w -> Char.chr (w land 0xff)) ws in
      let s = String.init n (fun i ->
        match List.nth_opt bytes i with Some c -> c | None -> '\000')
      in
      Layout.Bytes s
    | Some (Ast.Init_list ws), Ast.Tarray (_, n) -> Layout.Words (pad_words ws n)
    | Some (Ast.Init_list ws), _ -> Layout.Words ws
    | Some (Ast.Init_string s), Ast.Tarray (Ast.Tchar, n) ->
      let str = String.init n (fun i ->
        if i < String.length s then s.[i] else '\000')
      in
      Layout.Bytes str
    | Some (Ast.Init_string s), _ -> Layout.Bytes (s ^ "\000")
  in
  { Ir.data_label = name; data_align = align; data_init }

let lower_program (tp : Typed.program) : Ir.program =
  let data =
    List.map (global_data tp.Typed.structs) tp.Typed.globals
    @ List.map
        (fun (label, contents) ->
          { Ir.data_label = label; data_align = 1; data_init = Layout.Bytes (contents ^ "\000") })
        tp.Typed.strings
  in
  { Ir.data; funcs = List.map (lower_func tp.Typed.structs) tp.Typed.funcs }
