(* Fixed-bucket integer histogram.  Buckets are upper-bound inclusive:
   value v lands in the first bucket whose bound >= v, or in the
   implicit overflow bucket past the last bound. *)

type t =
  { bounds : int array
  ; counts : int array  (* length = Array.length bounds + 1; last = overflow *)
  ; mutable total : int
  ; mutable sum : int
  ; mutable max_seen : int }

let create ~bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Histogram.create: empty bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Histogram.create: bounds must be strictly increasing"
  done;
  { bounds = Array.copy bounds
  ; counts = Array.make (n + 1) 0
  ; total = 0
  ; sum = 0
  ; max_seen = min_int }

let load_latency_bounds = [| 0; 1; 2; 3; 4; 8; 16; 32; 64 |]

(* index of the first bound >= v, or n (overflow) *)
let bucket_index t v =
  let n = Array.length t.bounds in
  if v > t.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe t v =
  t.counts.(bucket_index t v) <- t.counts.(bucket_index t v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.total
let sum t = t.sum
let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total
let max_seen t = if t.total = 0 then None else Some t.max_seen

let bucket_counts t =
  let n = Array.length t.bounds in
  List.init (n + 1) (fun i ->
      ((if i < n then Some t.bounds.(i) else None), t.counts.(i)))

let percentile t p =
  if t.total = 0 then None
  else begin
    let threshold = p /. 100. *. float_of_int t.total in
    let n = Array.length t.bounds in
    let rec scan i cum =
      if i > n then Some t.max_seen
      else
        let cum = cum + t.counts.(i) in
        if float_of_int cum >= threshold && cum > 0 then
          if i < n then Some (min t.bounds.(i) t.max_seen) else Some t.max_seen
        else scan (i + 1) cum
    in
    scan 0 0
  end

let to_json t =
  let buckets =
    List.filter_map
      (fun (bound, c) ->
        if c = 0 then None
        else
          let le =
            match bound with Some b -> Json.Int b | None -> Json.String "inf"
          in
          Some (Json.Obj [ ("le", le); ("count", Json.Int c) ]))
      (bucket_counts t)
  in
  Json.Obj
    [ ("count", Json.Int t.total)
    ; ("sum", Json.Int t.sum)
    ; ("max", if t.total = 0 then Json.Null else Json.Int t.max_seen)
    ; ("buckets", Json.List buckets) ]
