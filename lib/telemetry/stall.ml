(* Stall-cause taxonomy shared by the pipeline's attribution logic and
   the report emitters. *)

type t =
  | Load_use
  | Dcache_miss
  | Icache_miss
  | Btb_mispredict
  | Port_contention
  | Raw_dependence

let all =
  [ Load_use; Dcache_miss; Icache_miss; Btb_mispredict; Port_contention
  ; Raw_dependence ]

let cardinal = List.length all

let index = function
  | Load_use -> 0
  | Dcache_miss -> 1
  | Icache_miss -> 2
  | Btb_mispredict -> 3
  | Port_contention -> 4
  | Raw_dependence -> 5

let name = function
  | Load_use -> "load-use"
  | Dcache_miss -> "dcache-miss"
  | Icache_miss -> "icache-miss"
  | Btb_mispredict -> "btb-mispredict"
  | Port_contention -> "port-contention"
  | Raw_dependence -> "raw-dependence"

let of_name s = List.find_opt (fun c -> name c = s) all
