(* Chrome trace_event exporter.  Events are buffered in reverse and
   emitted in record order inside the standard envelope. *)

type event =
  { name : string
  ; cat : string
  ; ts : int
  ; dur : int
  ; tid : int
  ; args : (string * Json.t) list }

type t =
  { process_name : string
  ; mutable thread_names : (int * string) list
  ; mutable rev_events : event list
  ; mutable count : int }

let create ?(process_name = "elag-sim") () =
  { process_name; thread_names = []; rev_events = []; count = 0 }

let set_thread_name t ~tid name =
  t.thread_names <- (tid, name) :: List.remove_assoc tid t.thread_names

let complete t ~name ?(cat = "sim") ~ts ~dur ?(tid = 0) ?(args = []) () =
  t.rev_events <- { name; cat; ts; dur = max 1 dur; tid; args } :: t.rev_events;
  t.count <- t.count + 1

let events t = t.count

let metadata_json ~name ~tid fields =
  Json.Obj
    ([ ("name", Json.String name)
     ; ("ph", Json.String "M")
     ; ("pid", Json.Int 0)
     ; ("tid", Json.Int tid)
     ; ("args", Json.Obj fields) ])

let event_json e =
  Json.Obj
    ([ ("name", Json.String e.name)
     ; ("cat", Json.String e.cat)
     ; ("ph", Json.String "X")
     ; ("ts", Json.Int e.ts)
     ; ("dur", Json.Int e.dur)
     ; ("pid", Json.Int 0)
     ; ("tid", Json.Int e.tid) ]
    @ if e.args = [] then [] else [ ("args", Json.Obj e.args) ])

let to_json t =
  let metadata =
    metadata_json ~name:"process_name" ~tid:0
      [ ("name", Json.String t.process_name) ]
    :: List.rev_map
         (fun (tid, name) ->
           metadata_json ~name:"thread_name" ~tid [ ("name", Json.String name) ])
         t.thread_names
  in
  Json.Obj
    [ ("traceEvents", Json.List (metadata @ List.rev_map event_json t.rev_events))
    ; ("displayTimeUnit", Json.String "ms") ]

let write t oc = Json.output oc (to_json t)
