(** Fixed-bucket integer histogram for latency-shaped distributions.

    Buckets are cumulative-upper-bound style: a histogram created with
    bounds [|0; 1; 2; 4|] has buckets (-inf,0], (0,1], (1,2], (2,4]
    plus an implicit overflow bucket (4,+inf).  Bucketing is O(log n)
    and observation never allocates, so it is safe inside the
    per-retired-instruction path of the timing simulator. *)

type t

val create : bounds:int array -> t
(** [bounds] must be strictly increasing and non-empty; raises
    [Invalid_argument] otherwise.  The array is copied. *)

val load_latency_bounds : int array
(** The standard bucket layout for load latencies: 0 (successful
    [ld_e]), 1 (successful [ld_p]), 2, 3, 4, 8, 16, 32, 64 cycles. *)

val observe : t -> int -> unit

val count : t -> int

val sum : t -> int

val mean : t -> float
(** 0.0 when empty. *)

val max_seen : t -> int option

val bucket_counts : t -> (int option * int) list
(** [(Some upper_bound, count)] per bucket in order, the final
    [(None, count)] being the overflow bucket. *)

val percentile : t -> float -> int option
(** [percentile t p] (p in [0,100]): the smallest bucket upper bound
    such that at least p% of observations fall at or below it; the
    maximum observed value when that lands in the overflow bucket;
    [None] when empty. *)

val to_json : t -> Json.t
(** [{"count";"sum";"max";"buckets":[{"le";"count"},...]}]; overflow
    bucket has ["le": "inf"]; empty buckets are elided to keep per-site
    reports small. *)
