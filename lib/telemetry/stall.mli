(** Stall-cause taxonomy for the in-order pipeline.

    Every non-issuing cycle of a timing simulation is charged to
    exactly one cause, so that [busy + Σ stalls = cycles] holds by
    construction (the report acceptance invariant).  Attribution
    charges the *binding* constraint: the latest of the limits that
    kept the next instruction from issuing. *)

type t =
  | Load_use  (** waiting on a load's value (the Figure 1a stall) *)
  | Dcache_miss  (** waiting on a load whose access missed the D-cache *)
  | Icache_miss
      (** front end refilling after an I-cache miss; pipeline-fill
          cycles at startup are folded in here, since the first fetch
          is always a cold miss *)
  | Btb_mispredict  (** front-end refill after a branch mispredict *)
  | Port_contention
      (** a ready memory operation waiting for a free data-cache port
          (including ports held by wasted speculative accesses) *)
  | Raw_dependence
      (** waiting on a non-load producer (ALU / multiply / divide) *)

val all : t list
(** Every cause, in canonical report order. *)

val cardinal : int

val index : t -> int
(** Dense index into [0, cardinal). *)

val name : t -> string
(** Kebab-case metric name, e.g. ["load-use"]. *)

val of_name : string -> t option
