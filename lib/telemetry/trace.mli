(** Chrome [trace_event] exporter (the about:tracing / Perfetto JSON
    format).

    Collects complete ("ph":"X") events plus thread-name metadata and
    writes the standard [{"traceEvents": [...]}] envelope.  Timestamps
    are in the trace's native microsecond unit; the simulator maps one
    pipeline cycle to one microsecond so cycle numbers read directly
    off the about:tracing ruler. *)

type t

val create : ?process_name:string -> unit -> t

val set_thread_name : t -> tid:int -> string -> unit
(** Emit a thread-name metadata record (once per tid; repeated calls
    overwrite). *)

val complete :
  t ->
  name:string ->
  ?cat:string ->
  ts:int ->
  dur:int ->
  ?tid:int ->
  ?args:(string * Json.t) list ->
  unit ->
  unit
(** Record a complete event covering [ts, ts + dur).  [dur] is clamped
    to at least 1 so zero-latency events stay visible. *)

val events : t -> int

val to_json : t -> Json.t

val write : t -> out_channel -> unit
