(** Minimal JSON tree, serializer and parser for telemetry artifacts.

    Construction and deterministic printing (objects keep insertion
    order, floats print with enough precision to round-trip, strings
    are escaped per RFC 8259), plus a small recursive-descent parser:
    fuzz-corpus entries are JSON metadata files that must be read back
    to replay a repro from its seed, so reports are no longer a
    write-only format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default false) indents with two spaces. *)

val output : ?pretty:bool -> out_channel -> t -> unit

val escape : string -> string
(** The quoted, escaped form of a string literal. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a one-line message
    with the byte offset.  Round-trips everything {!to_string} emits
    (integers stay [Int]; numbers with a fraction or exponent, or too
    wide for OCaml's [int], become [Float]). *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_int : t -> int option

val to_str : t -> string option
