(** Minimal JSON tree and serializer for telemetry reports.

    Only what the emitters need: construction and deterministic
    printing (objects keep insertion order, floats print with enough
    precision to round-trip, strings are escaped per RFC 8259).  No
    parser — reports are written, not read, by this repository. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default false) indents with two spaces. *)

val output : ?pretty:bool -> out_channel -> t -> unit

val escape : string -> string
(** The quoted, escaped form of a string literal. *)
