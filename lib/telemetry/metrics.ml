(* Metric registry: named counters and fixed-bucket histograms,
   emitted together as JSON or CSV.  Registration order is preserved
   so emitted reports are deterministic. *)

type counter = { mutable c_value : int }

type metric =
  | Counter of counter * string option  (* help *)
  | Hist of Histogram.t * string option

type t =
  { mutable order : string list  (* reverse registration order *)
  ; metrics : (string, metric) Hashtbl.t }

let create () = { order = []; metrics = Hashtbl.create 32 }

let register t name metric =
  Hashtbl.replace t.metrics name metric;
  t.order <- name :: t.order

let counter t ?help name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter (c, _)) -> c
  | Some (Hist _) ->
    invalid_arg (Printf.sprintf "Metrics.counter: %s is a histogram" name)
  | None ->
    let c = { c_value = 0 } in
    register t name (Counter (c, help));
    c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set c v = c.c_value <- v
let value c = c.c_value

let histogram t ?help ~bounds name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Hist (h, _)) -> h
  | Some (Counter _) ->
    invalid_arg (Printf.sprintf "Metrics.histogram: %s is a counter" name)
  | None ->
    let h = Histogram.create ~bounds in
    register t name (Hist (h, help));
    h

let attach_histogram t ?help name h =
  if not (Hashtbl.mem t.metrics name) then t.order <- name :: t.order;
  Hashtbl.replace t.metrics name (Hist (h, help))

let find_counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter (c, _)) -> Some c
  | _ -> None

let in_order t =
  List.rev_map (fun name -> (name, Hashtbl.find t.metrics name)) t.order

let to_json t =
  let counters, hists =
    List.fold_left
      (fun (cs, hs) (name, metric) ->
        match metric with
        | Counter (c, _) -> ((name, Json.Int c.c_value) :: cs, hs)
        | Hist (h, _) -> (cs, (name, Histogram.to_json h) :: hs))
      ([], []) (List.rev (in_order t))
  in
  Json.Obj [ ("counters", Json.Obj counters); ("histograms", Json.Obj hists) ]

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "metric,value\n";
  List.iter
    (fun (name, metric) ->
      match metric with
      | Counter (c, _) -> Buffer.add_string buf (Printf.sprintf "%s,%d\n" name c.c_value)
      | Hist (h, _) ->
        List.iter
          (fun (bound, count) ->
            if count > 0 then
              let le =
                match bound with Some b -> string_of_int b | None -> "inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket_le_%s,%d\n" name le count))
          (Histogram.bucket_counts h))
    (in_order t);
  Buffer.contents buf
