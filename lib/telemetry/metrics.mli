(** Metric registry: named counters and histograms with machine-
    readable emitters.

    A registry is the unit of export — whoever owns one registers
    metrics up front (or on first use), mutates them on the hot path,
    and emits the whole set as JSON or CSV at the end of a run.
    Registration order is preserved in the output, so reports are
    deterministic and diffable. *)

type t

type counter

val create : unit -> t

val counter : t -> ?help:string -> string -> counter
(** Register (or look up) a counter by name.  Registering the same
    name twice returns the same counter; a name already used by a
    histogram raises [Invalid_argument]. *)

val incr : ?by:int -> counter -> unit

val set : counter -> int -> unit

val value : counter -> int

val histogram : t -> ?help:string -> bounds:int array -> string -> Histogram.t
(** Register (or look up) a histogram by name.  [bounds] is ignored on
    lookup of an existing histogram. *)

val attach_histogram : t -> ?help:string -> string -> Histogram.t -> unit
(** Register an externally-owned histogram (e.g. one maintained on the
    simulator hot path) under [name], replacing any previous metric of
    that name. *)

val find_counter : t -> string -> counter option

val to_json : t -> Json.t
(** [{"counters": {...}, "histograms": {...}}]. *)

val to_csv : t -> string
(** One [metric,value] line per counter, then one
    [metric_bucket_le,count] line per non-empty histogram bucket. *)
