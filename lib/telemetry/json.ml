(* Minimal JSON tree and serializer for telemetry reports.  Objects
   preserve insertion order so emitted reports are deterministic and
   diffable (the golden-file test depends on this). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no NaN/Infinity; clamp to null like most emitters do. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else if Float.is_integer f then Some (Printf.sprintf "%.1f" f)
  else Some (Printf.sprintf "%.12g" f)

let rec write ~pretty ~indent buf v =
  let nl pad =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make pad ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    Buffer.add_string buf (match float_repr f with Some s -> s | None -> "null")
  | String s -> Buffer.add_string buf (escape s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (indent + 2);
        write ~pretty ~indent:(indent + 2) buf item)
      items;
    nl indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (indent + 2);
        Buffer.add_string buf (escape k);
        Buffer.add_char buf ':';
        if pretty then Buffer.add_char buf ' ';
        write ~pretty ~indent:(indent + 2) buf item)
      fields;
    nl indent;
    Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  write ~pretty ~indent:0 buf v;
  Buffer.contents buf

let output ?pretty oc v =
  output_string oc (to_string ?pretty v);
  output_char oc '\n'
