(* Minimal JSON tree and serializer for telemetry reports.  Objects
   preserve insertion order so emitted reports are deterministic and
   diffable (the golden-file test depends on this). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no NaN/Infinity; clamp to null like most emitters do. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else if Float.is_integer f then Some (Printf.sprintf "%.1f" f)
  else Some (Printf.sprintf "%.12g" f)

let rec write ~pretty ~indent buf v =
  let nl pad =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make pad ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    Buffer.add_string buf (match float_repr f with Some s -> s | None -> "null")
  | String s -> Buffer.add_string buf (escape s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (indent + 2);
        write ~pretty ~indent:(indent + 2) buf item)
      items;
    nl indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (indent + 2);
        Buffer.add_string buf (escape k);
        Buffer.add_char buf ':';
        if pretty then Buffer.add_char buf ' ';
        write ~pretty ~indent:(indent + 2) buf item)
      fields;
    nl indent;
    Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  write ~pretty ~indent:0 buf v;
  Buffer.contents buf

let output ?pretty oc v =
  output_string oc (to_string ?pretty v);
  output_char oc '\n'

(* --- parsing ----------------------------------------------------------- *)

(* Recursive-descent parser over exactly the subset the serializer
   emits (plus scientific-notation floats).  Reports were historically
   write-only; the fuzz corpus made them an input format too — every
   corpus entry is a JSON metadata file that must be read back to
   replay the repro from its seed. *)

exception Parse_error of { pos : int; msg : string }

type parser_state = { src : string; mutable pos : int }

let error p msg = raise (Parse_error { pos = p.pos; msg })

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance p;
    skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> error p (Printf.sprintf "expected '%c'" c)

let literal p word v =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    v
  end
  else error p ("expected " ^ word)

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> error p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
      advance p;
      match peek p with
      | Some '"' -> advance p; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance p; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance p; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance p; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance p; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance p; Buffer.add_char buf '\t'; go ()
      | Some 'b' -> advance p; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance p; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance p;
        if p.pos + 4 > String.length p.src then error p "truncated \\u escape";
        let hex = String.sub p.src p.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | None -> error p "bad \\u escape"
        | Some code ->
          p.pos <- p.pos + 4;
          (* the escaper only emits \u00xx control codes; decode the
             BMP range as UTF-8 so round-trips of foreign input hold *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ())
      | _ -> error p "bad escape")
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let rec go () =
    match peek p with
    | Some ('0' .. '9' | '-' | '+') -> advance p; go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance p;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error p ("bad number " ^ text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* integer literal wider than OCaml's int: keep the value *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error p ("bad number " ^ text))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> error p "unexpected end of input"
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '"' -> String (parse_string_body p)
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let items = ref [ parse_value p ] in
      let rec go () =
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          items := parse_value p :: !items;
          go ()
        | Some ']' -> advance p
        | _ -> error p "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let field () =
        skip_ws p;
        let k = parse_string_body p in
        skip_ws p;
        expect p ':';
        (k, parse_value p)
      in
      let fields = ref [ field () ] in
      let rec go () =
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields := field () :: !fields;
          go ()
        | Some '}' -> advance p
        | _ -> error p "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some c -> error p (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
    skip_ws p;
    if p.pos <> String.length s then
      Error (Printf.sprintf "trailing input at offset %d" p.pos)
    else Ok v
  | exception Parse_error { pos; msg } ->
    Error (Printf.sprintf "%s at offset %d" msg pos)

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function String s -> Some s | _ -> None
