(* Static EPA-32 lint: structural checks that every compiled or
   hand-assembled artifact must pass before it is worth simulating. *)

module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Program = Elag_isa.Program
module Json = Elag_telemetry.Json

type issue = { pc : int option; rule : string; detail : string }

type report = { checked : int; issues : issue list }

let ok r = r.issues = []

exception Rejected of report

let code_issue issues pc rule detail =
  issues := { pc = Some pc; rule; detail } :: !issues

let data_issue issues rule detail = issues := { pc = None; rule; detail } :: !issues

let check_registers issues pc insn =
  let bad kind r =
    code_issue issues pc "register-invalid"
      (Fmt.str "%s register %d out of range (0..%d)" kind r (Reg.count - 1))
  in
  List.iter (fun r -> if not (Reg.is_valid r) then bad "source" r) (Insn.uses insn);
  List.iter (fun r -> if not (Reg.is_valid r) then bad "destination" r) (Insn.defs insn)

let check_control issues program len pc insn =
  match insn with
  | Insn.Branch _ | Insn.Jump _ | Insn.Jal _ ->
    let target = Program.target program pc in
    if target < 0 || target >= len then
      code_issue issues pc "control-target"
        (Fmt.str "static target %d outside code segment [0, %d)" target len)
  | _ -> ()

let check_load issues memory_size pc insn =
  match insn with
  | Insn.Load { spec; size; addr; _ } -> (
    (match (spec, addr) with
    | Insn.Ld_e, Insn.Base_offset (base, _) ->
      if base = Reg.zero then
        code_issue issues pc "ld_e-binding"
          "ld_e base is r0: R_addr cannot bind the zero register \
           (the address is static; use ld_n with absolute addressing)"
    | Insn.Ld_e, (Insn.Base_index _ | Insn.Absolute _) ->
      code_issue issues pc "ld_e-binding"
        (Fmt.str "ld_e requires register+offset addressing, got %a"
           Insn.pp_addr_mode addr)
    | (Insn.Ld_n | Insn.Ld_p), _ -> ());
    match addr with
    | Insn.Absolute a ->
      let n = Insn.size_bytes size in
      if a < 0 || a + n > memory_size then
        code_issue issues pc "absolute-bounds"
          (Fmt.str "absolute load of %d bytes at %d outside memory of %d"
             n a memory_size)
    | _ -> ())
  | Insn.Store { size; addr = Insn.Absolute a; _ } ->
    let n = Insn.size_bytes size in
    if a < 0 || a + n > memory_size then
      code_issue issues pc "absolute-bounds"
        (Fmt.str "absolute store of %d bytes at %d outside memory of %d" n a
           memory_size)
  | _ -> ()

let check_data issues memory_size program =
  List.iter
    (fun (addr, bytes) ->
      let n = String.length bytes in
      if addr < 0 || addr + n > memory_size then
        data_issue issues "data-bounds"
          (Fmt.str "data region [%d, %d) outside memory of %d" addr (addr + n)
             memory_size))
    (Program.data_image program);
  let hb = Program.heap_base program in
  if hb < 0 || hb > memory_size then
    data_issue issues "heap-bounds"
      (Fmt.str "heap base %d outside memory of %d" hb memory_size)

let check ?(memory_size = Elag_sim.Memory.default_size) program =
  let len = Program.length program in
  let issues = ref [] in
  let entry = Program.entry program in
  if entry < 0 || entry >= len then
    data_issue issues "entry-point"
      (Fmt.str "entry point %d outside code segment [0, %d)" entry len);
  for pc = 0 to len - 1 do
    let insn = Program.insn program pc in
    check_registers issues pc insn;
    check_control issues program len pc insn;
    check_load issues memory_size pc insn
  done;
  check_data issues memory_size program;
  { checked = len; issues = List.rev !issues }

let enforce ?memory_size program =
  let r = check ?memory_size program in
  if not (ok r) then raise (Rejected r)

let pp_issue ppf i =
  match i.pc with
  | Some pc -> Fmt.pf ppf "pc %d: %s: %s" pc i.rule i.detail
  | None -> Fmt.pf ppf "%s: %s" i.rule i.detail

let pp ppf r =
  if ok r then Fmt.pf ppf "lint: ok (%d instructions)" r.checked
  else begin
    Fmt.pf ppf "lint: %d issue%s in %d instructions"
      (List.length r.issues)
      (if List.length r.issues = 1 then "" else "s")
      r.checked;
    List.iter (fun i -> Fmt.pf ppf "@,  %a" pp_issue i) r.issues
  end

let to_json r =
  Json.Obj
    [ ("ok", Json.Bool (ok r))
    ; ("checked", Json.Int r.checked)
    ; ( "issues"
      , Json.List
          (List.map
             (fun i ->
               Json.Obj
                 [ ( "pc"
                   , match i.pc with Some pc -> Json.Int pc | None -> Json.Null
                   )
                 ; ("rule", Json.String i.rule)
                 ; ("detail", Json.String i.detail) ])
             r.issues) ) ]

let () =
  Printexc.register_printer (function
    | Rejected r ->
      Some
        (Fmt.str "Lint.Rejected: %d issue(s), first: %a"
           (List.length r.issues)
           Fmt.(option pp_issue)
           (match r.issues with [] -> None | i :: _ -> Some i))
    | _ -> None)
