(** Small deterministic PRNG (xorshift64*-style, folded to OCaml's
    positive [int] range) for seeded fault plans.

    Fault injection must be reproducible forever — the whole point of
    the suite is that a plan that passes today pins the behaviour — so
    nothing in {!Elag_verify} may touch [Random.self_init] or the
    global [Random] state.  Every plan carries its own seed and draws
    from its own generator. *)

type t

val create : int -> t
(** Seeded generator; any seed (including 0) is usable. *)

val next : t -> int
(** Next raw positive value (uniform over [0, max_int]). *)

val int : t -> int -> int
(** [int t n] in [0, n); raises [Invalid_argument] when [n <= 0]. *)

val bool : t -> bool
