(** Small deterministic PRNG (xorshift64*-style, folded to OCaml's
    positive [int] range) for seeded fault plans and fuzzing streams.

    Fault injection and fuzz campaigns must be reproducible forever —
    the whole point of the suites is that a run that passes (or a
    divergence that was caught) today pins the behaviour — so nothing
    in {!Elag_verify} may touch [Random.self_init] or the global
    [Random] state.  Every plan and every campaign carries its own seed
    and draws from its own generator.

    The all-zero state is a fixed point of the xorshift transition;
    {!create} and {!next} both remap it, so every seed (including 0 and
    the internal mixing constant) yields a productive stream. *)

type t

val create : int -> t
(** Seeded generator; any seed (including 0) is usable. *)

val next : t -> int
(** Next raw positive value (uniform over [0, max_int]). *)

val split : t -> t
(** Derive an independent child generator from two parent draws, so a
    campaign can hand the program generator, the fault planner and the
    mechanism scheduler their own streams: drawing from one never
    perturbs the others, which keeps per-iteration results independent
    of evaluation order. *)

val int : t -> int -> int
(** [int t n] in [0, n); raises [Invalid_argument] when [n <= 0]. *)

val bool : t -> bool
