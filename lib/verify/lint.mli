(** Static EPA-32 program verifier, run before any simulation.

    The emulator traps wild jumps and memory faults dynamically; the
    lint rejects a malformed program *before* it costs a multi-minute
    simulation, and catches classes the dynamic checks cannot — e.g. an
    [ld_e] whose addressing mode cannot legally bind R_addr, which
    would silently simulate with meaningless timing.

    Checks:
    - the entry point and every static control-transfer target lie
      inside the code segment;
    - every register read or written (including address-formation
      registers) is architecturally valid;
    - [ld_e] binding rules: early-calculation loads must use
      register+offset addressing with a non-zero base, the only form
      the R_addr full adder accepts (paper §3.2.1);
    - absolute-addressed memory operations fit inside the memory
      image, and the static data image and heap base respect the
      configured memory size. *)

type issue =
  { pc : int option  (** code position, or [None] for data/layout issues *)
  ; rule : string  (** stable machine-readable rule id *)
  ; detail : string }

type report =
  { checked : int  (** instructions examined *)
  ; issues : issue list }

val ok : report -> bool

exception Rejected of report

val check : ?memory_size:int -> Elag_isa.Program.t -> report
(** [memory_size] defaults to {!Elag_sim.Memory.default_size}. *)

val enforce : ?memory_size:int -> Elag_isa.Program.t -> unit
(** Raises {!Rejected} when {!check} finds any issue. *)

val pp_issue : issue Fmt.t
val pp : report Fmt.t
val to_json : report -> Elag_telemetry.Json.t
