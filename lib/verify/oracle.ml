(* Lockstep differential oracle over the retired-instruction stream.

   The subject run drives a pipeline observer as usual; the oracle
   rides on the same observer and, for every subject retire, steps a
   second, independent emulator over the reference program and demands
   the two retire events agree field by field.  Divergence handling is
   first-failure: the initial disagreement is captured together with a
   short window of the agreeing events that led up to it, and the
   reference emulator is frozen so a cascade of follow-on mismatches
   cannot bury the root cause. *)

module Insn = Elag_isa.Insn
module Emulator = Elag_sim.Emulator
module Json = Elag_telemetry.Json

type event =
  { ev_index : int
  ; ev_pc : int
  ; ev_insn : Insn.t
  ; ev_eff : int
  ; ev_taken : bool
  ; ev_next_pc : int }

type divergence =
  { div_index : int
  ; div_subject : event
  ; div_reference : event option
  ; div_recent : event list }

type report =
  { compared : int
  ; divergence : divergence option
  ; subject_output : string
  ; reference_output : string
  ; outputs_match : bool
  ; reference_trailing : bool
  ; subject_cycles : int }

let ok r =
  r.divergence = None && r.outputs_match && not r.reference_trailing

type t =
  { reference : Emulator.t
  ; keep : int
  ; recent : event Queue.t
  ; mutable compared : int
  ; mutable div : divergence option }

let create ?(keep = 8) program =
  if keep < 0 then invalid_arg "Oracle.create";
  { reference = Emulator.create program
  ; keep
  ; recent = Queue.create ()
  ; compared = 0
  ; div = None }

let recent_list t = List.of_seq (Queue.to_seq t.recent)

let event_equal a b =
  a.ev_pc = b.ev_pc && a.ev_insn = b.ev_insn && a.ev_eff = b.ev_eff
  && a.ev_taken = b.ev_taken && a.ev_next_pc = b.ev_next_pc

let observer t : Emulator.observer =
 fun pc insn eff taken next_pc ->
  if t.div = None then begin
    let subject =
      { ev_index = t.compared
      ; ev_pc = pc
      ; ev_insn = insn
      ; ev_eff = eff
      ; ev_taken = taken
      ; ev_next_pc = next_pc }
    in
    let captured = ref None in
    let capture rpc rinsn reff rtaken rnext =
      captured :=
        Some
          { ev_index = t.compared
          ; ev_pc = rpc
          ; ev_insn = rinsn
          ; ev_eff = reff
          ; ev_taken = rtaken
          ; ev_next_pc = rnext }
    in
    ignore (Emulator.step ~observer:capture t.reference : bool);
    match !captured with
    | Some r when event_equal subject r ->
      t.compared <- t.compared + 1;
      if t.keep > 0 then begin
        Queue.push subject t.recent;
        if Queue.length t.recent > t.keep then ignore (Queue.pop t.recent)
      end
    | reference ->
      t.div <-
        Some
          { div_index = t.compared
          ; div_subject = subject
          ; div_reference = reference
          ; div_recent = recent_list t }
  end

let divergence t = t.div

let run ?max_insns ?keep ?reference ?(deadline = Deadline.never)
    (cfg : Elag_sim.Config.t) program =
  let reference_prog = Option.value reference ~default:program in
  let oracle = create ?keep reference_prog in
  let pipe = Elag_sim.Pipeline.create cfg in
  let pipe_obs = Elag_sim.Pipeline.observer pipe in
  let oracle_obs = observer oracle in
  let obs pc insn eff taken next_pc =
    Deadline.check deadline;
    pipe_obs pc insn eff taken next_pc;
    oracle_obs pc insn eff taken next_pc
  in
  let subject = Emulator.create program in
  Emulator.run ~observer:obs ?max_insns subject;
  let subject_output = Emulator.output subject in
  let reference_output = Emulator.output oracle.reference in
  { compared = oracle.compared
  ; divergence = oracle.div
  ; subject_output
  ; reference_output
  ; outputs_match = String.equal subject_output reference_output
  ; reference_trailing =
      oracle.div = None && not (Emulator.halted oracle.reference)
  ; subject_cycles = (Elag_sim.Pipeline.stats pipe).cycles }

(* --- failure signature ------------------------------------------------ *)

(* A stable label for the failure *class*, independent of pcs, indices
   and operand values.  The shrinker minimizes against it: a candidate
   program only counts as "still failing" when it fails the same way,
   so deleting instructions can never silently trade the original bug
   for an unrelated one (e.g. an output mismatch for a halted-early
   reference). *)

let insn_kind = function
  | Insn.Alu _ -> "alu"
  | Insn.Li _ -> "li"
  | Insn.Load _ -> "load"
  | Insn.Store _ -> "store"
  | Insn.Branch _ -> "branch"
  | Insn.Jump _ -> "jump"
  | Insn.Jal _ -> "jal"
  | Insn.Jalr _ -> "jalr"
  | Insn.Jr _ -> "jr"
  | Insn.Syscall _ -> "syscall"
  | Insn.Nop -> "nop"
  | Insn.Halt -> "halt"

let signature r =
  match r.divergence with
  | Some d ->
    let ref_kind =
      match d.div_reference with
      | Some e -> insn_kind e.ev_insn
      | None -> "halted"
    in
    Some
      (Printf.sprintf "divergence:%s-vs-%s"
         (insn_kind d.div_subject.ev_insn)
         ref_kind)
  | None ->
    if not r.outputs_match then Some "output-mismatch"
    else if r.reference_trailing then Some "reference-trailing"
    else None

(* --- rendering -------------------------------------------------------- *)

let pp_event ppf e =
  Fmt.pf ppf "#%d pc=%d %a eff=%d taken=%b next=%d" e.ev_index e.ev_pc
    Insn.pp e.ev_insn e.ev_eff e.ev_taken e.ev_next_pc

let pp ppf r =
  match r.divergence with
  | None ->
    if ok r then
      Fmt.pf ppf "oracle: ok (%d events, %d cycles)" r.compared
        r.subject_cycles
    else if not r.outputs_match then
      Fmt.pf ppf "oracle: OUTPUT MISMATCH after %d agreeing events"
        r.compared
    else
      Fmt.pf ppf
        "oracle: REFERENCE TRAILING (subject halted after %d events)"
        r.compared
  | Some d ->
    Fmt.pf ppf "oracle: DIVERGENCE at retire #%d@,  subject:   %a@,"
      d.div_index pp_event d.div_subject;
    (match d.div_reference with
    | Some e -> Fmt.pf ppf "  reference: %a" pp_event e
    | None -> Fmt.pf ppf "  reference: (already halted)");
    if d.div_recent <> [] then begin
      Fmt.pf ppf "@,  last agreeing events:";
      List.iter (fun e -> Fmt.pf ppf "@,    %a" pp_event e) d.div_recent
    end

let event_json e =
  Json.Obj
    [ ("index", Json.Int e.ev_index)
    ; ("pc", Json.Int e.ev_pc)
    ; ("insn", Json.String (Fmt.str "%a" Insn.pp e.ev_insn))
    ; ("eff", Json.Int e.ev_eff)
    ; ("taken", Json.Bool e.ev_taken)
    ; ("next_pc", Json.Int e.ev_next_pc) ]

let to_json r =
  let divergence =
    match r.divergence with
    | None -> Json.Null
    | Some d ->
      Json.Obj
        [ ("index", Json.Int d.div_index)
        ; ("subject", event_json d.div_subject)
        ; ( "reference"
          , match d.div_reference with
            | Some e -> event_json e
            | None -> Json.Null )
        ; ("recent", Json.List (List.map event_json d.div_recent)) ]
  in
  Json.Obj
    [ ("ok", Json.Bool (ok r))
    ; ("compared", Json.Int r.compared)
    ; ("outputs_match", Json.Bool r.outputs_match)
    ; ("reference_trailing", Json.Bool r.reference_trailing)
    ; ("subject_cycles", Json.Int r.subject_cycles)
    ; ("divergence", divergence) ]
