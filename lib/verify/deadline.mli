(** Cooperative wall-clock deadlines for hang-proofing long runs.

    OCaml domains cannot be killed, so a supervised worker pool cannot
    forcibly cancel a hung job; instead every job polls a deadline from
    its own hot path — for simulator jobs, the per-retired-instruction
    hook that already enforces the instruction budget.  {!check}
    amortizes the clock read (one sample per 1024 calls), so polling
    once per retired instruction is effectively free.

    A deadline that fires raises {!Job_timeout}, the diagnostic class
    {!Diag} maps to a one-line exit-2 message and the supervised pool
    ({!Elag_engine.Pool}) converts into a structured per-job result
    instead of aborting the whole run. *)

exception Job_timeout of { timeout_ms : int }

type t

val never : t
(** A deadline that never fires; {!check} on it is a single branch. *)

val start : timeout_ms:int -> t
(** Deadline [timeout_ms] milliseconds of wall clock from now.  Raises
    [Invalid_argument] when [timeout_ms <= 0]. *)

val opt : int option -> t
(** [opt (Some ms)] is [start ~timeout_ms:ms]; [opt None] is {!never} —
    the shape CLI [--timeout-ms] plumbing wants. *)

val check : t -> unit
(** Cheap poll; raises {!Job_timeout} once the wall clock passes the
    deadline (sampled every 1024 calls). *)

val expired : t -> bool
(** Unsampled immediate check, for supervisors that want to test
    without raising. *)

val observer : t -> Elag_sim.Emulator.observer
(** An emulator observer that only polls the deadline — compose it
    with (or call {!check} from) the run's real observer so a runaway
    simulation trips the timeout from inside its instruction loop. *)
