(** Differential oracle: the timing pipeline and a reference
    architectural emulator run in lockstep over the retired-instruction
    stream, and every retire event — [(pc, insn, effective_address,
    taken, next_pc)] — must agree instruction by instruction.

    The simulator is emulation-driven, so the pipeline cannot *compute*
    a different architectural result; what the oracle pins down is the
    stream contract between the two halves: the observer really is
    called once per retired instruction, in order, with the
    architectural values.  Any refactor that breaks the contract (a
    skipped retire, a stale effective address, a misreported branch)
    surfaces as a first-divergence report rather than as silently wrong
    statistics. *)

type event =
  { ev_index : int  (** retire index (0-based) *)
  ; ev_pc : int
  ; ev_insn : Elag_isa.Insn.t
  ; ev_eff : int
  ; ev_taken : bool
  ; ev_next_pc : int }

type divergence =
  { div_index : int  (** retire index of the first disagreement *)
  ; div_subject : event
  ; div_reference : event option
    (** [None] when the reference emulator had already halted. *)
  ; div_recent : event list
    (** The last agreeing events before the divergence, oldest
        first — the "how did we get here" context. *) }

type report =
  { compared : int  (** events that agreed *)
  ; divergence : divergence option
  ; subject_output : string
  ; reference_output : string
  ; outputs_match : bool
  ; reference_trailing : bool
    (** The reference still had instructions to retire after the
        subject halted. *)
  ; subject_cycles : int  (** timing result of the subject run *) }

val ok : report -> bool
(** No divergence, matching outputs, no trailing reference stream. *)

type t

val create : ?keep:int -> Elag_isa.Program.t -> t
(** Lockstep checker against a fresh reference emulator for the given
    program; [keep] (default 8) bounds [div_recent]. *)

val observer : t -> Elag_sim.Emulator.observer
(** Feed one subject retire event: steps the reference emulator once
    and compares.  After the first divergence the reference is left
    untouched and further events are ignored. *)

val divergence : t -> divergence option

val run :
  ?max_insns:int ->
  ?keep:int ->
  ?reference:Elag_isa.Program.t ->
  ?deadline:Deadline.t ->
  Elag_sim.Config.t ->
  Elag_isa.Program.t ->
  report
(** Run the full timed simulation of the program under the
    configuration with the oracle attached, comparing against
    [reference] (default: the program itself — the self-check used by
    the engine's verification suite; tests pass a deliberately
    different reference to prove divergences are caught).  [deadline]
    is polled once per retired instruction (default: never expires),
    so supervised fuzz jobs can be cancelled cooperatively. *)

val signature : report -> string option
(** [None] when the report is {!ok}; otherwise a stable label of the
    failure class ("divergence:<subject-kind>-vs-<reference-kind>",
    "output-mismatch" or "reference-trailing") that ignores pcs,
    indices and operand values.  The fuzz shrinker minimizes a repro
    against its signature, so deletion steps cannot silently swap the
    original failure for a different one. *)

val pp : report Fmt.t
(** One line when green; the divergence site and recent context
    otherwise. *)

val to_json : report -> Elag_telemetry.Json.t
