(* xorshift64*-style PRNG folded into OCaml's positive int range.
   Deterministic across runs and across [-j N] schedules: the state is
   one immutable-seeded mutable int, never the global Random state. *)

type t = { mutable s : int }

(* The all-zero state is a fixed point of the xorshift transition, so
   it must never be reachable: [create] XORs in the golden-ratio
   constant and remaps any seed that still folds to zero (including a
   seed equal to the constant itself), and [next] remaps the one
   folded state that maps to zero. *)
let nonzero = 0x2545F4914F6CDD

let create seed =
  let s = (seed lxor 0x9E3779B97F4A7C) land max_int in
  { s = (if s = 0 then nonzero else s) }

let next t =
  let x = t.s in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  let x = if x = 0 then nonzero else x in
  t.s <- x;
  x

(* Derive an independent child stream: two parent draws are mixed into
   the child's seed, so the child shares no state with the parent and
   two successive splits share none with each other.  The parent
   advances by exactly two draws, keeping campaign seed-derivation
   schedules deterministic. *)
let split t =
  let a = next t in
  let b = next t in
  create (a lxor ((b * 0x1E3779B97F4A7C15) land max_int))

let int t n =
  if n <= 0 then invalid_arg "Xorshift.int";
  next t mod n

let bool t = next t land 1 = 1
