(* xorshift64*-style PRNG folded into OCaml's positive int range.
   Deterministic across runs and across [-j N] schedules: the state is
   one immutable-seeded mutable int, never the global Random state. *)

type t = { mutable s : int }

(* Golden-ratio constant keeps a zero seed away from the all-zero
   fixed point of the xorshift transition. *)
let create seed =
  let s = (seed lxor 0x9E3779B97F4A7C) land max_int in
  { s = (if s = 0 then 0x2545F4914F6CDD else s) }

let next t =
  let x = t.s in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  let x = if x = 0 then 0x2545F4914F6CDD else x in
  t.s <- x;
  x

let int t n =
  if n <= 0 then invalid_arg "Xorshift.int";
  next t mod n

let bool t = next t land 1 = 1
