(* Cooperative wall-clock deadlines.

   A domain cannot be killed, so "cancelling" a hung job means the job
   polls a deadline from its own hot path — for simulator work, the
   same per-retired-instruction hook that enforces the instruction
   budget.  [check] keeps that polling cheap: the clock is sampled only
   once per [sample_every] calls, so a deadline check in an
   every-instruction observer costs one increment and one compare on
   the common path. *)

exception Job_timeout of { timeout_ms : int }

let () =
  Printexc.register_printer (function
    | Job_timeout { timeout_ms } ->
      Some (Printf.sprintf "Deadline.Job_timeout: wall-clock budget of %d ms exhausted" timeout_ms)
    | _ -> None)

type t =
  { limit : float  (* absolute epoch seconds; infinity = never *)
  ; timeout_ms : int
  ; mutable ticks : int }

(* One clock sample per this many [check] calls.  Small enough that a
   tight emulation loop (tens of millions of retires per second)
   still notices an expired deadline within well under a millisecond. *)
let sample_every = 1024

let never = { limit = infinity; timeout_ms = 0; ticks = 0 }

let start ~timeout_ms =
  if timeout_ms <= 0 then invalid_arg "Deadline.start";
  { limit = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.)
  ; timeout_ms
  ; ticks = 0 }

let opt = function
  | None -> never
  | Some timeout_ms -> start ~timeout_ms

let expired t =
  t.limit < infinity && Unix.gettimeofday () > t.limit

let check t =
  if t.limit < infinity then begin
    t.ticks <- t.ticks + 1;
    if t.ticks >= sample_every then begin
      t.ticks <- 0;
      if Unix.gettimeofday () > t.limit then
        raise (Job_timeout { timeout_ms = t.timeout_ms })
    end
  end

let observer t : Elag_sim.Emulator.observer = fun _ _ _ _ _ -> check t
