module Emulator = Elag_sim.Emulator
module Memory = Elag_sim.Memory

let describe = function
  | Emulator.Runaway retired ->
    Some
      (Fmt.str
         "runaway program: instruction budget exhausted after %d retired \
          instructions (raise --max-insns if the workload is genuinely \
          this long)"
         retired)
  | Emulator.Bad_jump { pc; retired } ->
    Some
      (Fmt.str
         "bad jump: control transferred to pc %d, outside the code \
          segment, after %d retired instructions"
         pc retired)
  | Memory.Fault addr ->
    Some (Fmt.str "memory fault: access at address %d outside the image" addr)
  | Lint.Rejected r ->
    Some
      (Fmt.str "program rejected by lint: %d issue(s); first: %a"
         (List.length r.Lint.issues)
         Fmt.(option Lint.pp_issue)
         (match r.Lint.issues with [] -> None | i :: _ -> Some i))
  | Deadline.Job_timeout { timeout_ms } ->
    Some
      (Fmt.str
         "job timeout: wall-clock budget of %d ms exhausted (raise \
          --timeout-ms if the run is genuinely this long)"
         timeout_ms)
  | _ -> None

(* The default failure action is process-level (print + exit 2), so
   tests inject their own [fail] to assert the mapping without killing
   the test runner. *)
let exit_fail prog line =
  Printf.eprintf "%s: %s\n%!" prog line;
  exit 2

let guard ?fail prog f =
  let fail = Option.value fail ~default:(exit_fail prog) in
  try f ()
  with e -> (
    match describe e with
    | Some line -> fail line
    | None -> raise e)
