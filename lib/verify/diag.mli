(** One-line diagnostics for the failure modes every binary shares.

    A wild jump, a runaway loop, a memory fault, a lint rejection or a
    wall-clock job timeout should end a CLI run with a single
    structured line on stderr and exit code 2 — not an
    uncaught-exception backtrace. *)

val describe : exn -> string option
(** [Some line] for {!Elag_sim.Emulator.Runaway},
    {!Elag_sim.Emulator.Bad_jump}, {!Elag_sim.Memory.Fault},
    {!Lint.Rejected} and {!Deadline.Job_timeout}; [None] for anything
    else.  The line never contains a newline. *)

val guard : ?fail:(string -> unit) -> string -> (unit -> unit) -> unit
(** [guard prog f] runs [f ()]; on a described exception prints
    ["prog: <line>"] to stderr and exits with status 2.  Other
    exceptions propagate unchanged.  [fail] overrides the
    print-and-exit action (tests use this to assert the mapping
    in-process). *)
