(** One-line diagnostics for the failure modes every binary shares.

    A wild jump, a runaway loop, a memory fault or a lint rejection
    should end a CLI run with a single structured line on stderr and
    exit code 2 — not an uncaught-exception backtrace. *)

val describe : exn -> string option
(** [Some line] for {!Elag_sim.Emulator.Runaway},
    {!Elag_sim.Emulator.Bad_jump}, {!Elag_sim.Memory.Fault} and
    {!Lint.Rejected}; [None] for anything else. *)

val guard : string -> (unit -> unit) -> unit
(** [guard prog f] runs [f ()]; on a described exception prints
    ["prog: <line>"] to stderr and exits with status 2.  Other
    exceptions propagate unchanged. *)
