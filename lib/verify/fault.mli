(** Deterministic predictor fault injection.

    The paper's central safety claim is that early-address-generation
    state is a *timing hint only*: address-table entries, BRIC
    residency, the R_addr binding and BTB contents influence when a
    load's access is dispatched, never what the program computes.  A
    fault plan corrupts exactly that state mid-run, on a fixed
    retire-count schedule with a fixed seed, and the harness asserts
    the run is architecturally byte-identical to the fault-free run —
    same program output, same retired-instruction stream — while the
    cycle count may only stay equal or increase.

    Plans are deterministic end to end (seeded {!Xorshift}, retire-
    count triggers, no wall-clock anywhere), so a plan that passes once
    pins the invariant forever and the suite can run in CI. *)

type target =
  | Table_scramble of { slot : int }
    (** Detach an address-table entry from its load by overwriting the
        tag with a bogus pc. *)
  | Table_pa of { slot : int }
    (** Overwrite a live entry's predicted address — every subsequent
        prediction from it dispatches to the wrong line until the
        entry self-corrects at its next update. *)
  | Table_state of { slot : int }
    (** Demote a live entry to Learning with stride confidence
        cleared. *)
  | Bric_flush  (** Evict every BRIC-resident base register. *)
  | Bric_delay of { cycles : int }
    (** Push residency validity [cycles] into the future. *)
  | Raddr_unbind  (** Drop the R_addr binding. *)
  | Btb_target of { slot : int }
    (** Redirect a valid BTB entry's target to a bogus (negative)
        address — the provably adversarial fault: a correct
        taken-prediction becomes a misfetch, never the reverse. *)
  | Btb_scramble of { slot : int }
    (** Detach a valid BTB entry via its tag. *)

type plan =
  { name : string
  ; seed : int
  ; first : int  (** retire count of the first injection *)
  ; period : int option
    (** re-inject every [period] retires; [None] = once *)
  ; target : target }

val pp_target : target Fmt.t

val target_of_string : string -> target option
(** Parse a CLI target name — the {!pp_target} form without brackets,
    with an optional [:N] parameter ("table-scramble:17",
    "bric-delay:8"); parameters default to slot 0 / 8 delay cycles. *)

val target_names : string list
(** Every parseable target name, for usage text. *)

(** {2 Retire-stream fingerprint} *)

val stream_hash_init : int

val stream_hash_step : int -> int -> Elag_isa.Insn.t -> int -> bool -> int -> int
(** FNV-1a-style fold of one retire event into the running hash. *)

(** {2 Running plans} *)

type baseline =
  { base_output : string
  ; base_hash : int
  ; base_retired : int
  ; base_cycles : int }

val baseline :
  ?max_insns:int -> ?deadline:Deadline.t -> Elag_sim.Config.t ->
  Elag_isa.Program.t -> baseline
(** Fault-free run; shared across every plan on the same
    (config, program) pair.  [deadline] is polled once per retired
    instruction, so a hung run raises {!Deadline.Job_timeout} instead
    of blocking its worker forever. *)

type outcome =
  { plan : plan
  ; injections : int  (** triggers that found live state to corrupt *)
  ; faulted_cycles : int
  ; clean_cycles : int
  ; output_ok : bool  (** program output byte-identical *)
  ; stream_ok : bool  (** retire stream identical (hash + count) *)
  ; cycles_ok : bool  (** [faulted_cycles >= clean_cycles] *) }

val outcome_ok : outcome -> bool

val run_plan :
  ?max_insns:int ->
  ?deadline:Deadline.t ->
  baseline:baseline ->
  Elag_sim.Config.t ->
  Elag_isa.Program.t ->
  plan ->
  outcome
(** Re-run the program with the plan's corruptions applied at their
    retire triggers and check the three invariants against the
    baseline. *)

val pp_outcome : outcome Fmt.t

val outcome_to_json : outcome -> Elag_telemetry.Json.t
