(* Deterministic fault injection into live predictor state.

   Mechanics: the faulted run drives the normal pipeline observer, plus
   a trigger check on the retire count.  When a trigger fires, the
   plan's corruption is applied directly to the pipeline's predictor
   structures through the fault hooks ({!Elag_sim.Pipeline.addr_table}
   and friends).  Corruption draws randomness only from the plan's own
   seeded {!Xorshift} stream, and triggers fire on retire counts, so a
   plan is a pure function of (config, program, plan) — re-running it
   can never flake.

   The invariants checked against the fault-free baseline:
   - program output byte-identical,
   - retired-instruction stream identical (FNV fingerprint + count),
   - cycle count >= the fault-free cycle count.

   The first two hold by construction (the pipeline only observes the
   emulator); running them as an executable suite is what protects
   that construction from future refactors.  The third is an empirical
   property of each curated plan: corruptions were chosen to be
   adversarial (lost predictions, misdirected BTB targets), and
   determinism makes the once-verified inequality permanent. *)

module Insn = Elag_isa.Insn
module Pipeline = Elag_sim.Pipeline
module Emulator = Elag_sim.Emulator
module Addr_table = Elag_predict.Addr_table
module Stride_entry = Elag_predict.Stride_entry
module Bric = Elag_predict.Bric
module Raddr = Elag_predict.Raddr
module Btb = Elag_predict.Btb
module Json = Elag_telemetry.Json

type target =
  | Table_scramble of { slot : int }
  | Table_pa of { slot : int }
  | Table_state of { slot : int }
  | Bric_flush
  | Bric_delay of { cycles : int }
  | Raddr_unbind
  | Btb_target of { slot : int }
  | Btb_scramble of { slot : int }

type plan =
  { name : string
  ; seed : int
  ; first : int
  ; period : int option
  ; target : target }

(* CLI names for targets: the pp form without brackets, with optional
   ":N" parameters ("table-scramble:17", "bric-delay:8").  Parameters
   default sensibly so `elag_sim_run --fault bric-flush` just works. *)
let target_of_string s =
  let name, param =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i
      , int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let p default = Option.value param ~default in
  match name with
  | "table-scramble" -> Some (Table_scramble { slot = p 0 })
  | "table-pa" -> Some (Table_pa { slot = p 0 })
  | "table-state" -> Some (Table_state { slot = p 0 })
  | "bric-flush" -> Some Bric_flush
  | "bric-delay" -> Some (Bric_delay { cycles = p 8 })
  | "raddr-unbind" -> Some Raddr_unbind
  | "btb-target" -> Some (Btb_target { slot = p 0 })
  | "btb-scramble" -> Some (Btb_scramble { slot = p 0 })
  | _ -> None

let target_names =
  [ "table-scramble"; "table-pa"; "table-state"; "bric-flush"; "bric-delay"
  ; "raddr-unbind"; "btb-target"; "btb-scramble" ]

let pp_target ppf = function
  | Table_scramble { slot } -> Fmt.pf ppf "table-scramble[%d]" slot
  | Table_pa { slot } -> Fmt.pf ppf "table-pa[%d]" slot
  | Table_state { slot } -> Fmt.pf ppf "table-state[%d]" slot
  | Bric_flush -> Fmt.string ppf "bric-flush"
  | Bric_delay { cycles } -> Fmt.pf ppf "bric-delay[%d]" cycles
  | Raddr_unbind -> Fmt.string ppf "raddr-unbind"
  | Btb_target { slot } -> Fmt.pf ppf "btb-target[%d]" slot
  | Btb_scramble { slot } -> Fmt.pf ppf "btb-scramble[%d]" slot

(* --- retire-stream fingerprint ---------------------------------------- *)

(* FNV-1a over the observer tuple.  [Hashtbl.hash] on the instruction
   is deterministic for a given compiler, which is all the comparison
   between two runs in the same process (or CI job) needs. *)

let fnv_prime = 0x100000001B3

let stream_hash_init = 0x4BF29CE484222325

let mix h x = (h lxor (x land max_int)) * fnv_prime land max_int

let stream_hash_step h pc insn eff taken next_pc =
  let h = mix h pc in
  let h = mix h (Hashtbl.hash insn) in
  let h = mix h eff in
  let h = mix h (if taken then 1 else 0) in
  mix h next_pc

(* --- corruption ------------------------------------------------------- *)

(* A tag no compiled program's pc can reach: code segments are a few
   thousand instructions at most. *)
let bogus_tag rng = 0x40000000 + Xorshift.int rng 0x10000

(* Slot indices in a plan are starting points, not exact addresses:
   corruption scans forward (wrapping) to the first *live* slot, so a
   trigger always lands on real predictor state whenever any exists —
   a plan whose fixed slot happened to be empty would verify nothing. *)
let find_live size valid start =
  let rec go k =
    if k = size then None
    else
      let i = (start + k) mod size in
      if valid i then Some i else go (k + 1)
  in
  go 0

let with_live_table pipe slot f =
  match Pipeline.addr_table pipe with
  | None -> false
  | Some tbl -> (
    let size = Addr_table.size tbl in
    let valid i = fst (Addr_table.slot tbl i) >= 0 in
    match find_live size valid (slot mod size) with
    | None -> false
    | Some i ->
      f tbl i;
      true)

(* Apply one corruption; returns whether live state was actually hit
   (an absent structure or a fully-empty one is a no-op trigger). *)
let apply pipe rng target =
  match target with
  | Table_scramble { slot } ->
    with_live_table pipe slot (fun tbl i -> Addr_table.set_tag tbl i (bogus_tag rng))
  | Table_pa { slot } ->
    with_live_table pipe slot (fun tbl i ->
        (* Misdirect the next prediction to an unrelated line; the
           entry self-corrects at that load's next update. *)
        let _, entry = Addr_table.slot tbl i in
        entry.Stride_entry.pa <- Xorshift.int rng 0x100000)
  | Table_state { slot } ->
    with_live_table pipe slot (fun tbl i ->
        let _, entry = Addr_table.slot tbl i in
        entry.Stride_entry.state <- Stride_entry.Learning;
        entry.Stride_entry.stc <- false)
  | Bric_flush -> (
    match Pipeline.bric pipe with
    | None -> false
    | Some bric ->
      if Bric.resident_count bric = 0 then false
      else begin
        Bric.flush bric;
        true
      end)
  | Bric_delay { cycles } -> (
    match Pipeline.bric pipe with
    | None -> false
    | Some bric ->
      if Bric.resident_count bric = 0 then false
      else begin
        Bric.delay bric ~until:(Pipeline.current_cycle pipe + cycles);
        true
      end)
  | Raddr_unbind -> (
    match Pipeline.raddr pipe with
    | None -> false
    | Some raddr -> (
      match Raddr.bound raddr with
      | None -> false
      | Some _ ->
        Raddr.unbind raddr;
        true))
  | Btb_target { slot } -> (
    let btb = Pipeline.btb pipe in
    let size = Btb.size btb in
    match find_live size (Btb.slot_valid btb) (slot mod size) with
    | None -> false
    | Some i ->
      (* A negative target can never match a real branch target, so a
         taken-prediction through this entry always misfetches. *)
      Btb.corrupt btb ~slot:i ~target:(-(1 + Xorshift.int rng 4096)) ();
      true)
  | Btb_scramble { slot } -> (
    let btb = Pipeline.btb pipe in
    let size = Btb.size btb in
    match find_live size (Btb.slot_valid btb) (slot mod size) with
    | None -> false
    | Some i ->
      Btb.corrupt btb ~slot:i ~tag:(bogus_tag rng) ();
      true)

(* --- running ---------------------------------------------------------- *)

type baseline =
  { base_output : string
  ; base_hash : int
  ; base_retired : int
  ; base_cycles : int }

let baseline ?max_insns ?(deadline = Deadline.never) (cfg : Elag_sim.Config.t)
    program =
  let pipe = Pipeline.create cfg in
  let pipe_obs = Pipeline.observer pipe in
  let hash = ref stream_hash_init in
  let retired = ref 0 in
  let obs pc insn eff taken next_pc =
    Deadline.check deadline;
    pipe_obs pc insn eff taken next_pc;
    hash := stream_hash_step !hash pc insn eff taken next_pc;
    incr retired
  in
  let emu = Emulator.create program in
  Emulator.run ~observer:obs ?max_insns emu;
  { base_output = Emulator.output emu
  ; base_hash = !hash
  ; base_retired = !retired
  ; base_cycles = (Pipeline.stats pipe).cycles }

type outcome =
  { plan : plan
  ; injections : int
  ; faulted_cycles : int
  ; clean_cycles : int
  ; output_ok : bool
  ; stream_ok : bool
  ; cycles_ok : bool }

let outcome_ok o = o.output_ok && o.stream_ok && o.cycles_ok

let run_plan ?max_insns ?(deadline = Deadline.never)
    ~baseline:(base : baseline) (cfg : Elag_sim.Config.t) program (plan : plan)
    =
  if plan.first < 0 then invalid_arg "Fault.run_plan: negative first";
  (match plan.period with
  | Some p when p <= 0 -> invalid_arg "Fault.run_plan: non-positive period"
  | _ -> ());
  let pipe = Pipeline.create cfg in
  let pipe_obs = Pipeline.observer pipe in
  let rng = Xorshift.create plan.seed in
  let hash = ref stream_hash_init in
  let retired = ref 0 in
  let injections = ref 0 in
  let next_trigger = ref plan.first in
  let obs pc insn eff taken next_pc =
    Deadline.check deadline;
    pipe_obs pc insn eff taken next_pc;
    hash := stream_hash_step !hash pc insn eff taken next_pc;
    incr retired;
    if !retired >= !next_trigger then begin
      if apply pipe rng plan.target then incr injections;
      next_trigger :=
        (match plan.period with
        | Some p -> !next_trigger + p
        | None -> max_int)
    end
  in
  let emu = Emulator.create program in
  Emulator.run ~observer:obs ?max_insns emu;
  let output = Emulator.output emu in
  let faulted_cycles = (Pipeline.stats pipe).cycles in
  { plan
  ; injections = !injections
  ; faulted_cycles
  ; clean_cycles = base.base_cycles
  ; output_ok = String.equal output base.base_output
  ; stream_ok = !hash = base.base_hash && !retired = base.base_retired
  ; cycles_ok = faulted_cycles >= base.base_cycles }

let pp_outcome ppf o =
  Fmt.pf ppf "%-24s %a seed=%-6d inj=%-3d cycles %d -> %d  %s" o.plan.name
    pp_target o.plan.target o.plan.seed o.injections o.clean_cycles
    o.faulted_cycles
    (if outcome_ok o then "ok"
     else
       String.concat ","
         (List.filter_map
            (fun (b, s) -> if b then None else Some s)
            [ (o.output_ok, "OUTPUT")
            ; (o.stream_ok, "STREAM")
            ; (o.cycles_ok, "CYCLES") ]))

let outcome_to_json o =
  Json.Obj
    [ ("name", Json.String o.plan.name)
    ; ("target", Json.String (Fmt.str "%a" pp_target o.plan.target))
    ; ("seed", Json.Int o.plan.seed)
    ; ("first", Json.Int o.plan.first)
    ; ( "period"
      , match o.plan.period with Some p -> Json.Int p | None -> Json.Null )
    ; ("injections", Json.Int o.injections)
    ; ("clean_cycles", Json.Int o.clean_cycles)
    ; ("faulted_cycles", Json.Int o.faulted_cycles)
    ; ("output_ok", Json.Bool o.output_ok)
    ; ("stream_ok", Json.Bool o.stream_ok)
    ; ("cycles_ok", Json.Bool o.cycles_ok)
    ; ("ok", Json.Bool (outcome_ok o)) ]
