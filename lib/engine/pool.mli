(** Deterministic fixed-size [Domain] worker pool.

    Jobs are indexed; workers claim the next unclaimed index from a
    shared atomic counter and write the result into that index's slot.
    Which domain runs which job is scheduling-dependent, but the merged
    result array is always in job order, so any pure job function
    yields byte-identical output at every [jobs] setting. *)

exception Failures of (int * string) list
(** Two or more jobs failed; carries every [(job index, message)] in
    index order, so a batch with several broken inputs reports all of
    them at once instead of one per re-run. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [run ~jobs f items] applies [f] to every item on up to [jobs]
    domains (clamped to [1 .. Array.length items]) and returns the
    results in item order.  Every job runs regardless of other jobs'
    failures; after all workers drain, a single failing job's exception
    is re-raised with its backtrace (so specific handlers still match),
    and two or more raise {!Failures}. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!run} over a list, preserving order. *)
