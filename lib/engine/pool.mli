(** Deterministic fixed-size [Domain] worker pool.

    Jobs are indexed; workers claim the next unclaimed index from a
    shared atomic counter and write the result into that index's slot.
    Which domain runs which job is scheduling-dependent, but the merged
    result array is always in job order, so any pure job function
    yields byte-identical output at every [jobs] setting. *)

exception Failures of (int * string) list
(** Two or more jobs failed; carries every [(job index, message)] in
    index order, so a batch with several broken inputs reports all of
    them at once instead of one per re-run. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [run ~jobs f items] applies [f] to every item on up to [jobs]
    domains (clamped to [1 .. Array.length items]) and returns the
    results in item order.  Every job runs regardless of other jobs'
    failures; after all workers drain, a single failing job's exception
    is re-raised with its backtrace (so specific handlers still match),
    and two or more raise {!Failures}. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!run} over a list, preserving order. *)

(** {2 Supervised runs}

    {!run} has all-or-nothing failure semantics: any job's exception
    eventually aborts the caller.  Long unattended runs (fuzz
    campaigns, overnight sweeps) instead need graceful degradation —
    one hung or crashed job must not take down the other thousand.
    {!run_supervised} gives every job a wall-clock deadline and a
    bounded retry budget and reports per-job outcomes. *)

type failure =
  | Job_failed of { attempts : int; message : string }
    (** The job raised on every attempt; [message] is the last
        attempt's exception. *)
  | Job_timeout of { timeout_ms : int; attempts : int }
    (** The job overran its wall-clock budget
        ({!Elag_verify.Deadline.Job_timeout}).  Timeouts are never
        retried: a deterministic job that overran once will overrun
        again. *)

type 'b outcome = ('b, failure) result

val pp_failure : failure Fmt.t

val failure_to_string : failure -> string

val run_supervised :
  ?timeout_ms:int ->
  ?retries:int ->
  ?backoff_ms:int ->
  jobs:int ->
  (Elag_verify.Deadline.t -> 'a -> 'b) ->
  'a array ->
  'b outcome array
(** [run_supervised ~jobs f items] is {!run} with supervision: each
    attempt receives a fresh deadline ([timeout_ms] of wall clock;
    omitted = never) that the job must poll ({!Elag_verify.Deadline.check},
    typically from a per-retired-instruction observer).  Cancellation
    is cooperative — a job that never polls cannot be reclaimed.
    Crashes are retried up to [retries] times (default 0) with
    exponential backoff starting at [backoff_ms] (default 5 ms);
    outcomes come back in item order, [Error] for jobs that timed out
    or exhausted their attempts.  Results are deterministic at every
    [jobs] setting whenever [f] is pure and no job times out. *)

val outcome_failures : 'b outcome array -> (int * failure) list
(** The failed indices of a supervised run, in index order. *)
