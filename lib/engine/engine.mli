(** Parallel experiment engine.

    An engine is an explicit handle bundling a worker-pool width with
    domain-safe caches of per-workload artifacts: the compiled
    program, the address profile, the profile-reclassified program,
    and per-(configuration, variant) timing results.  It replaces the
    old process-global [Context] hashtable — every consumer receives
    an engine and asks it for artifacts, so two engines never share
    (or corrupt) state, and a single engine may be driven from many
    domains at once.

    Determinism: compilation, profiling and simulation are pure
    functions of (workload source, configuration), jobs are merged in
    submission order ({!Pool}), and caches only dedupe identical
    computations — so results are byte-identical at every [jobs]
    setting. *)

module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Profile = Elag_harness.Profile
module Workload = Elag_workloads.Workload

type t

val create : ?jobs:int -> ?config:Config.t -> unit -> t
(** [create ()] sizes the pool with [Pool.default_jobs ()] and uses
    [Config.default] (mechanism field ignored) as the machine model. *)

val jobs : t -> int

val base_config : t -> Config.t

(** Which classification of the program a result is measured on. *)
type variant = Classified | Reclassified

val program : t -> Workload.t -> Elag_isa.Program.t
(** Compiled with the Section 4 heuristics; cached per workload. *)

val profile : t -> Workload.t -> Profile.t

val reclassified : t -> Workload.t -> Elag_isa.Program.t

val program_of : t -> Workload.t -> variant -> Elag_isa.Program.t

val simulate :
  ?variant:variant -> ?config:Config.t -> t -> Workload.t ->
  Config.mechanism -> Pipeline.stats
(** Timing-simulate the workload under the mechanism (and optional
    machine-config override), verifying the emitted output against the
    workload's pinned expectation; cached per (workload, variant,
    full configuration). *)

val base_cycles : ?config:Config.t -> t -> Workload.t -> int

val speedup :
  ?variant:variant -> ?config:Config.t -> t -> Workload.t ->
  Config.mechanism -> float
(** Baseline cycles / mechanism cycles under the same machine config. *)

(** Static and dynamic load-class distribution of a program variant,
    using the profile's per-pc execution counts. *)
type distribution =
  { static_nt : float; static_pd : float; static_ec : float
  ; dynamic_nt : float; dynamic_pd : float; dynamic_ec : float
  ; rate_nt : float option  (* ideal-predictor rate over NT loads *)
  ; rate_pd : float option
  ; total_dynamic_loads : int }

val distribution : ?variant:variant -> t -> Workload.t -> distribution

(** One point of the evaluation grid. *)
module Job : sig
  type t =
    { workload : Workload.t
    ; mechanism : Config.mechanism
    ; variant : variant
    ; config : Config.t }

  val make :
    ?variant:variant -> ?config:Config.t -> Workload.t ->
    Config.mechanism -> t

  val name : t -> string
  (** ["workload/mechanism[+prof]"], unique within a homogeneous-config
      grid. *)
end

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Deterministic parallel map on the engine's pool: results in input
    order regardless of [jobs]. *)

val run_jobs : t -> Job.t list -> (Job.t * Pipeline.stats) list
(** Simulate every job on the pool; results in job order. *)

val sweep_json : t -> Job.t list -> Elag_telemetry.Json.t
(** Run the jobs and render cycles / instructions / IPC / speedup per
    job as a stable JSON artifact — the byte-comparable object behind
    the [-j N] determinism pin and [BENCH_engine.json]. *)
