type 'v slot = { slot_lock : Mutex.t; mutable value : 'v option }

type ('k, 'v) t = { lock : Mutex.t; slots : ('k, 'v slot) Hashtbl.t }

let create ?(size = 32) () = { lock = Mutex.create (); slots = Hashtbl.create size }

let find_or_compute t key f =
  let slot =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.slots key with
        | Some s -> s
        | None ->
          let s = { slot_lock = Mutex.create (); value = None } in
          Hashtbl.replace t.slots key s;
          s)
  in
  Mutex.protect slot.slot_lock (fun () ->
      match slot.value with
      | Some v -> v
      | None ->
        let v = f () in
        slot.value <- Some v;
        v)

let length t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun _ slot acc -> match slot.value with Some _ -> acc + 1 | None -> acc)
        t.slots 0)
