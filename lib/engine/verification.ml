(* Standing verification suites over the workload suite.

   Matrix-design constraints:
   - the address table exists under [table-*] and [dual-*], the BRIC
     only under [calc-*], R_addr only under [dual-*] — each fault
     target rides a mechanism that instantiates its structure;
   - the three matrix workloads are the suite's cheapest with
     substantial load traffic, keeping the whole matrix (baselines
     plus faulted runs) affordable inside [dune runtest];
   - triggers are retire counts well inside every workload's dynamic
     length, with periods so repeated corruption keeps hitting warmed
     state.

   Plans are curated: corruptions are chosen to be adversarial
   (detached or misdirected predictor state can lose cycles, not gain
   them), and the determinism of (config, program, plan) makes the
   verified [cycles >= clean] inequality permanent. *)

module Config = Elag_sim.Config
module Workload = Elag_workloads.Workload
module Suite = Elag_workloads.Suite
module Fault = Elag_verify.Fault
module Lint = Elag_verify.Lint
module Oracle = Elag_verify.Oracle
module Json = Elag_telemetry.Json

type entry =
  { workload : string
  ; mechanism : string
  ; plan : Fault.plan }

let matrix_workloads = [ "PGP Decode"; "147.vortex"; "PGP Encode" ]

(* Per-workload fault plans; [i] varies seeds/slots/triggers so the
   three workloads don't share identical corruption points. *)
let plans_for i w =
  let p name target ~seed ~first ~period =
    { workload = w
    ; mechanism =
        (match target with
        | Fault.Table_scramble _ | Fault.Table_pa _ -> "table-256-cc"
        | Fault.Table_state _ | Fault.Raddr_unbind -> "dual-cc"
        | Fault.Bric_flush | Fault.Bric_delay _ -> "calc-8"
        | Fault.Btb_target _ | Fault.Btb_scramble _ -> "baseline")
    ; plan = { Fault.name = w ^ "/" ^ name; seed; first; period; target } }
  in
  [ p "table-scramble"
      (Fault.Table_scramble { slot = 17 + (31 * i) })
      ~seed:(1001 + i) ~first:(50_000 + (7_000 * i))
      ~period:(Some 100_000)
  ; p "table-pa"
      (Fault.Table_pa { slot = 5 + (13 * i) })
      ~seed:(2002 + i) ~first:(60_000 + (9_000 * i)) ~period:(Some 50_000)
  ; p "table-state"
      (Fault.Table_state { slot = 40 + (11 * i) })
      ~seed:(3003 + i) ~first:(45_000 + (5_000 * i)) ~period:(Some 80_000)
  ; p "bric-flush" Fault.Bric_flush ~seed:(4004 + i)
      ~first:(40_000 + (6_000 * i)) ~period:(Some 75_000)
  ; p "bric-delay"
      (Fault.Bric_delay { cycles = 8 })
      ~seed:(5005 + i) ~first:(30_000 + (4_000 * i)) ~period:(Some 60_000)
  ; p "raddr-unbind" Fault.Raddr_unbind ~seed:(6006 + i)
      ~first:(20_000 + (3_000 * i)) ~period:(Some 40_000)
  ; p "btb-target"
      (Fault.Btb_target { slot = 3 + (29 * i) })
      ~seed:(7007 + i) ~first:(10_000 + (2_000 * i)) ~period:(Some 30_000)
  ]

let fault_matrix =
  List.concat (List.mapi plans_for matrix_workloads)
  @ [ { workload = "PGP Decode"
      ; mechanism = "dual-cc"
      ; plan =
          { Fault.name = "PGP Decode/btb-scramble"
          ; seed = 8008
          ; first = 15_000
          ; period = Some 35_000
          ; target = Fault.Btb_scramble { slot = 23 } } } ]

let fault_smoke =
  List.filter (fun e -> e.workload = "PGP Decode") fault_matrix

let config_of engine name =
  Config.with_mechanism
    (Config.Mechanism.of_string_exn name)
    (Engine.base_config engine)

let run_fault_suite ?(entries = fault_matrix) engine =
  (* One fault-free baseline per distinct (workload, mechanism). *)
  let baselines = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key = (e.workload, e.mechanism) in
      if not (Hashtbl.mem baselines key) then begin
        let w = Suite.find e.workload in
        let cfg = config_of engine e.mechanism in
        Hashtbl.add baselines key
          (Fault.baseline cfg (Engine.program engine w))
      end)
    entries;
  Engine.map engine
    (fun e ->
      let w = Suite.find e.workload in
      let cfg = config_of engine e.mechanism in
      let baseline = Hashtbl.find baselines (e.workload, e.mechanism) in
      (e, Fault.run_plan ~baseline cfg (Engine.program engine w) e.plan))
    entries

let run_lint_suite engine =
  Engine.map engine
    (fun (w : Workload.t) ->
      (w.Workload.name, Lint.check (Engine.program engine w)))
    Suite.all

let run_oracle_suite
    ?(mechanism = Config.Dual { table_entries = 256; selection = Config.Compiler_directed })
    ?(workloads = Suite.all) engine =
  let cfg = Config.with_mechanism mechanism (Engine.base_config engine) in
  Engine.map engine
    (fun (w : Workload.t) ->
      (w.Workload.name, Oracle.run cfg (Engine.program engine w)))
    workloads

let report_json ~faults ~lints ~oracles =
  Json.Obj
    [ ("schema", Json.String "elag.verify.v1")
    ; ( "faults"
      , Json.List
          (List.map
             (fun (e, o) ->
               Json.Obj
                 [ ("workload", Json.String e.workload)
                 ; ("mechanism", Json.String e.mechanism)
                 ; ("outcome", Fault.outcome_to_json o) ])
             faults) )
    ; ( "lints"
      , Json.List
          (List.map
             (fun (name, r) ->
               Json.Obj
                 [ ("workload", Json.String name)
                 ; ("report", Lint.to_json r) ])
             lints) )
    ; ( "oracles"
      , Json.List
          (List.map
             (fun (name, r) ->
               Json.Obj
                 [ ("workload", Json.String name)
                 ; ("report", Oracle.to_json r) ])
             oracles) ) ]
