(** Domain-safe single-flight memo table.

    Concurrent lookups of different keys proceed in parallel;
    concurrent lookups of the same key serialize on a per-key lock so
    the compute function runs at most once per key.  This is the
    engine's replacement for the old process-global [Context]
    hashtable: every cache hangs off an explicit handle, and all
    mutation is lock-protected. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute t key f] returns the cached value for [key],
    computing it with [f] (exactly once, even under contention) on the
    first lookup.  [f] must not re-enter the cache with the same [key]
    (per-key locks are not reentrant); distinct keys may be consulted
    freely. *)

val length : ('k, 'v) t -> int
(** Number of populated entries. *)
