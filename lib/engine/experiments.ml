(* Generators for every table and figure in the paper's evaluation
   section, each printing measured values side by side with the
   paper's.  Row data is computed through an Engine handle — rows in
   parallel on its pool, merged in suite order — and printed only
   after the parallel phase, so stdout is deterministic. *)

module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Workload = Elag_workloads.Workload
module Suite = Elag_workloads.Suite
module Paper_data = Elag_harness.Paper_data

let pf = Printf.printf

let mean = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

let mean_exn xs =
  match mean xs with
  | Some m -> m
  | None -> invalid_arg "Experiments.mean: empty list"

let opt_f = function Some v -> Printf.sprintf "%6.2f" v | None -> "     -"

let dual_cc = Config.Dual { table_entries = 256; selection = Config.Compiler_directed }

(* The full evaluation grid (Figures 5a-c, Tables 2-4): every SPEC
   workload crossed with the canonical mechanism list plus the
   reclassified dual-path point of Table 3; every MediaBench workload
   under the points Table 4 reports (baseline and dual-cc). *)
let grid () =
  List.concat_map
    (fun w ->
      List.map (fun m -> Engine.Job.make w m) Config.Mechanism.all
      @ [ Engine.Job.make ~variant:Engine.Reclassified w dual_cc ])
    Suite.spec
  @ List.concat_map
      (fun w -> [ Engine.Job.make w Config.No_early; Engine.Job.make w dual_cc ])
      Suite.media

(* --- Table 2 ---------------------------------------------------------- *)

type table2_row =
  { name : string
  ; loads_m : float
  ; dist : Engine.distribution }

let table2_rows engine =
  Engine.map engine
    (fun w ->
      let prof = Engine.profile engine w in
      { name = w.Workload.name
      ; loads_m = float_of_int prof.Elag_harness.Profile.total_loads /. 1_000_000.
      ; dist = Engine.distribution engine w })
    Suite.spec

let print_table2 engine =
  pf "Table 2: load characteristics and prediction rates (measured | paper)\n";
  pf "%-14s %6s | %-23s | %-23s | %-15s | %-15s\n" "benchmark" "loadsM"
    "static %  NT/PD/EC" "dynamic %  NT/PD/EC" "NT rate" "PD rate";
  let rows = table2_rows engine in
  List.iter
    (fun r ->
      let d = r.dist in
      let p = Paper_data.find_table2 r.name in
      let paper3 f1 f2 f3 =
        match p with
        | Some p -> Printf.sprintf "%4.0f/%4.0f/%4.0f" (f1 p) (f2 p) (f3 p)
        | None -> "      -"
      in
      let paper1 f = match p with Some p -> Printf.sprintf "%5.1f" (f p) | None -> "  -" in
      pf "%-14s %6.1f | %4.0f/%4.0f/%4.0f %s | %4.0f/%4.0f/%4.0f %s | %s %s | %s %s\n"
        r.name r.loads_m d.Engine.static_nt d.Engine.static_pd d.Engine.static_ec
        (paper3 (fun p -> p.Paper_data.t2_static_nt) (fun p -> p.Paper_data.t2_static_pd)
           (fun p -> p.Paper_data.t2_static_ec))
        d.Engine.dynamic_nt d.Engine.dynamic_pd d.Engine.dynamic_ec
        (paper3 (fun p -> p.Paper_data.t2_dynamic_nt) (fun p -> p.Paper_data.t2_dynamic_pd)
           (fun p -> p.Paper_data.t2_dynamic_ec))
        (opt_f d.Engine.rate_nt) (paper1 (fun p -> p.Paper_data.t2_rate_nt))
        (opt_f d.Engine.rate_pd) (paper1 (fun p -> p.Paper_data.t2_rate_pd)))
    rows;
  let avg f = mean_exn (List.map f rows) in
  pf "%-14s %6.1f | %4.0f/%4.0f/%4.0f                | %4.0f/%4.0f/%4.0f\n" "average"
    (avg (fun r -> r.loads_m))
    (avg (fun r -> r.dist.Engine.static_nt))
    (avg (fun r -> r.dist.Engine.static_pd))
    (avg (fun r -> r.dist.Engine.static_ec))
    (avg (fun r -> r.dist.Engine.dynamic_nt))
    (avg (fun r -> r.dist.Engine.dynamic_pd))
    (avg (fun r -> r.dist.Engine.dynamic_ec))

(* --- Figure 5a: table-only speedups ----------------------------------- *)

let fig5a_sizes = [ 64; 128; 256 ]

let fig5a_speedups engine =
  Engine.map engine
    (fun w ->
      let per_size filtered =
        List.map
          (fun entries ->
            Engine.speedup engine w
              (Config.Table_only { entries; compiler_filtered = filtered }))
          fig5a_sizes
      in
      (w.Workload.name, per_size false, per_size true))
    Suite.spec

let print_fig5a engine =
  pf "Figure 5a: speedup, table-based prediction only\n";
  pf "%-14s | %-26s | %-26s\n" "benchmark" "hardware-only 64/128/256"
    "compiler-directed 64/128/256";
  let rows = fig5a_speedups engine in
  List.iter
    (fun (name, hw, cc) ->
      let s l = String.concat "/" (List.map (Printf.sprintf "%.2f") l) in
      pf "%-14s | %-26s | %-26s\n" name (s hw) (s cc))
    rows;
  let avg sel i =
    mean_exn (List.map (fun (_, hw, cc) -> List.nth (sel (hw, cc)) i) rows)
  in
  pf "%-14s | %.2f/%.2f/%.2f             | %.2f/%.2f/%.2f\n" "average"
    (avg fst 0) (avg fst 1) (avg fst 2) (avg snd 0) (avg snd 1) (avg snd 2)

(* --- Figure 5b: calc-only speedups ------------------------------------ *)

let fig5b_sizes = [ 4; 8; 16 ]

let fig5b_speedups engine =
  Engine.map engine
    (fun w ->
      ( w.Workload.name
      , List.map
          (fun n -> Engine.speedup engine w (Config.Calc_only { bric_entries = n }))
          fig5b_sizes ))
    Suite.spec

let print_fig5b engine =
  pf "Figure 5b: speedup, early address calculation only (BRIC 4/8/16)\n";
  let rows = fig5b_speedups engine in
  List.iter
    (fun (name, l) ->
      pf "%-14s | %s\n" name
        (String.concat "/" (List.map (Printf.sprintf "%.2f") l)))
    rows;
  let avg i = mean_exn (List.map (fun (_, l) -> List.nth l i) rows) in
  pf "%-14s | %.2f/%.2f/%.2f\n" "average" (avg 0) (avg 1) (avg 2)

(* --- Figure 5c: best hardware-only vs dual-path ------------------------ *)

type fig5c_row =
  { f5c_name : string
  ; table256 : float
  ; calc16 : float
  ; dual_hw : float
  ; dual_cc : float
  ; dual_cc_prof : float }

let fig5c_rows engine =
  Engine.map engine
    (fun w ->
      { f5c_name = w.Workload.name
      ; table256 =
          Engine.speedup engine w
            (Config.Table_only { entries = 256; compiler_filtered = false })
      ; calc16 = Engine.speedup engine w (Config.Calc_only { bric_entries = 16 })
      ; dual_hw =
          Engine.speedup engine w
            (Config.Dual { table_entries = 256; selection = Config.Hardware_selected })
      ; dual_cc = Engine.speedup engine w dual_cc
      ; dual_cc_prof = Engine.speedup engine w ~variant:Engine.Reclassified dual_cc })
    Suite.spec

let print_fig5c engine =
  pf "Figure 5c: speedup, hardware-only vs dual-path early address generation\n";
  pf "%-14s | %-9s %-8s %-8s %-8s %-9s\n" "benchmark" "table-256" "calc-16"
    "dual-hw" "dual-cc" "dual-cc+p";
  let rows = fig5c_rows engine in
  List.iter
    (fun r ->
      pf "%-14s | %-9.2f %-8.2f %-8.2f %-8.2f %-9.2f\n" r.f5c_name r.table256
        r.calc16 r.dual_hw r.dual_cc r.dual_cc_prof)
    rows;
  pf "%-14s | %-9.2f %-8.2f %-8.2f %-8.2f %-9.2f\n" "average"
    (mean_exn (List.map (fun r -> r.table256) rows))
    (mean_exn (List.map (fun r -> r.calc16) rows))
    (mean_exn (List.map (fun r -> r.dual_hw) rows))
    (mean_exn (List.map (fun r -> r.dual_cc) rows))
    (mean_exn (List.map (fun r -> r.dual_cc_prof) rows));
  pf "paper averages: dual-hw %.2f, dual-cc %.2f, dual-cc+profile %.2f\n"
    Paper_data.fig5c_avg_dual_hw Paper_data.fig5c_avg_dual_cc
    Paper_data.fig5c_avg_dual_cc_profiled

(* --- Table 3: profile-guided classification ---------------------------- *)

type table3_row =
  { t3_name : string
  ; t3_speedup : float
  ; t3_dist : Engine.distribution }

let table3_rows engine =
  Engine.map engine
    (fun w ->
      { t3_name = w.Workload.name
      ; t3_speedup = Engine.speedup engine w ~variant:Engine.Reclassified dual_cc
      ; t3_dist = Engine.distribution engine ~variant:Engine.Reclassified w })
    Suite.spec

let print_table3 engine =
  pf "Table 3: profile-guided classification (threshold 60%%) (measured | paper)\n";
  pf "%-14s | %-15s | %-15s | %-15s | %-15s | %-15s\n" "benchmark" "speedup"
    "static PD %" "dynamic PD %" "NT rate" "PD rate";
  let rows = table3_rows engine in
  List.iter
    (fun r ->
      let p = Paper_data.find_table3 r.t3_name in
      let pp1 f = match p with Some p -> Printf.sprintf "%5.2f" (f p) | None -> "    -" in
      let d = r.t3_dist in
      pf "%-14s | %5.2f %s | %6.2f %s | %6.2f %s | %s %s | %s %s\n" r.t3_name
        r.t3_speedup (pp1 (fun p -> p.Paper_data.t3_speedup))
        d.Engine.static_pd (pp1 (fun p -> p.Paper_data.t3_static_pd))
        d.Engine.dynamic_pd (pp1 (fun p -> p.Paper_data.t3_dynamic_pd))
        (opt_f d.Engine.rate_nt) (pp1 (fun p -> p.Paper_data.t3_rate_nt))
        (opt_f d.Engine.rate_pd) (pp1 (fun p -> p.Paper_data.t3_rate_pd)))
    rows;
  pf "%-14s | %5.2f (paper 1.38)\n" "average"
    (mean_exn (List.map (fun r -> r.t3_speedup) rows))

(* --- Table 4: MediaBench ------------------------------------------------ *)

type table4_row =
  { t4_name : string
  ; t4_loads_m : float
  ; t4_dist : Engine.distribution
  ; t4_speedup : float }

let table4_rows engine =
  Engine.map engine
    (fun w ->
      let prof = Engine.profile engine w in
      { t4_name = w.Workload.name
      ; t4_loads_m = float_of_int prof.Elag_harness.Profile.total_loads /. 1_000_000.
      ; t4_dist = Engine.distribution engine w
      ; t4_speedup = Engine.speedup engine w dual_cc })
    Suite.media

let print_table4 engine =
  pf "Table 4: MediaBench characteristics and speedup (measured | paper)\n";
  pf "%-14s %6s | %-20s | %-20s | %-13s | %-13s | %-13s\n" "benchmark" "loadsM"
    "static % NT/PD/EC" "dynamic % NT/PD/EC" "NT rate" "PD rate" "speedup";
  let rows = table4_rows engine in
  List.iter
    (fun r ->
      let d = r.t4_dist in
      let p = Paper_data.find_table4 r.t4_name in
      let pp1 f = match p with Some p -> Printf.sprintf "%5.2f" (f p) | None -> "    -" in
      pf "%-14s %6.1f | %4.0f/%4.0f/%4.0f | %4.0f/%4.0f/%4.0f | %s %s | %s %s | %5.2f %s\n"
        r.t4_name r.t4_loads_m d.Engine.static_nt d.Engine.static_pd
        d.Engine.static_ec d.Engine.dynamic_nt d.Engine.dynamic_pd
        d.Engine.dynamic_ec (opt_f d.Engine.rate_nt)
        (pp1 (fun p -> p.Paper_data.t4_rate_nt)) (opt_f d.Engine.rate_pd)
        (pp1 (fun p -> p.Paper_data.t4_rate_pd)) r.t4_speedup
        (pp1 (fun p -> p.Paper_data.t4_speedup)))
    rows;
  pf "%-14s        |                      |                      |        |        | %5.2f (paper 1.19)\n"
    "average"
    (mean_exn (List.map (fun r -> r.t4_speedup) rows))

let run_all engine =
  (* One flat parallel sweep over the whole grid: finer-grained jobs
     than per-table row maps, so the pool stays saturated; the table
     printers below then run entirely out of cache. *)
  ignore (Engine.run_jobs engine (grid ()));
  print_table2 engine;
  pf "\n";
  print_fig5a engine;
  pf "\n";
  print_fig5b engine;
  pf "\n";
  print_fig5c engine;
  pf "\n";
  print_table3 engine;
  pf "\n";
  print_table4 engine
