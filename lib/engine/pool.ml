let default_jobs () = Domain.recommended_domain_count ()

let run ~jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map f items
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (f items.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index was claimed exactly once *))
      results
  end

let map_list ~jobs f items = Array.to_list (run ~jobs f (Array.of_list items))
