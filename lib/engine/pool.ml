exception Failures of (int * string) list

let () =
  Printexc.register_printer (function
    | Failures fs ->
      Some
        (Printf.sprintf "Pool.Failures: %d jobs failed: %s" (List.length fs)
           (String.concat "; "
              (List.map (fun (i, m) -> Printf.sprintf "[%d] %s" i m) fs)))
    | _ -> None)

let default_jobs () = Domain.recommended_domain_count ()

let run ~jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  let results : ('b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  let exec i =
    results.(i) <-
      Some
        (try Ok (f items.(i))
         with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  if jobs <= 1 then
    (* Same failure semantics as the parallel path: every job runs and
       every failure is collected, even after an early one. *)
    for i = 0 to n - 1 do
      exec i
    done
  else begin
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        exec i;
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  let failures = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Some (Error eb) -> failures := (i, eb) :: !failures
      | Some (Ok _) -> ()
      | None -> assert false (* every index was claimed exactly once *))
    results;
  match List.rev !failures with
  | [] ->
    Array.map
      (function Some (Ok v) -> v | _ -> assert false (* no failures *))
      results
  | [ (_, (e, bt)) ] ->
    (* A lone failure keeps its identity (and backtrace) so callers'
       specific handlers — Compile.Error, Lint.Rejected — still fire. *)
    Printexc.raise_with_backtrace e bt
  | many ->
    raise (Failures (List.map (fun (i, (e, _)) -> (i, Printexc.to_string e)) many))

let map_list ~jobs f items = Array.to_list (run ~jobs f (Array.of_list items))

(* --- supervised runs --------------------------------------------------- *)

(* The graceful-degradation mode the fuzz campaigns (and any long
   unattended run) need: a job that times out or keeps crashing
   becomes a structured per-index result instead of an exception that
   aborts the whole batch.

   Cancellation is cooperative — a domain cannot be killed, so each
   attempt gets a fresh {!Elag_verify.Deadline} and the job function
   is expected to poll it from its hot path (simulator jobs poll once
   per retired instruction through the observer hook).  A job that
   never polls cannot be reclaimed; everything this repository runs on
   the pool retires instructions, so every job polls. *)

module Deadline = Elag_verify.Deadline

type failure =
  | Job_failed of { attempts : int; message : string }
  | Job_timeout of { timeout_ms : int; attempts : int }

type 'b outcome = ('b, failure) result

let pp_failure ppf = function
  | Job_failed { attempts; message } ->
    Fmt.pf ppf "failed after %d attempt%s: %s" attempts
      (if attempts = 1 then "" else "s")
      message
  | Job_timeout { timeout_ms; attempts } ->
    Fmt.pf ppf "timed out (%d ms budget, attempt %d)" timeout_ms attempts

let failure_to_string f = Fmt.str "%a" pp_failure f

let run_supervised ?timeout_ms ?(retries = 0) ?(backoff_ms = 5) ~jobs f
    (items : 'a array) : 'b outcome array =
  if retries < 0 then invalid_arg "Pool.run_supervised: negative retries";
  (match timeout_ms with
  | Some t when t <= 0 -> invalid_arg "Pool.run_supervised: non-positive timeout"
  | _ -> ());
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  let results : 'b outcome option array = Array.make n None in
  let attempt_one item =
    let deadline = Deadline.opt timeout_ms in
    match f deadline item with
    | v -> Ok v
    | exception Deadline.Job_timeout { timeout_ms } -> Error (`Timeout timeout_ms)
    | exception e -> Error (`Crash (Printexc.to_string e))
  in
  let exec i =
    (* Bounded retry with exponential backoff covers transient crashes
       (a flaky external resource, an allocation blip); a timeout is
       never retried — a deterministic job that overran its wall-clock
       budget once will overrun it again, and retrying would stall the
       whole batch behind one pathological input. *)
    let rec go attempt =
      match attempt_one items.(i) with
      | Ok v -> Ok v
      | Error (`Timeout timeout_ms) ->
        Error (Job_timeout { timeout_ms; attempts = attempt })
      | Error (`Crash message) ->
        if attempt <= retries then begin
          Unix.sleepf
            (float_of_int (backoff_ms * (1 lsl (attempt - 1))) /. 1000.);
          go (attempt + 1)
        end
        else Error (Job_failed { attempts = attempt; message })
    in
    results.(i) <- Some (go 1)
  in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      exec i
    done
  else begin
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        exec i;
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  Array.map
    (function
      | Some r -> r
      | None -> assert false (* every index was claimed exactly once *))
    results

let outcome_failures outcomes =
  let acc = ref [] in
  Array.iteri
    (fun i -> function Error f -> acc := (i, f) :: !acc | Ok _ -> ())
    outcomes;
  List.rev !acc
