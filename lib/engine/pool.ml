exception Failures of (int * string) list

let () =
  Printexc.register_printer (function
    | Failures fs ->
      Some
        (Printf.sprintf "Pool.Failures: %d jobs failed: %s" (List.length fs)
           (String.concat "; "
              (List.map (fun (i, m) -> Printf.sprintf "[%d] %s" i m) fs)))
    | _ -> None)

let default_jobs () = Domain.recommended_domain_count ()

let run ~jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  let results : ('b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  let exec i =
    results.(i) <-
      Some
        (try Ok (f items.(i))
         with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  if jobs <= 1 then
    (* Same failure semantics as the parallel path: every job runs and
       every failure is collected, even after an early one. *)
    for i = 0 to n - 1 do
      exec i
    done
  else begin
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        exec i;
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  let failures = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Some (Error eb) -> failures := (i, eb) :: !failures
      | Some (Ok _) -> ()
      | None -> assert false (* every index was claimed exactly once *))
    results;
  match List.rev !failures with
  | [] ->
    Array.map
      (function Some (Ok v) -> v | _ -> assert false (* no failures *))
      results
  | [ (_, (e, bt)) ] ->
    (* A lone failure keeps its identity (and backtrace) so callers'
       specific handlers — Compile.Error, Lint.Rejected — still fire. *)
    Printexc.raise_with_backtrace e bt
  | many ->
    raise (Failures (List.map (fun (i, (e, _)) -> (i, Printexc.to_string e)) many))

let map_list ~jobs f items = Array.to_list (run ~jobs f (Array.of_list items))
