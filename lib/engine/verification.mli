(** The repository's standing verification suites: the curated fault
    matrix, the whole-suite lint pass, and the whole-suite differential
    oracle, all driven through an {!Engine} so artifacts are shared
    with ordinary experiments.

    The fault matrix pairs each plan with the workload and mechanism it
    corrupts.  Structures exist only under the mechanisms that
    instantiate them (address table under [table-*]/[dual-*], BRIC
    under [calc-*], R_addr under [dual-*]), so the matrix spans four
    mechanism presets to cover every fault target and all three load
    specifiers on three workloads.  Everything is seeded and
    retire-count triggered: the suite is deterministic and its
    once-verified invariants are pinned forever. *)

module Fault = Elag_verify.Fault
module Lint = Elag_verify.Lint
module Oracle = Elag_verify.Oracle

type entry =
  { workload : string  (** suite workload name *)
  ; mechanism : string  (** mechanism preset name *)
  ; plan : Fault.plan }

val fault_matrix : entry list
(** The shipped suite: >= 20 seeded plans over three workloads,
    covering every fault target. *)

val fault_smoke : entry list
(** One plan per fault-target class on the cheapest workload — the CI
    smoke subset. *)

val run_fault_suite :
  ?entries:entry list -> Engine.t -> (entry * Fault.outcome) list
(** Run the plans (default {!fault_matrix}), sharing one fault-free
    baseline per (workload, mechanism) pair; results in matrix
    order. *)

val run_lint_suite : Engine.t -> (string * Lint.report) list
(** Lint the compiled (and engine-cached) program of every suite
    workload. *)

val run_oracle_suite :
  ?mechanism:Elag_sim.Config.mechanism ->
  ?workloads:Elag_workloads.Workload.t list ->
  Engine.t ->
  (string * Oracle.report) list
(** Differential-oracle the full timed simulation of every workload
    (default: the whole suite under [dual-cc]). *)

val report_json :
  faults:(entry * Fault.outcome) list ->
  lints:(string * Lint.report) list ->
  oracles:(string * Oracle.report) list ->
  Elag_telemetry.Json.t
(** Stable JSON artifact over the three suites' results. *)
