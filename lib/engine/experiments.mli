(** Generators for every table and figure in the paper's evaluation
    section, each printing measured values side by side with the
    paper's.  All grid points are simulated on the engine's worker
    pool; rows are merged in suite order, so output is identical at
    every [-j] setting. *)

val mean : float list -> float option
(** Arithmetic mean; [None] on the empty list (no silent zeros). *)

val mean_exn : float list -> float
(** @raise Invalid_argument on the empty list. *)

val grid : unit -> Engine.Job.t list
(** The full evaluation grid — every job the paper's tables and
    figures consume: SPEC workloads crossed with
    {!Elag_sim.Config.Mechanism.all} plus the profile-reclassified
    dual-path point of Table 3, and MediaBench workloads under
    baseline and dual-cc.  This is the sweep behind {!run_all} and
    [BENCH_engine.json]. *)

val print_table2 : Engine.t -> unit
val print_fig5a : Engine.t -> unit
val print_fig5b : Engine.t -> unit
val print_fig5c : Engine.t -> unit
val print_table3 : Engine.t -> unit
val print_table4 : Engine.t -> unit

val run_all : Engine.t -> unit
(** Pre-warms the engine's caches with {!grid} (one parallel sweep over
    every job), then prints every artifact. *)
