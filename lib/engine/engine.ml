module Config = Elag_sim.Config
module Pipeline = Elag_sim.Pipeline
module Compile = Elag_harness.Compile
module Profile = Elag_harness.Profile
module Workload = Elag_workloads.Workload
module Program = Elag_isa.Program
module Insn = Elag_isa.Insn
module Json = Elag_telemetry.Json

type variant = Classified | Reclassified

type t =
  { jobs : int
  ; base_config : Config.t
  ; programs : (string, Program.t) Cache.t        (* workload name *)
  ; profiles : (string, Profile.t) Cache.t
  ; reclassifieds : (string, Program.t) Cache.t
  ; sims : (string, Pipeline.stats) Cache.t }     (* workload + variant + config *)

let create ?jobs ?(config = Config.default) () =
  { jobs = (match jobs with Some j -> max 1 j | None -> Pool.default_jobs ())
  ; base_config = config
  ; programs = Cache.create ()
  ; profiles = Cache.create ()
  ; reclassifieds = Cache.create ()
  ; sims = Cache.create ~size:256 () }

let jobs t = t.jobs
let base_config t = t.base_config

(* Every artifact the engine hands out has passed the static lint:
   a malformed compilation result is rejected here, before it can burn
   a simulation slot or simulate with meaningless timing. *)
let lint_checked program =
  Elag_verify.Lint.enforce program;
  program

let program t (w : Workload.t) =
  Cache.find_or_compute t.programs w.Workload.name (fun () ->
      lint_checked (Compile.compile w.Workload.source))

let profile t (w : Workload.t) =
  Cache.find_or_compute t.profiles w.Workload.name (fun () ->
      Profile.collect (program t w))

let reclassified t (w : Workload.t) =
  Cache.find_or_compute t.reclassifieds w.Workload.name (fun () ->
      lint_checked (Profile.reclassify (profile t w) (program t w)))

let program_of t w = function
  | Classified -> program t w
  | Reclassified -> reclassified t w

let variant_suffix = function Classified -> "" | Reclassified -> "+prof"

let simulate ?(variant = Classified) ?config t (w : Workload.t) mechanism =
  let cfg =
    Config.with_mechanism mechanism (Option.value config ~default:t.base_config)
  in
  (* The key covers the full machine configuration, not just the
     mechanism name, so per-job config overrides can never collide. *)
  let key =
    w.Workload.name ^ variant_suffix variant ^ "|" ^ Json.to_string (Config.to_json cfg)
  in
  Cache.find_or_compute t.sims key (fun () ->
      let stats, output = Pipeline.simulate cfg (program_of t w variant) in
      (match w.Workload.expected_output with
      | Some expected when String.trim output <> String.trim expected ->
        failwith
          (Printf.sprintf "%s: output mismatch under %s%s" w.Workload.name
             (Config.mechanism_name mechanism) (variant_suffix variant))
      | _ -> ());
      stats)

let base_cycles ?config t w =
  (simulate ?config t w Config.No_early).Pipeline.cycles

let speedup ?variant ?config t w mechanism =
  let s = simulate ?variant ?config t w mechanism in
  float_of_int (base_cycles ?config t w) /. float_of_int s.Pipeline.cycles

type distribution =
  { static_nt : float; static_pd : float; static_ec : float
  ; dynamic_nt : float; dynamic_pd : float; dynamic_ec : float
  ; rate_nt : float option
  ; rate_pd : float option
  ; total_dynamic_loads : int }

let spec_of_insn = function
  | Insn.Load { spec; _ } -> Some spec
  | _ -> None

let distribution ?(variant = Classified) t w =
  let prof = profile t w in
  let prog = program_of t w variant in
  let loads = Program.static_loads prog in
  let pcs_of spec =
    List.filter_map
      (fun (pc, insn) -> if spec_of_insn insn = Some spec then Some pc else None)
      loads
  in
  let nt = pcs_of Insn.Ld_n and pd = pcs_of Insn.Ld_p and ec = pcs_of Insn.Ld_e in
  let st_total = List.length loads in
  let dyn count_pcs =
    List.fold_left (fun acc pc -> acc + Profile.executions prof pc) 0 count_pcs
  in
  let dyn_nt = dyn nt and dyn_pd = dyn pd and dyn_ec = dyn ec in
  let dyn_total = max 1 (dyn_nt + dyn_pd + dyn_ec) in
  let pct a b = 100. *. float_of_int a /. float_of_int (max 1 b) in
  let rate pcs = Elag_predict.Ideal.aggregate_rate prof.Profile.rates pcs in
  { static_nt = pct (List.length nt) st_total
  ; static_pd = pct (List.length pd) st_total
  ; static_ec = pct (List.length ec) st_total
  ; dynamic_nt = pct dyn_nt dyn_total
  ; dynamic_pd = pct dyn_pd dyn_total
  ; dynamic_ec = pct dyn_ec dyn_total
  ; rate_nt = Option.map (fun r -> 100. *. r) (rate nt)
  ; rate_pd = Option.map (fun r -> 100. *. r) (rate pd)
  ; total_dynamic_loads = dyn_total }

module Job = struct
  type nonrec t =
    { workload : Workload.t
    ; mechanism : Config.mechanism
    ; variant : variant
    ; config : Config.t }

  let make ?(variant = Classified) ?(config = Config.default) workload mechanism =
    { workload; mechanism; variant; config }

  let name j =
    j.workload.Workload.name ^ "/" ^ Config.mechanism_name j.mechanism
    ^ variant_suffix j.variant
end

let map t f items = Pool.map_list ~jobs:t.jobs f items

let run_job t (j : Job.t) =
  simulate ~variant:j.Job.variant ~config:j.Job.config t j.Job.workload j.Job.mechanism

let run_jobs t js = map t (fun j -> (j, run_job t j)) js

let sweep_json t js =
  let row (j : Job.t) =
    let s = run_job t j in
    let base = base_cycles ~config:j.Job.config t j.Job.workload in
    let w = j.Job.workload in
    Json.Obj
      [ ("workload", Json.String w.Workload.name)
      ; ("suite", Json.String (Workload.suite_name w.Workload.suite))
      ; ("mechanism", Config.mechanism_to_json j.Job.mechanism)
      ; ( "variant"
        , Json.String
            (match j.Job.variant with
            | Classified -> "classified"
            | Reclassified -> "reclassified") )
      ; ("instructions", Json.Int s.Pipeline.instructions)
      ; ("cycles", Json.Int s.Pipeline.cycles)
      ; ( "ipc"
        , Json.Float
            (float_of_int s.Pipeline.instructions
            /. float_of_int (max 1 s.Pipeline.cycles)) )
      ; ( "speedup"
        , Json.Float (float_of_int base /. float_of_int (max 1 s.Pipeline.cycles)) )
      ]
  in
  Json.Obj
    [ ("schema", Json.String "elag.engine.sweep.v1")
    ; ("config", Config.to_json t.base_config)
    ; ("job_count", Json.Int (List.length js))
    ; ("results", Json.List (map t row js)) ]
