(** Differential fuzzing campaign driver.

    One iteration = one seeded program (EPA-32 typed construction, or
    MiniC through the front-end every [minic_every]-th iteration)
    linted and run through every configured mechanism preset under the
    differential oracle, with a seeded fault plan layered on every
    [fault_every]-th iteration.  Iterations are pure functions of
    their seed and fan out on the supervised pool
    ({!Elag_engine.Pool.run_supervised}), so the summary is
    byte-identical at every jobs setting; hung iterations surface as
    [Job_timeout] failures without disturbing the rest.

    EPA findings are shrunk against the oracle's failure signature and
    persisted to the corpus (deduplicated by fingerprint, written
    serially after the pool drains). *)

type config =
  { seed : int
  ; iters : int
  ; mechanisms : Elag_sim.Config.mechanism list
  ; gen_params : Gen.params
  ; minic_every : int
    (** every k-th iteration compiles a random MiniC source instead of
        generating EPA-32 directly; 0 disables *)
  ; fault_every : int
    (** every k-th iteration layers a seeded fault plan; 0 disables *)
  ; mutation : string option
    (** planted reference mutation ({!Gen.mutation_names}) — the
        guarded test hook proving the campaign catches real bugs *)
  ; timeout_ms : int option  (** per-iteration wall-clock budget *)
  ; retries : int  (** crash retries per iteration (timeouts never retry) *)
  ; corpus_dir : string option  (** where minimal repros are persisted *) }

val default : config
(** seed 0, 100 iterations, all mechanisms, defaults for the rest. *)

type kind = Divergence | Fault_violation | Lint_reject | Crash

val kind_to_string : kind -> string

type finding =
  { f_iter : int
  ; f_seed : int
  ; f_source : string  (** ["epa"] or ["minic"] *)
  ; f_mechanism : string
  ; f_kind : kind
  ; f_detail : string  (** oracle signature / invariant / exception *)
  ; f_report : Elag_telemetry.Json.t
  ; f_listing : string
  ; f_insns : int
  ; f_shrunk : bool
  ; f_fingerprint : string }

type summary =
  { cfg : config
  ; jobs : int
  ; iterations : int  (** iterations actually run (budget may stop early) *)
  ; oracle_runs : int
  ; fault_runs : int
  ; findings : finding list
  ; failures : (int * Elag_engine.Pool.failure) list
  ; saved : string list  (** corpus metadata paths written this run *) }

val run : ?jobs:int -> ?budget_ms:int -> config -> summary
(** Run the campaign.  [jobs] (default 1) sizes the worker pool;
    [budget_ms] stops scheduling new batches once the wall-clock
    budget is spent (completed iterations are never discarded).
    Without [budget_ms] the summary is byte-identical at every [jobs]
    setting. *)

val ok : summary -> bool
(** No findings and no job failures. *)

val summary_json : summary -> Elag_telemetry.Json.t
(** Deterministic summary (config echo, metric counters, findings,
    failures, corpus paths); never includes [jobs] or wall-clock
    values, so equal campaigns print byte-identical reports. *)
