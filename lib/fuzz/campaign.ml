(* Differential fuzzing campaigns.

   One iteration = one seeded program (EPA-32 typed construction, or
   MiniC through the front-end every [minic_every]-th iteration) run
   through every mechanism preset under the differential oracle, with
   a seeded fault plan layered on some iterations.  Iterations are
   pure functions of the per-iteration seed, so they fan out on the
   supervised pool and the merged summary is byte-identical at every
   [-j] setting; per-iteration seeds are drawn serially from the
   master stream before the fan-out.

   On a finding, the offending EPA program is shrunk against the
   oracle's failure signature and the minimal repro is persisted to
   the corpus (serially, after the pool drains — no parallel file
   writes).  An iteration stops at its first finding: with a planted
   mutation every mechanism diverges identically, and for real bugs
   the per-mechanism re-runs of one suspect program belong in the
   repro workflow, not the campaign loop. *)

module Config = Elag_sim.Config
module Oracle = Elag_verify.Oracle
module Lint = Elag_verify.Lint
module Fault = Elag_verify.Fault
module Deadline = Elag_verify.Deadline
module Xorshift = Elag_verify.Xorshift
module Pool = Elag_engine.Pool
module Json = Elag_telemetry.Json
module Metrics = Elag_telemetry.Metrics

type config =
  { seed : int
  ; iters : int
  ; mechanisms : Config.mechanism list
  ; gen_params : Gen.params
  ; minic_every : int  (* every k-th iteration compiles MiniC; 0 = never *)
  ; fault_every : int  (* every k-th iteration layers a fault plan; 0 = never *)
  ; mutation : string option
  ; timeout_ms : int option
  ; retries : int
  ; corpus_dir : string option }

let default =
  { seed = 0
  ; iters = 100
  ; mechanisms = Config.Mechanism.all
  ; gen_params = Gen.default_params
  ; minic_every = 5
  ; fault_every = 3
  ; mutation = None
  ; timeout_ms = None
  ; retries = 0
  ; corpus_dir = None }

type kind = Divergence | Fault_violation | Lint_reject | Crash

let kind_to_string = function
  | Divergence -> "divergence"
  | Fault_violation -> "fault-violation"
  | Lint_reject -> "lint-reject"
  | Crash -> "crash"

type finding =
  { f_iter : int
  ; f_seed : int
  ; f_source : string  (* "epa" | "minic" *)
  ; f_mechanism : string
  ; f_kind : kind
  ; f_detail : string
  ; f_report : Json.t
  ; f_listing : string
  ; f_insns : int
  ; f_shrunk : bool
  ; f_fingerprint : string }

(* per-iteration result carried back through the pool *)
type iter_result =
  { r_iter : int
  ; r_seed : int
  ; r_source : string
  ; r_oracle_runs : int
  ; r_fault_runs : int
  ; r_findings : finding list }

type summary =
  { cfg : config
  ; jobs : int
  ; iterations : int
  ; oracle_runs : int
  ; fault_runs : int
  ; findings : finding list
  ; failures : (int * Pool.failure) list
  ; saved : string list  (* corpus metadata paths written this run *) }

(* Fault targets paired with a mechanism that actually owns the state
   being corrupted (mirrors Verification.fault_matrix's mapping). *)
let fault_targets =
  [| (Fault.Table_scramble { slot = 3 }, "table-256-cc")
   ; (Fault.Table_pa { slot = 5 }, "table-256-cc")
   ; (Fault.Table_state { slot = 2 }, "dual-cc")
   ; (Fault.Bric_flush, "calc-8")
   ; (Fault.Bric_delay { cycles = 8 }, "calc-8")
   ; (Fault.Raddr_unbind, "dual-cc")
   ; (Fault.Btb_target { slot = 1 }, "baseline")
   ; (Fault.Btb_scramble { slot = 1 }, "baseline") |]

let mechanism_of_name name =
  match Config.Mechanism.of_string name with
  | Some m -> m
  | None -> assert false (* static table above *)

let finding ~iter ~seed ~source ~mechanism ~kind ~detail ~report ~listing
    ~insns ~shrunk =
  { f_iter = iter
  ; f_seed = seed
  ; f_source = source
  ; f_mechanism = mechanism
  ; f_kind = kind
  ; f_detail = detail
  ; f_report = report
  ; f_listing = listing
  ; f_insns = insns
  ; f_shrunk = shrunk
  ; f_fingerprint = Corpus.fingerprint ~listing ~mechanism ~detail }

(* Shrink an EPA generator output against the failure signature: a
   candidate reproduces iff it assembles, lints and yields the same
   oracle signature under the same (mechanism, mutation). *)
let shrink_epa ~cfg ~deadline ~mutation ~signature (g : Gen.t) =
  let check items =
    match Gen.reassemble g items with
    | exception _ -> false
    | program -> (
      match Lint.check program with
      | report when not (Lint.ok report) -> false
      | _ -> (
        let reference = Option.map (fun m -> Gen.apply_mutation m program) mutation in
        match Oracle.run ~max_insns:g.Gen.budget ?reference ~deadline cfg program with
        | report -> Oracle.signature report = Some signature
        | exception (Deadline.Job_timeout _ as e) -> raise e
        | exception _ -> false))
  in
  let items = Shrink.minimize ~check g.Gen.items in
  let program = Gen.reassemble g items in
  (Fmt.str "%a" Elag_isa.Program.pp program, Shrink.insn_count items)

let run_iteration config deadline (iter, seed) =
  let source =
    if config.minic_every > 0 && (iter + 1) mod config.minic_every = 0 then
      "minic"
    else "epa"
  in
  let oracle_runs = ref 0 in
  let fault_runs = ref 0 in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let finish () =
    { r_iter = iter
    ; r_seed = seed
    ; r_source = source
    ; r_oracle_runs = !oracle_runs
    ; r_fault_runs = !fault_runs
    ; r_findings = List.rev !findings }
  in
  let mk = finding ~iter ~seed ~source in
  (* generate (compile) — a crash here is a finding, with the seed
     preserved, not a dead worker *)
  match
    match source with
    | "epa" ->
      let g = Gen.program ~params:config.gen_params seed in
      Ok (Some g, g.Gen.program, g.Gen.budget)
    | _ ->
      let program = Elag_harness.Compile.compile (Gen.minic seed) in
      Ok (None, program, Gen.minic_budget)
  with
  | exception e ->
    add
      (mk ~mechanism:"-" ~kind:Crash
         ~detail:(Printf.sprintf "generation: %s" (Printexc.to_string e))
         ~report:Json.Null ~listing:"" ~insns:0 ~shrunk:false);
    finish ()
  | Error _ -> assert false
  | Ok (g, program, budget) -> (
    let listing () = Fmt.str "%a" Elag_isa.Program.pp program in
    match Lint.check program with
    | lint when not (Lint.ok lint) ->
      add
        (mk ~mechanism:"-" ~kind:Lint_reject
           ~detail:
             (Fmt.str "%a" Lint.pp_issue (List.hd lint.Lint.issues))
           ~report:(Lint.to_json lint) ~listing:(listing ())
           ~insns:(Elag_isa.Program.length program) ~shrunk:false);
      finish ()
    | _ -> (
      (* differential oracle across every mechanism preset *)
      let stop = ref false in
      List.iter
        (fun mechanism ->
          if not !stop then begin
            Deadline.check deadline;
            let cfg = Config.with_mechanism mechanism Config.default in
            let mech_name = Config.Mechanism.to_string mechanism in
            incr oracle_runs;
            match
              Oracle.run ~max_insns:budget
                ?reference:
                  (Option.map
                     (fun m -> Gen.apply_mutation m program)
                     config.mutation)
                ~deadline cfg program
            with
            | exception (Deadline.Job_timeout _ as e) -> raise e
            | exception e ->
              stop := true;
              add
                (mk ~mechanism:mech_name ~kind:Crash
                   ~detail:(Printexc.to_string e) ~report:Json.Null
                   ~listing:(listing ())
                   ~insns:(Elag_isa.Program.length program) ~shrunk:false)
            | report -> (
              match Oracle.signature report with
              | None -> ()
              | Some signature ->
                stop := true;
                let listing, insns, shrunk =
                  match g with
                  | Some g -> (
                    match
                      shrink_epa ~cfg ~deadline ~mutation:config.mutation
                        ~signature g
                    with
                    | l, n -> (l, n, true)
                    | exception (Deadline.Job_timeout _ as e) -> raise e
                    | exception _ ->
                      ( Fmt.str "%a" Elag_isa.Program.pp program
                      , Elag_isa.Program.length program
                      , false ))
                  | None ->
                    ( listing ()
                    , Elag_isa.Program.length program
                    , false )
                in
                add
                  (mk ~mechanism:mech_name ~kind:Divergence ~detail:signature
                     ~report:(Oracle.to_json report) ~listing ~insns ~shrunk))
          end)
        config.mechanisms;
      (* fault layer: seeded plan on clean EPA programs *)
      if
        (not !stop) && config.fault_every > 0
        && (iter + 1) mod config.fault_every = 0
        && source = "epa"
      then begin
        let frng = Xorshift.create (seed lxor 0xFA17) in
        let target, mech_name =
          fault_targets.(Xorshift.int frng (Array.length fault_targets))
        in
        let cfg =
          Config.with_mechanism (mechanism_of_name mech_name) Config.default
        in
        match Fault.baseline ~max_insns:budget ~deadline cfg program with
        | exception (Deadline.Job_timeout _ as e) -> raise e
        | exception e ->
          add
            (mk ~mechanism:mech_name ~kind:Crash
               ~detail:(Printf.sprintf "fault baseline: %s" (Printexc.to_string e))
               ~report:Json.Null ~listing:(listing ())
               ~insns:(Elag_isa.Program.length program) ~shrunk:false)
        | base ->
          let retired = max 1 base.Fault.base_retired in
          let plan =
            { Fault.name = Fmt.str "fuzz-%a" Fault.pp_target target
            ; seed = Xorshift.next frng
            ; first = 1 + Xorshift.int frng retired
            ; period = Some (max 1 (retired / 5))
            ; target }
          in
          incr fault_runs;
          match Fault.run_plan ~max_insns:budget ~deadline ~baseline:base cfg program plan with
          | exception (Deadline.Job_timeout _ as e) -> raise e
          | exception e ->
            add
              (mk ~mechanism:mech_name ~kind:Crash
                 ~detail:(Printf.sprintf "fault plan: %s" (Printexc.to_string e))
                 ~report:Json.Null ~listing:(listing ())
                 ~insns:(Elag_isa.Program.length program) ~shrunk:false)
          | outcome ->
            (* On arbitrary programs only the architectural invariants
               are universal: corrupted hint state may legitimately
               *help* timing on a program the plan wasn't curated for,
               so cycles_ok is a curated-suite check, not a fuzz one. *)
            if not (outcome.Fault.output_ok && outcome.Fault.stream_ok) then
              add
                (mk ~mechanism:mech_name ~kind:Fault_violation
                   ~detail:
                     (Printf.sprintf "%s: output_ok=%b stream_ok=%b"
                        plan.Fault.name outcome.Fault.output_ok
                        outcome.Fault.stream_ok)
                   ~report:(Fault.outcome_to_json outcome)
                   ~listing:(listing ())
                   ~insns:(Elag_isa.Program.length program) ~shrunk:false)
      end;
      finish ()))

let run ?(jobs = 1) ?budget_ms config =
  if config.iters < 0 then invalid_arg "Campaign.run: negative iters";
  if config.mechanisms = [] then invalid_arg "Campaign.run: no mechanisms";
  (* per-iteration seeds drawn serially up front: the fan-out order
     can never perturb the seed sequence *)
  let master = Xorshift.create config.seed in
  let seeds = Array.init config.iters (fun i -> (i, Xorshift.next master)) in
  let started = Unix.gettimeofday () in
  let batch_size = max 8 (4 * jobs) in
  let results = ref [] in
  let failures = ref [] in
  let completed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !completed < config.iters do
    let remaining = config.iters - !completed in
    let n = min batch_size remaining in
    let batch = Array.sub seeds !completed n in
    let outcomes =
      Pool.run_supervised ?timeout_ms:config.timeout_ms ~retries:config.retries
        ~jobs
        (fun deadline item -> run_iteration config deadline item)
        batch
    in
    Array.iteri
      (fun i outcome ->
        let iter, _seed = batch.(i) in
        match outcome with
        | Ok r -> results := r :: !results
        | Error f -> failures := (iter, f) :: !failures)
      outcomes;
    completed := !completed + n;
    (match budget_ms with
    | Some ms when (Unix.gettimeofday () -. started) *. 1000. >= float_of_int ms
      ->
      continue_ := false
    | _ -> ())
  done;
  let results = List.rev !results in
  let findings =
    List.concat_map (fun r -> r.r_findings) results
    |> List.sort (fun a b -> compare a.f_iter b.f_iter)
  in
  (* corpus writes happen here, serially, after the pool has drained *)
  let saved =
    match config.corpus_dir with
    | None -> []
    | Some dir ->
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun f ->
          if f.f_listing = "" || Hashtbl.mem seen f.f_fingerprint then None
          else begin
            Hashtbl.add seen f.f_fingerprint ();
            let entry =
              { Corpus.fingerprint = f.f_fingerprint
              ; seed = f.f_seed
              ; source = f.f_source
              ; mechanism = f.f_mechanism
              ; kind = kind_to_string f.f_kind
              ; detail = f.f_detail
              ; mutation = config.mutation
              ; gen_params = Gen.params_to_json config.gen_params
              ; insns = f.f_insns
              ; listing = f.f_listing
              ; report = f.f_report }
            in
            Some (Corpus.save ~dir entry)
          end)
        findings
  in
  { cfg = config
  ; jobs
  ; iterations = !completed
  ; oracle_runs = List.fold_left (fun n r -> n + r.r_oracle_runs) 0 results
  ; fault_runs = List.fold_left (fun n r -> n + r.r_fault_runs) 0 results
  ; findings
  ; failures = List.rev !failures
  ; saved }

let metrics summary =
  let m = Metrics.create () in
  let set name v = Metrics.set (Metrics.counter m name) v in
  set "iterations" summary.iterations;
  set "oracle_runs" summary.oracle_runs;
  set "fault_runs" summary.fault_runs;
  set "findings" (List.length summary.findings);
  let count kind =
    List.length (List.filter (fun f -> f.f_kind = kind) summary.findings)
  in
  set "divergences" (count Divergence);
  set "fault_violations" (count Fault_violation);
  set "lint_rejects" (count Lint_reject);
  set "crashes" (count Crash);
  set "job_failures"
    (List.length
       (List.filter
          (fun (_, f) -> match f with Pool.Job_failed _ -> true | _ -> false)
          summary.failures));
  set "job_timeouts"
    (List.length
       (List.filter
          (fun (_, f) -> match f with Pool.Job_timeout _ -> true | _ -> false)
          summary.failures));
  m

let finding_to_json f =
  Json.Obj
    [ ("iter", Json.Int f.f_iter)
    ; ("seed", Json.Int f.f_seed)
    ; ("source", Json.String f.f_source)
    ; ("mechanism", Json.String f.f_mechanism)
    ; ("kind", Json.String (kind_to_string f.f_kind))
    ; ("detail", Json.String f.f_detail)
    ; ("insns", Json.Int f.f_insns)
    ; ("shrunk", Json.Bool f.f_shrunk)
    ; ("fingerprint", Json.String f.f_fingerprint) ]

let summary_json summary =
  let c = summary.cfg in
  Json.Obj
    [ ( "config"
      , Json.Obj
          [ ("seed", Json.Int c.seed)
          ; ("iters", Json.Int c.iters)
          ; ( "mechanisms"
            , Json.List
                (List.map
                   (fun m -> Json.String (Config.Mechanism.to_string m))
                   c.mechanisms) )
          ; ("gen_params", Gen.params_to_json c.gen_params)
          ; ("minic_every", Json.Int c.minic_every)
          ; ("fault_every", Json.Int c.fault_every)
          ; ( "mutation"
            , match c.mutation with
              | None -> Json.Null
              | Some m -> Json.String m )
          ; ( "timeout_ms"
            , match c.timeout_ms with
              | None -> Json.Null
              | Some t -> Json.Int t )
          ; ("retries", Json.Int c.retries) ] )
    ; ("metrics", Metrics.to_json (metrics summary))
    ; ("findings", Json.List (List.map finding_to_json summary.findings))
    ; ( "failures"
      , Json.List
          (List.map
             (fun (iter, f) ->
               Json.Obj
                 [ ("iter", Json.Int iter)
                 ; ("failure", Json.String (Pool.failure_to_string f)) ])
             summary.failures) )
    ; ("corpus_saved", Json.List (List.map (fun p -> Json.String p) summary.saved))
    ]

let ok summary = summary.findings = [] && summary.failures = []
