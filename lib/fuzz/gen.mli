(** Seeded random program generation for differential fuzzing.

    Two sources: {!program} builds random EPA-32 programs by typed
    construction — lint-clean and terminating by design (register
    classes with statically known pointer values, bounded arena
    accesses, forward-only branches plus counted-loop templates, all
    three load specifiers and all three addressing modes under tunable
    mix weights) — and {!minic} emits random MiniC sources from a
    bounded statement grammar, so the whole front-end + optimizer
    pipeline sits inside the fuzzing loop.

    Everything is a pure function of [(seed, params)]: a corpus entry
    stores those two values and regenerates its program exactly. *)

type weights =
  { alu : int
  ; ld_n : int
  ; ld_p : int
  ; ld_e : int
  ; store : int
  ; branch : int
  ; loop : int
  ; print : int }

type params =
  { segments : int  (** top-level generation steps *)
  ; segment_ops : int  (** max ops per straight-line burst *)
  ; arena_words : int  (** data arena size (32-bit words) *)
  ; max_trip : int  (** max loop trip count *)
  ; weights : weights }

val default_weights : weights
val default_params : params

type t =
  { seed : int
  ; params : params
  ; arena : int list  (** initial arena contents (seeded) *)
  ; items : Elag_isa.Program.item list
  ; program : Elag_isa.Program.t
  ; budget : int
    (** upper bound on retired instructions, with margin — pass as
        [max_insns] so a generator bug reads as [Runaway], never as a
        hang *) }

val program : ?params:params -> int -> t
(** Generate from a seed.  The result is self-checked with
    {!Elag_verify.Lint.enforce} — a construction bug fails loudly here
    instead of leaking malformed programs into a campaign where they
    would masquerade as simulator findings.  Raises [Invalid_argument]
    on non-positive [segments]/[arena_words]. *)

val reassemble : t -> Elag_isa.Program.item list -> Elag_isa.Program.t
(** Assemble a modified item list (shrinking candidates) against the
    same arena layout; raises like {!Elag_isa.Program.assemble}. *)

val listing : t -> string
(** Disassembly of the generated program. *)

val minic : int -> string
(** Seeded random MiniC source (standalone — needs no runtime
    prelude); indices are masked before bounds-modulo and loop bounds
    are literals, so compiled programs are in-bounds and terminating
    for any data values. *)

val minic_budget : int
(** Retired-instruction budget for compiled {!minic} programs. *)

(** {2 Planted mutations}

    Guarded test hooks proving the campaign catches real bugs: each
    named mutation flips one opcode in the {e reference} program
    (modelling an emulator-semantics bug) and the oracle must flag the
    first retire of the mutated instruction.  Names are recorded in
    corpus metadata so a replay can re-apply the same mutation. *)

val mutation_names : string list

val apply_mutation : string -> Elag_isa.Program.t -> Elag_isa.Program.t
(** Apply a named mutation to the first matching instruction (identity
    when no instruction matches); raises [Invalid_argument] on unknown
    names. *)

(** {2 Params (de)serialization} — corpus metadata *)

val params_to_json : params -> Elag_telemetry.Json.t
val params_of_json : Elag_telemetry.Json.t -> (params, string) result
