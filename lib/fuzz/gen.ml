(* Seeded random program generation.

   Two generators feed the differential campaigns:

   - [program]: typed construction of EPA-32 programs that are
     lint-clean *and terminating by construction*.  Registers are
     partitioned into classes (arena pointers with statically known
     values, small known index constants, free data registers), every
     memory access is derived from the known pointer model so it lands
     inside a bounded arena, control flow is forward-only except for
     counted-loop templates whose trip counts are fixed at generation
     time, and the generator tracks an exact upper bound on retired
     instructions so every run gets a tight budget.

   - [minic]: random MiniC sources from a bounded statement grammar
     (global arrays, masked index expressions, counted for-loops), fed
     through the real front-end + optimizer so the whole compilation
     pipeline sits inside the fuzzing loop, not just the simulator.

   Everything draws from a per-call {!Elag_verify.Xorshift} stream, so
   a (seed, params) pair regenerates the identical program forever —
   the property the corpus replay format relies on. *)

module Insn = Elag_isa.Insn
module Reg = Elag_isa.Reg
module Program = Elag_isa.Program
module Layout = Elag_isa.Layout
module Xorshift = Elag_verify.Xorshift
module Lint = Elag_verify.Lint
module Json = Elag_telemetry.Json

type weights =
  { alu : int
  ; ld_n : int
  ; ld_p : int
  ; ld_e : int
  ; store : int
  ; branch : int
  ; loop : int
  ; print : int }

let default_weights =
  { alu = 8; ld_n = 5; ld_p = 5; ld_e = 5; store = 4; branch = 3; loop = 3
  ; print = 2 }

type params =
  { segments : int
  ; segment_ops : int
  ; arena_words : int
  ; max_trip : int
  ; weights : weights }

let default_params =
  { segments = 12
  ; segment_ops = 5
  ; arena_words = 64
  ; max_trip = 12
  ; weights = default_weights }

type t =
  { seed : int
  ; params : params
  ; arena : int list
  ; items : Program.item list
  ; program : Program.t
  ; budget : int }

(* Register classes.  The generator never touches registers outside
   these (plus [arg_first] for print staging), so the calling
   convention's reserved registers stay untouched and every operand is
   trivially valid under the lint. *)
let addr_regs = [| 13; 14; 15; 16 |]
let idx_regs = [| 17; 18; 19 |]
let data_regs = [| 20; 21; 22; 23; 24; 25; 26; 27 |]
let cnt_reg = 28

type state =
  { rng : Xorshift.t
  ; p : params
  ; arena_base : int
  ; mutable rev : Program.item list
  ; mutable fresh : int
  ; mutable bound : int  (* upper bound on retired instructions *)
  ; mutable scale : int  (* enclosing loop trip product (1 outside) *)
  ; addr : int array  (* known arena word index per addr register *)
  ; idx : int array  (* known constant per index register *) }

let emit st insn =
  st.rev <- Program.Insn insn :: st.rev;
  st.bound <- st.bound + st.scale

let emit_label st l = st.rev <- Program.Label l :: st.rev

let fresh_label st =
  let l = Printf.sprintf "L%d" st.fresh in
  st.fresh <- st.fresh + 1;
  l

let pick rng arr = arr.(Xorshift.int rng (Array.length arr))

let data st = pick st.rng data_regs

let set_addr st ai w =
  emit st (Insn.Li { dst = addr_regs.(ai); imm = st.arena_base + (4 * w) });
  st.addr.(ai) <- w

let set_idx st ii v =
  emit st (Insn.Li { dst = idx_regs.(ii); imm = v });
  st.idx.(ii) <- v

let alu_ops =
  [| Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Rem; Insn.And; Insn.Or
   ; Insn.Xor; Insn.Sll; Insn.Srl; Insn.Sra; Insn.Slt; Insn.Sle; Insn.Seq
   ; Insn.Sne |]

let sizes = [| Insn.Byte; Insn.Half; Insn.Word |]
let signs = [| Insn.Signed; Insn.Unsigned |]
let conds = [| Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge |]

let gen_alu st =
  let op = pick st.rng alu_ops in
  let src2 =
    if Xorshift.bool st.rng then Insn.R (data st)
    else Insn.I (Xorshift.int st.rng 256 - 128)
  in
  emit st (Insn.Alu { op; dst = data st; src1 = data st; src2 })

(* A word slot inside the arena, addressed through the static pointer
   model: the effective address is provably in bounds whatever the
   run-time data values are. *)
let gen_addr_mode st ~ld_e =
  let w = Xorshift.int st.rng st.p.arena_words in
  if ld_e then begin
    (* ld_e must be register+offset with a non-zero base (lint rule) *)
    let ai = Xorshift.int st.rng (Array.length addr_regs) in
    Insn.Base_offset (addr_regs.(ai), 4 * (w - st.addr.(ai)))
  end
  else
    match Xorshift.int st.rng 3 with
    | 0 ->
      let ai = Xorshift.int st.rng (Array.length addr_regs) in
      Insn.Base_offset (addr_regs.(ai), 4 * (w - st.addr.(ai)))
    | 1 ->
      let ai = Xorshift.int st.rng (Array.length addr_regs) in
      let ii = Xorshift.int st.rng (Array.length idx_regs) in
      let need = 4 * (w - st.addr.(ai)) in
      if st.idx.(ii) <> need then set_idx st ii need;
      Insn.Base_index (addr_regs.(ai), idx_regs.(ii))
    | _ -> Insn.Absolute (st.arena_base + (4 * w))

let gen_load st spec =
  let addr = gen_addr_mode st ~ld_e:(spec = Insn.Ld_e) in
  emit st
    (Insn.Load
       { spec
       ; size = pick st.rng sizes
       ; sign = pick st.rng signs
       ; dst = data st
       ; addr })

let gen_store st =
  let addr = gen_addr_mode st ~ld_e:false in
  emit st (Insn.Store { size = pick st.rng sizes; src = data st; addr })

let gen_print st =
  emit st
    (Insn.Alu { op = Insn.Add; dst = Reg.arg_first; src1 = data st; src2 = Insn.I 0 });
  emit st (Insn.Syscall Insn.Print_int)

(* Forward skip: both outcomes of the branch land on code that exists,
   and the skipped run is still counted toward the bound. *)
let rec gen_branch_skip st =
  let l = fresh_label st in
  let src2 =
    if Xorshift.bool st.rng then Insn.R (data st)
    else Insn.I (Xorshift.int st.rng 16)
  in
  emit st
    (Insn.Branch { cond = pick st.rng conds; src1 = data st; src2; target = l });
  let n = 1 + Xorshift.int st.rng 3 in
  for _ = 1 to n do
    gen_straight st
  done;
  emit_label st l

and gen_straight st =
  (* straight-line op mix (no loops, no further nesting decisions) *)
  let w = st.p.weights in
  let total = w.alu + w.ld_n + w.ld_p + w.ld_e + w.store + w.print in
  let r = Xorshift.int st.rng (max 1 total) in
  if r < w.alu then gen_alu st
  else if r < w.alu + w.ld_n then gen_load st Insn.Ld_n
  else if r < w.alu + w.ld_n + w.ld_p then gen_load st Insn.Ld_p
  else if r < w.alu + w.ld_n + w.ld_p + w.ld_e then gen_load st Insn.Ld_e
  else if r < w.alu + w.ld_n + w.ld_p + w.ld_e + w.store then gen_store st
  else gen_print st

(* Counted-loop template: a striding pointer walks the arena while a
   dedicated counter runs down to zero, so the loop terminates after
   exactly [trip] iterations and every access through the striding
   pointer stays inside the arena by the span inequality below.  This
   is the pattern that exercises the ld_p table state machine
   (Learning -> Predicting transitions on a constant stride) and the
   ld_e R_addr binding on a loop-carried base. *)
let gen_loop st =
  let trip = 1 + Xorshift.int st.rng st.p.max_trip in
  let stride_w = Xorshift.int st.rng 3 in
  let off_w = Xorshift.int st.rng 3 in
  let span = off_w + (stride_w * (trip - 1)) in
  if span >= st.p.arena_words then gen_straight st
  else begin
    let start_w = Xorshift.int st.rng (st.p.arena_words - span) in
    let ai = Xorshift.int st.rng (Array.length addr_regs) in
    set_addr st ai start_w;
    emit st (Insn.Li { dst = cnt_reg; imm = trip });
    let l = fresh_label st in
    emit_label st l;
    st.scale <- trip;
    let body = 1 + Xorshift.int st.rng 3 in
    for _ = 1 to body do
      (* loads through the striding pointer use the fixed offset (the
         model only knows iteration 0's value); everything else uses
         the straight-line mix *)
      if Xorshift.bool st.rng then
        let spec = if Xorshift.bool st.rng then Insn.Ld_p else Insn.Ld_e in
        emit st
          (Insn.Load
             { spec
             ; size = Insn.Word
             ; sign = Insn.Signed
             ; dst = data st
             ; addr = Insn.Base_offset (addr_regs.(ai), 4 * off_w) })
      else gen_straight st
    done;
    emit st
      (Insn.Alu
         { op = Insn.Add
         ; dst = addr_regs.(ai)
         ; src1 = addr_regs.(ai)
         ; src2 = Insn.I (4 * stride_w) });
    emit st
      (Insn.Alu { op = Insn.Sub; dst = cnt_reg; src1 = cnt_reg; src2 = Insn.I 1 });
    emit st (Insn.Branch { cond = Insn.Ne; src1 = cnt_reg; src2 = Insn.I 0; target = l });
    st.scale <- 1;
    st.addr.(ai) <- start_w + (stride_w * trip)
  end

let gen_segment st =
  let w = st.p.weights in
  let total = w.branch + w.loop + 1 in
  let r = Xorshift.int st.rng total in
  if r < w.branch then gen_branch_skip st
  else if r < w.branch + w.loop then gen_loop st
  else
    let n = 1 + Xorshift.int st.rng st.p.segment_ops in
    for _ = 1 to n do
      gen_straight st
    done

let make_layout ~arena =
  let layout = Layout.create () in
  ignore (Layout.add layout ~label:"arena" ~align:4 ~init:(Layout.Words arena));
  layout

let reassemble t items =
  Program.assemble ~layout:(make_layout ~arena:t.arena) items

let program ?(params = default_params) seed =
  if params.arena_words <= 0 || params.segments <= 0 then
    invalid_arg "Gen.program";
  let rng = Xorshift.create seed in
  let arena_rng = Xorshift.split rng in
  let arena =
    List.init params.arena_words (fun _ -> Xorshift.int arena_rng 65536 - 32768)
  in
  let layout = make_layout ~arena in
  let st =
    { rng
    ; p = params
    ; arena_base = Layout.address layout "arena"
    ; rev = []
    ; fresh = 0
    ; bound = 0
    ; scale = 1
    ; addr = Array.make (Array.length addr_regs) 0
    ; idx = Array.make (Array.length idx_regs) 0 }
  in
  emit_label st "_start";
  (* establish the pointer/index models before any access uses them *)
  Array.iteri (fun ai _ -> set_addr st ai (Xorshift.int rng params.arena_words))
    addr_regs;
  Array.iteri (fun ii _ -> set_idx st ii (4 * Xorshift.int rng params.arena_words))
    idx_regs;
  for _ = 1 to params.segments do
    gen_segment st
  done;
  gen_print st;
  emit st Insn.Halt;
  let items = List.rev st.rev in
  let program = Program.assemble ~layout items in
  (* lint-clean is a generator invariant, not a hope: a construction
     bug here must fail loudly, not leak malformed programs into the
     campaign where they would read as simulator findings *)
  Lint.enforce program;
  { seed; params; arena; items; program; budget = st.bound + 64 }

let listing t = Fmt.str "%a" Program.pp t.program

(* --- random MiniC ------------------------------------------------------ *)

(* Bounded statement grammar over global int arrays.  Index
   expressions are masked before the modulo, so every access is in
   bounds for any run-time value; loop bounds are literal constants,
   so termination is syntactic. *)
let minic seed =
  let rng = Xorshift.create (seed lxor 0x5eed) in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let narrays = 1 + Xorshift.int rng 3 in
  let sizes = Array.init narrays (fun _ -> 16 + (8 * Xorshift.int rng 7)) in
  Array.iteri (fun i n -> pr "int A%d[%d];\n" i n) sizes;
  pr "int main() {\n  int i;\n  int j;\n  int s;\n  s = %d;\n"
    (Xorshift.int rng 1000);
  Array.iteri
    (fun a n ->
      pr "  for (i = 0; i < %d; i++) { A%d[i] = (i * %d + %d) %% %d; }\n" n a
        (1 + Xorshift.int rng 97)
        (Xorshift.int rng 50)
        (64 + Xorshift.int rng 1000))
    sizes;
  let arr () =
    let a = Xorshift.int rng narrays in
    (a, sizes.(a))
  in
  let idx_expr n =
    match Xorshift.int rng 3 with
    | 0 -> Printf.sprintf "i %% %d" n
    | 1 -> Printf.sprintf "((i * %d + %d) & 1023) %% %d" (1 + Xorshift.int rng 13) (Xorshift.int rng 7) n
    | _ -> Printf.sprintf "((i + j) & 1023) %% %d" n
  in
  let ops = [| "+"; "-"; "*"; "^"; "&"; "|" |] in
  let stmt () =
    match Xorshift.int rng 5 with
    | 0 ->
      let a, n = arr () in
      pr "      s = s %s A%d[%s];\n" (pick rng ops) a (idx_expr n)
    | 1 ->
      let a, n = arr () in
      pr "      A%d[%s] = s %s %d;\n" a (idx_expr n) (pick rng ops)
        (1 + Xorshift.int rng 100)
    | 2 -> pr "      if ((i & %d) == 0) { s = s + %d; }\n" (Xorshift.int rng 7) (1 + Xorshift.int rng 9)
    | 3 ->
      let a, n = arr () in
      pr "      s = s ^ (A%d[%s] * %d);\n" a (idx_expr n) (1 + Xorshift.int rng 31)
    | _ -> pr "      s = (s >> 1) & 0x7FFFFFFF;\n"
  in
  let nloops = 1 + Xorshift.int rng 2 in
  for _ = 1 to nloops do
    let _, n = arr () in
    pr "  for (i = 0; i < %d; i++) {\n" n;
    pr "    for (j = 0; j < %d; j++) {\n" (1 + Xorshift.int rng 6);
    let body = 1 + Xorshift.int rng 3 in
    for _ = 1 to body do
      stmt ()
    done;
    pr "    }\n  }\n"
  done;
  pr "  print_int(s);\n";
  let a, n = arr () in
  pr "  print_int(A%d[%d]);\n" a (Xorshift.int rng n);
  pr "  return 0;\n}\n";
  Buffer.contents buf

let minic_budget = 2_000_000

(* --- planted mutations (test hooks) ------------------------------------ *)

(* Guarded hooks for proving the campaign catches real bugs: each
   mutation flips one opcode in the *reference* program, modelling an
   emulator-semantics bug, and the oracle must flag the first retire
   of the mutated instruction.  Named (not closures) so a corpus entry
   can record which mutation it was captured under and replay it. *)

let mutation_names = [ "alu-flip"; "load-size-flip"; "branch-cond-flip" ]

let mutate_insn name insn =
  match (name, insn) with
  | "alu-flip", Insn.Alu a ->
    Some (Insn.Alu { a with op = (if a.op = Insn.Add then Insn.Xor else Insn.Add) })
  | "load-size-flip", Insn.Load l ->
    Some
      (Insn.Load
         { l with size = (if l.size = Insn.Word then Insn.Byte else Insn.Word) })
  | "branch-cond-flip", Insn.Branch b ->
    Some
      (Insn.Branch
         { b with cond = (if b.cond = Insn.Eq then Insn.Ne else Insn.Eq) })
  | _ -> None

let apply_mutation name program =
  if not (List.mem name mutation_names) then
    invalid_arg (Printf.sprintf "Gen.apply_mutation: unknown mutation %S" name);
  let done_ = ref false in
  Program.map_insns
    (fun _ insn ->
      if !done_ then insn
      else
        match mutate_insn name insn with
        | Some insn' ->
          done_ := true;
          insn'
        | None -> insn)
    program

(* --- params (de)serialization ------------------------------------------ *)

let params_to_json p =
  Json.Obj
    [ ("segments", Json.Int p.segments)
    ; ("segment_ops", Json.Int p.segment_ops)
    ; ("arena_words", Json.Int p.arena_words)
    ; ("max_trip", Json.Int p.max_trip)
    ; ( "weights"
      , Json.Obj
          [ ("alu", Json.Int p.weights.alu)
          ; ("ld_n", Json.Int p.weights.ld_n)
          ; ("ld_p", Json.Int p.weights.ld_p)
          ; ("ld_e", Json.Int p.weights.ld_e)
          ; ("store", Json.Int p.weights.store)
          ; ("branch", Json.Int p.weights.branch)
          ; ("loop", Json.Int p.weights.loop)
          ; ("print", Json.Int p.weights.print) ] ) ]

let params_of_json j =
  let field obj name =
    match Option.bind (Json.member name obj) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "gen params: missing int field %S" name)
  in
  let ( let* ) = Result.bind in
  let* segments = field j "segments" in
  let* segment_ops = field j "segment_ops" in
  let* arena_words = field j "arena_words" in
  let* max_trip = field j "max_trip" in
  match Json.member "weights" j with
  | None -> Error "gen params: missing weights"
  | Some w ->
    let* alu = field w "alu" in
    let* ld_n = field w "ld_n" in
    let* ld_p = field w "ld_p" in
    let* ld_e = field w "ld_e" in
    let* store = field w "store" in
    let* branch = field w "branch" in
    let* loop = field w "loop" in
    let* print = field w "print" in
    Ok
      { segments
      ; segment_ops
      ; arena_words
      ; max_trip
      ; weights = { alu; ld_n; ld_p; ld_e; store; branch; loop; print } }
