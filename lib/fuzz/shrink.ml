(* Greedy divergence-preserving minimizer.

   Works on the generator's [Program.item list]: only [Insn] items are
   ever deleted or simplified (labels stay, so control targets remain
   resolvable), and every candidate is accepted only if [check] says
   the original failure still reproduces — callers build [check] from
   {!Elag_verify.Oracle.signature}, so a deletion step cannot silently
   swap the original failure for a different one, and a candidate that
   breaks assembly or lint simply counts as "does not reproduce".

   Two passes per round, iterated to fixpoint (bounded by
   [max_rounds]): chunked deletion with halving chunk sizes (delete
   big runs first, then single instructions), then per-instruction
   simplification (loads to [li 0], anything to [nop]) for
   instructions that cannot be deleted outright.  Programs here are
   generator-sized (tens of instructions), so the O(n^2) candidate
   count is cheap next to the oracle runs it triggers. *)

module Insn = Elag_isa.Insn
module Program = Elag_isa.Program

let insn_count items =
  List.fold_left
    (fun n -> function Program.Insn _ -> n + 1 | _ -> n)
    0 items

(* positions (indices into [items]) that hold instructions *)
let insn_positions items =
  let _, acc =
    List.fold_left
      (fun (i, acc) item ->
        match item with
        | Program.Insn _ -> (i + 1, i :: acc)
        | _ -> (i + 1, acc))
      (0, []) items
  in
  List.rev acc

let drop_positions items positions =
  List.filteri (fun i _ -> not (List.mem i positions)) items

let replace_position items pos insn =
  List.mapi
    (fun i item -> if i = pos then Program.Insn insn else item)
    items

let simplifications = function
  | Insn.Nop -> []
  | Insn.Load { dst; _ } -> [ Insn.Li { dst; imm = 0 }; Insn.Nop ]
  | _ -> [ Insn.Nop ]

let minimize ?(max_rounds = 8) ~check items =
  let current = ref items in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    (* chunked deletion, halving chunk sizes down to 1 *)
    let rec chunk_pass size =
      if size >= 1 then begin
        let continue_ = ref true in
        while !continue_ do
          continue_ := false;
          let positions = insn_positions !current in
          let n = List.length positions in
          let i = ref 0 in
          while !i + size <= n do
            let victim =
              List.filteri (fun j _ -> j >= !i && j < !i + size) positions
            in
            let candidate = drop_positions !current victim in
            if check candidate then begin
              current := candidate;
              changed := true;
              continue_ := true
              (* positions shifted: restart the sweep at this chunk size *)
            end
            else incr i;
            if !continue_ then i := n + 1 (* break inner sweep *)
          done
        done;
        chunk_pass (size / 2)
      end
    in
    chunk_pass (max 1 (List.length (insn_positions !current) / 2));
    (* per-instruction simplification *)
    List.iteri
      (fun pos item ->
        match item with
        | Program.Insn insn ->
          List.iter
            (fun simpler ->
              let candidate = replace_position !current pos simpler in
              if check candidate then begin
                current := candidate;
                changed := true
              end)
            (simplifications insn)
        | _ -> ())
      !current
  done;
  !current
