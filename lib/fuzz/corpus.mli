(** Persistent minimal repros: [fuzz/corpus/<fingerprint>.epa] (shrunk
    human-readable listing) plus [<fingerprint>.json] (seed, generator
    params, mechanism, failure kind, planted-mutation name, divergence
    report).  Replay regenerates the program from its seed — the
    listing is documentation, the seed is the ground truth.

    Replay doubles as a regression suite: a planted-mutation entry
    must still diverge (pinning the campaign's detection power); a
    real-bug entry must come back green once the bug is fixed. *)

type entry =
  { fingerprint : string
  ; seed : int
  ; source : string  (** ["epa"] or ["minic"] *)
  ; mechanism : string
  ; kind : string
  ; detail : string
  ; mutation : string option
  ; gen_params : Elag_telemetry.Json.t
  ; insns : int  (** instruction count of the shrunk repro *)
  ; listing : string
  ; report : Elag_telemetry.Json.t }

val fingerprint : listing:string -> mechanism:string -> detail:string -> string
(** Content hash of the repro identity — two seeds shrinking to the
    same minimal program dedupe to one corpus file. *)

val to_json : entry -> Elag_telemetry.Json.t

val save : dir:string -> entry -> string
(** Write both files (creating [dir] as needed); returns the metadata
    path. *)

val load_file : string -> (entry, string) result
(** Load from a [.json] path; the sibling [.epa] listing is attached
    when present. *)

val entries_dir : string -> string list
(** Metadata paths under a corpus directory, sorted ([] when the
    directory does not exist). *)

val locate : ?from:string -> unit -> string option
(** Walk up from [from] (default cwd) looking for [fuzz/corpus] — dune
    runs tests from [_build/default/test]. *)

val replay : entry -> (string, string) result
(** Regenerate from seed, re-run under the entry's mechanism (and
    mutation, if any) and check the expectation described above.
    [Ok] explains what was confirmed; [Error] is a failure line. *)

val replay_dir : string -> (string * (string, string) result) list
(** {!replay} every entry under a directory. *)
