(* Persistent minimal repros.

   A corpus entry is two files keyed by a content fingerprint:

     fuzz/corpus/<fingerprint>.epa    human-readable shrunk listing
     fuzz/corpus/<fingerprint>.json   machine metadata

   The JSON carries everything needed to regenerate the repro from
   scratch — generator seed and params (or the MiniC seed), mechanism,
   failure kind/detail, the planted mutation name if any, and the
   divergence report — so [replay] re-derives the program from its
   seed rather than trusting the listing, and the listing exists for
   humans reading a bug report.

   Replay semantics double as regression tests: an entry captured
   under a planted mutation must STILL diverge when replayed (the
   campaign's detection power is pinned), while an entry captured from
   a real simulator bug must come back green once the bug is fixed —
   until then its replay failure is the open-bug marker. *)

module Json = Elag_telemetry.Json
module Oracle = Elag_verify.Oracle
module Config = Elag_sim.Config

let schema_version = 1

type entry =
  { fingerprint : string
  ; seed : int
  ; source : string  (* "epa" | "minic" *)
  ; mechanism : string
  ; kind : string
  ; detail : string
  ; mutation : string option
  ; gen_params : Json.t
  ; insns : int
  ; listing : string
  ; report : Json.t }

(* FNV-1a over the stable identity of the repro.  The listing (not the
   seed) keys the entry, so two seeds shrinking to the same minimal
   program dedupe to one corpus file. *)
let fingerprint ~listing ~mechanism ~detail =
  let h = ref 0x3bf29ce484222325 in
  let fold s =
    String.iter
      (fun c ->
        h := (!h lxor Char.code c) * 0x100000001b3 land max_int)
      s
  in
  fold listing;
  fold mechanism;
  fold detail;
  Printf.sprintf "%012x" (!h land 0xFFFFFFFFFFFF)

let to_json e =
  Json.Obj
    [ ("schema", Json.Int schema_version)
    ; ("fingerprint", Json.String e.fingerprint)
    ; ("seed", Json.Int e.seed)
    ; ("source", Json.String e.source)
    ; ("mechanism", Json.String e.mechanism)
    ; ("kind", Json.String e.kind)
    ; ("detail", Json.String e.detail)
    ; ( "mutation"
      , match e.mutation with None -> Json.Null | Some m -> Json.String m )
    ; ("gen_params", e.gen_params)
    ; ("insns", Json.Int e.insns)
    ; ("report", e.report) ]

let of_json ~listing j =
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "corpus entry: missing string field %S" name)
  in
  let int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "corpus entry: missing int field %S" name)
  in
  let ( let* ) = Result.bind in
  let* schema = int "schema" in
  if schema <> schema_version then
    Error (Printf.sprintf "corpus entry: unsupported schema %d" schema)
  else
    let* fingerprint = str "fingerprint" in
    let* seed = int "seed" in
    let* source = str "source" in
    let* mechanism = str "mechanism" in
    let* kind = str "kind" in
    let* detail = str "detail" in
    let* insns = int "insns" in
    let mutation =
      match Json.member "mutation" j with
      | Some (Json.String m) -> Some m
      | _ -> None
    in
    let gen_params = Option.value (Json.member "gen_params" j) ~default:Json.Null in
    let report = Option.value (Json.member "report" j) ~default:Json.Null in
    Ok
      { fingerprint; seed; source; mechanism; kind; detail; mutation
      ; gen_params; insns; listing; report }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir e =
  mkdir_p dir;
  let base = Filename.concat dir e.fingerprint in
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  write (base ^ ".epa") e.listing;
  write (base ^ ".json") (Json.to_string ~pretty:true (to_json e) ^ "\n");
  base ^ ".json"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_file path =
  match Json.parse (read_file path) with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok j ->
    let epa = Filename.remove_extension path ^ ".epa" in
    let listing = if Sys.file_exists epa then read_file epa else "" in
    Result.map_error
      (fun msg -> Printf.sprintf "%s: %s" path msg)
      (of_json ~listing j)

let entries_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (fun f -> Filename.concat dir f)

(* The corpus lives at the repo root; tests run from _build/default/test,
   so walk up from the cwd looking for fuzz/corpus. *)
let locate ?(from = Sys.getcwd ()) () =
  let rec go dir depth =
    if depth > 8 then None
    else
      let candidate = Filename.concat (Filename.concat dir "fuzz") "corpus" in
      if Sys.file_exists candidate && Sys.is_directory candidate then
        Some candidate
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else go parent (depth + 1)
  in
  go from 0

(* --- replay ------------------------------------------------------------- *)

let replay e =
  let ( let* ) = Result.bind in
  let* program, budget =
    match e.source with
    | "epa" ->
      let* params =
        match Gen.params_of_json e.gen_params with
        | Ok p -> Ok p
        | Error msg -> Error msg
      in
      let g = Gen.program ~params e.seed in
      Ok (g.Gen.program, g.Gen.budget)
    | "minic" -> (
      match Elag_harness.Compile.compile (Gen.minic e.seed) with
      | p -> Ok (p, Gen.minic_budget)
      | exception Elag_harness.Compile.Error msg ->
        Error (Printf.sprintf "compile failed: %s" msg))
    | other -> Error (Printf.sprintf "unknown source kind %S" other)
  in
  let* mechanism =
    match Config.Mechanism.of_string e.mechanism with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown mechanism %S" e.mechanism)
  in
  let cfg = Config.with_mechanism mechanism Config.default in
  let reference = Option.map (fun m -> Gen.apply_mutation m program) e.mutation in
  match Oracle.run ~max_insns:budget ?reference cfg program with
  | report -> (
    let sig_ = Oracle.signature report in
    match (e.mutation, sig_) with
    | Some m, Some s ->
      Ok (Printf.sprintf "mutation %S still caught (%s)" m s)
    | Some m, None ->
      Error (Printf.sprintf "mutation %S no longer detected — oracle blind spot" m)
    | None, None -> Ok "repro is green (bug fixed; entry pins the regression)"
    | None, Some s -> Error (Printf.sprintf "still failing: %s" s))
  | exception e -> Error (Printf.sprintf "replay raised: %s" (Printexc.to_string e))

let replay_dir dir =
  List.map
    (fun path ->
      match load_file path with
      | Error msg -> (path, Error msg)
      | Ok entry -> (path, replay entry))
    (entries_dir dir)
