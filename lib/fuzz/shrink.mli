(** Greedy divergence-preserving minimizer over generator item lists.

    Only instructions are deleted or simplified — labels survive, so
    control targets stay resolvable — and a candidate is kept only
    when [check] confirms the original failure still reproduces.
    Callers build [check] from {!Elag_verify.Oracle.signature} so the
    shrink cannot wander onto a different bug, and treat candidates
    that fail to assemble or lint as non-reproducing. *)

val insn_count : Elag_isa.Program.item list -> int

val minimize :
  ?max_rounds:int ->
  check:(Elag_isa.Program.item list -> bool) ->
  Elag_isa.Program.item list ->
  Elag_isa.Program.item list
(** Chunked deletion (halving chunk sizes) then per-instruction
    simplification, iterated to fixpoint or [max_rounds] (default 8).
    [check] must return [true] iff the candidate still fails the same
    way; it is responsible for catching its own exceptions. *)
