(* Embedded-systems scenario (paper Section 5.4): evaluate the
   compiler-directed scheme on MediaBench-like kernels, where the
   instruction-set change is cheap and the hardware budget is tight.

   Compares the paper's recommended small configuration (256-entry
   table + one R_addr) against larger hardware-only alternatives, per
   workload.

   Run with:  dune exec examples/embedded_media.exe *)

module Engine = Elag_engine.Engine
module Config = Elag_sim.Config
module Suite = Elag_workloads.Suite
module Workload = Elag_workloads.Workload

let () =
  Fmt.pr
    "MediaBench-like suite: compiler-directed (256-entry table + 1 R_addr)@.\
     versus a hardware-only table four times larger.@.@.";
  Fmt.pr "%-14s %10s %12s %12s %10s@." "workload" "dyn loads" "cc-dual-256"
    "hw-table-1k" "PD rate";
  let engine = Engine.create () in
  let rows =
    Engine.map engine
      (fun (w : Workload.t) ->
        let dist = Engine.distribution engine w in
        let cc =
          Engine.speedup engine w
            (Config.Dual { table_entries = 256; selection = Config.Compiler_directed })
        in
        let hw_big =
          Engine.speedup engine w
            (Config.Table_only { entries = 1024; compiler_filtered = false })
        in
        (w.Workload.name, dist, cc, hw_big))
      Suite.media
  in
  List.iter
    (fun (name, dist, cc, hw_big) ->
      Fmt.pr "%-14s %10d %12.2f %12.2f %9.1f%%@." name
        dist.Engine.total_dynamic_loads cc hw_big
        (Option.value dist.Engine.rate_pd ~default:0.))
    rows;
  let mean f = List.fold_left (fun a r -> a +. f r) 0. rows /. float_of_int (List.length rows) in
  Fmt.pr "%-14s %10s %12.2f %12.2f@." "average" ""
    (mean (fun (_, _, cc, _) -> cc))
    (mean (fun (_, _, _, hw) -> hw));
  Fmt.pr
    "@.The compiler-directed configuration reaches hardware-table-class@.\
     speedups with a quarter of the table and a single addressing@.\
     register - the embedded-design argument of the paper's Section 5.4.@."
